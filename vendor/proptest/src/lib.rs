//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The build environment has no crates-registry access, so the
//! workspace vendors a minimal generate-only property-testing framework
//! under the same crate name.
//!
//! Differences from real proptest, by design:
//! - No shrinking: a failing case reports the case index and message;
//!   re-running is deterministic, so the failure reproduces exactly.
//! - Seeds derive from the test's module path and case index, so runs
//!   are stable across processes and machines.

pub mod test_runner {
    use std::fmt;

    /// Run configuration; `ProptestConfig` in the prelude.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each `#[test]` runs.
        pub cases: u32,
        /// Unused compatibility knob (no rejection sampling here).
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_global_rejects: 1024,
            }
        }
    }

    /// A failed property, carrying the formatted assertion message.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator state (xoshiro256++ seeded by SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Stable seed for one case of one named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self::from_seed(h ^ ((case as u64) << 32 | case as u64))
        }

        pub fn next_u64(&mut self) -> u64 {
            let r = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample below 0");
            ((self.next_u64() as u128).wrapping_mul(n as u128) >> 64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values. Generate-only: no shrink tree.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `strategy.prop_flat_map(f)`.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    trait StrategyObj<T> {
        fn generate_obj(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> StrategyObj<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy, as produced by `Strategy::boxed`.
    pub struct BoxedStrategy<T>(Box<dyn StrategyObj<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// Uniform choice between boxed strategies; backs `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as usize;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as usize + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on the size of a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below(self.max - self.min + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates are possible; bound the attempts so a small
            // element domain cannot loop forever.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 50 + 50 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `#[test] fn name(pat in strategy, ...)`
/// becomes a normal test that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { [$crate::test_runner::Config::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ([$cfg:expr] $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__name, __case);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}

/// Uniform choice between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::for_case("t", 0);
        let s = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::for_case("t", 1);
        let s = crate::collection::vec(0.0f64..1.0, 3..7);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let s = crate::collection::btree_set(0usize..5, 1..=5);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() <= 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = crate::collection::vec((0.0f64..1.0, 0usize..100), 1..20);
        let a = s.generate(&mut TestRng::for_case("same", 3));
        let b = s.generate(&mut TestRng::for_case("same", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(v in proptest::collection::vec(0i32..100, 1..10), x in 0.0f64..1.0) {
            prop_assert!(!v.is_empty());
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn oneof_covers_arms(v in prop_oneof![Just(0usize), 1usize..3, (3usize..5).prop_map(|x| x)]) {
            prop_assert!(v < 5);
        }
    }

    // The macro refers to `proptest::...` paths as test code would; make
    // that name resolve inside this crate's own tests too.
    use crate as proptest;
}
