//! Offline stand-in for the subset of the `criterion` benchmarking API
//! this workspace uses. The build environment has no crates-registry
//! access, so the workspace vendors a minimal wall-clock harness under
//! the same crate name: it runs each benchmark `sample_size` times and
//! reports min / median / mean to stderr. No statistics beyond that —
//! numbers are indicative, not criterion-grade.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, as constructed by `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        };
        eprintln!("group {}", group.name);
        group
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier: a function name, a parameter, or both.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; `iter` times one sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size + 1),
    };
    // Warm-up sample, discarded.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        eprintln!("  {label}: no samples (closure never called iter)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    eprintln!(
        "  {label}: min {} / median {} / mean {} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
