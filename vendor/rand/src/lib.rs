//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over primitive half-open and inclusive ranges.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors a minimal, dependency-free implementation under the
//! same crate name. `SmallRng` is xoshiro256++ seeded through SplitMix64
//! — deterministic for a given seed, which is all the simulation and
//! layout code relies on.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling a uniform value from a range; mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of a `u64`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast generator (xoshiro256++), matching the role of
    /// `rand::rngs::SmallRng`. Deterministic for a given seed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&f));
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let i = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
