#!/usr/bin/env bash
# Local CI gate: build, lints, full test suite. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> smoke: figure harnesses (--small)"
cargo run --quiet --release -p viva-bench --bin fig10_faulttolerance -- --small > /dev/null

echo "ci: all green"
