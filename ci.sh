#!/usr/bin/env bash
# Local CI gate: build, lints, full test suite. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> smoke: figure harnesses (--small)"
cargo run --quiet --release -p viva-bench --bin fig10_faulttolerance -- --small > /dev/null
# Interactivity smoke: runs the indexed-vs-naive and serial-vs-parallel
# equivalence assertions (panics on any divergence); timings themselves
# are only asserted by the full run.
cargo run --quiet --release -p viva-bench --bin fig_interactivity -- --small > /dev/null

echo "==> server-smoke: stdio replay against the golden transcript"
# The wire protocol is deterministic by construction: piping the
# checked-in session script through a fresh stdio server must reproduce
# the checked-in golden transcript byte for byte — twice, so "it only
# worked because of leftover state" is also ruled out. The server bench
# smoke then exercises the concurrent-session path (throughput timings
# are only asserted by the full run).
cargo run --quiet --release -p viva-server --bin viva-server -- --stdio \
  < tests/data/server_session.script > /tmp/viva_server_smoke_1.ndjson
cargo run --quiet --release -p viva-server --bin viva-server -- --stdio \
  < tests/data/server_session.script > /tmp/viva_server_smoke_2.ndjson
diff -u tests/data/server_session.golden /tmp/viva_server_smoke_1.ndjson
diff -u /tmp/viva_server_smoke_1.ndjson /tmp/viva_server_smoke_2.ndjson

echo "==> server-smoke: TCP replay over the event-driven transport"
# The same script over a real socket against the sharded readiness loop
# must also reproduce the golden transcript byte for byte — the
# transport never changes a byte. The server is then drained with a
# protocol `shutdown`, which must end the process cleanly (all shard
# workers join).
rm -f /tmp/viva_server_smoke_tcp.log
target/release/viva-server --tcp 127.0.0.1:0 --workers 4 \
  > /dev/null 2> /tmp/viva_server_smoke_tcp.log &
SRV_PID=$!
ADDR=""
for _ in $(seq 1 200); do
  ADDR=$(sed -n 's/^viva-server: listening on \([0-9.:]*\) .*/\1/p' /tmp/viva_server_smoke_tcp.log)
  [ -n "$ADDR" ] && break
  sleep 0.05
done
test -n "$ADDR" || { echo "viva-server never announced its address" >&2; kill "$SRV_PID"; exit 1; }
target/release/viva-server-client --tcp "$ADDR" tests/data/server_session.script \
  > /tmp/viva_server_smoke_tcp.ndjson
diff -u tests/data/server_session.golden /tmp/viva_server_smoke_tcp.ndjson
echo '{"cmd":"shutdown"}' | target/release/viva-server-client --tcp "$ADDR" > /dev/null
wait "$SRV_PID"
cargo run --quiet --release -p viva-bench --bin fig_server -- --small > /dev/null

echo "==> obs-smoke: metrics-on replay is byte-identical, exposition lands"
# Observability must never perturb the protocol: the same script with
# self-profiling enabled must still reproduce the golden transcript
# byte for byte, while the Prometheus-style exposition file materializes
# alongside. The obs bench smoke then verifies the per-command counters
# against the commands actually served (overhead is only asserted by
# the full run).
cargo run --quiet --release -p viva-server --bin viva-server -- --stdio \
  --metrics-out /tmp/viva_server_smoke_metrics.txt \
  < tests/data/server_session.script > /tmp/viva_server_smoke_obs.ndjson
diff -u tests/data/server_session.golden /tmp/viva_server_smoke_obs.ndjson
test -s /tmp/viva_server_smoke_metrics.txt
grep -q 'viva_counter{scope="server",name="server.cmd.render"}' /tmp/viva_server_smoke_metrics.txt
cargo run --quiet --release -p viva-bench --bin fig_obs -- --small > /dev/null

echo "==> fuzz-smoke: adversarial ingest corpus, both recovery modes"
# Deterministic and offline: every corpus file plus synthesized
# pathologies (10 MB lines, NaN floods, id collisions) must load
# without panics, with stable error summaries, and render a valid SVG
# carrying the degraded-data badge wherever events survived.
cargo run --quiet --release -p viva-bench --bin fuzz_ingest > /dev/null

echo "==> chaos-smoke: adversarial serving, recovery, and overload shedding"
# The chaos harness drives seeded hostile traffic (garbage frames, NaN
# sliders, torn frames, slow-loris peers, kill->restore->replay cycles,
# mutated checkpoints, a mid-storm golden replay) and asserts zero
# panics, zero wedges, byte-identical recovery renders, and a clean
# graceful drain. Its TCP storm runs over the same event-driven shard
# loop `viva-server --tcp` serves with. The resilience bench smoke then checks the gate sheds
# under pressure and restore works (latency claims are only asserted by
# the full run).
cargo run --quiet --release -p viva-bench --bin fuzz_server > /dev/null
cargo run --quiet --release -p viva-bench --bin fig_resilience -- --small > /dev/null

echo "ci: all green"
