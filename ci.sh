#!/usr/bin/env bash
# Local CI gate: build, lints, full test suite. Run before pushing.
# `./ci.sh scale-smoke` runs only the columnar+LoD scale gate.
set -euo pipefail
cd "$(dirname "$0")"

scale_smoke() {
  echo "==> scale-smoke: columnar+LoD gates, golden LoD transcript replay"
  # The reduced fig_scale run exercises the full pipeline (trace build,
  # memory-ratio assertion, LoD cut tiling) without the timing gates.
  cargo run --quiet --release -p viva-bench --bin fig_scale -- --small > /dev/null
  # Camera renders over the wire are deterministic: the checked-in LoD
  # script (camera-less baseline, identity camera, zoom/pan sweeps, an
  # invalid camera's typed error) must reproduce its golden transcript
  # byte for byte — twice over stdio, once over TCP.
  target/release/viva-server --stdio \
    < tests/data/server_lod.script > /tmp/viva_lod_smoke_1.ndjson
  target/release/viva-server --stdio \
    < tests/data/server_lod.script > /tmp/viva_lod_smoke_2.ndjson
  diff -u tests/data/server_lod.golden /tmp/viva_lod_smoke_1.ndjson
  diff -u /tmp/viva_lod_smoke_1.ndjson /tmp/viva_lod_smoke_2.ndjson
  rm -f /tmp/viva_lod_smoke_tcp.log
  target/release/viva-server --tcp 127.0.0.1:0 --workers 2 \
    > /dev/null 2> /tmp/viva_lod_smoke_tcp.log &
  LOD_SRV_PID=$!
  LOD_ADDR=""
  for _ in $(seq 1 200); do
    LOD_ADDR=$(sed -n 's/^viva-server: listening on \([0-9.:]*\) .*/\1/p' /tmp/viva_lod_smoke_tcp.log)
    [ -n "$LOD_ADDR" ] && break
    sleep 0.05
  done
  test -n "$LOD_ADDR" || { echo "viva-server never announced its address" >&2; kill "$LOD_SRV_PID"; exit 1; }
  target/release/viva-server-client --tcp "$LOD_ADDR" tests/data/server_lod.script \
    > /tmp/viva_lod_smoke_tcp.ndjson
  diff -u tests/data/server_lod.golden /tmp/viva_lod_smoke_tcp.ndjson
  echo '{"cmd":"shutdown"}' | target/release/viva-server-client --tcp "$LOD_ADDR" > /dev/null
  wait "$LOD_SRV_PID"
}

if [ "${1:-}" = "scale-smoke" ]; then
  cargo build --quiet --release -p viva-bench -p viva-server
  scale_smoke
  echo "ci: scale-smoke green"
  exit 0
fi

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> smoke: figure harnesses (--small)"
cargo run --quiet --release -p viva-bench --bin fig10_faulttolerance -- --small > /dev/null
# Interactivity smoke: runs the indexed-vs-naive and serial-vs-parallel
# equivalence assertions (panics on any divergence); timings themselves
# are only asserted by the full run.
cargo run --quiet --release -p viva-bench --bin fig_interactivity -- --small > /dev/null

echo "==> server-smoke: stdio replay against the golden transcript"
# The wire protocol is deterministic by construction: piping the
# checked-in session script through a fresh stdio server must reproduce
# the checked-in golden transcript byte for byte — twice, so "it only
# worked because of leftover state" is also ruled out. The server bench
# smoke then exercises the concurrent-session path (throughput timings
# are only asserted by the full run).
cargo run --quiet --release -p viva-server --bin viva-server -- --stdio \
  < tests/data/server_session.script > /tmp/viva_server_smoke_1.ndjson
cargo run --quiet --release -p viva-server --bin viva-server -- --stdio \
  < tests/data/server_session.script > /tmp/viva_server_smoke_2.ndjson
diff -u tests/data/server_session.golden /tmp/viva_server_smoke_1.ndjson
diff -u /tmp/viva_server_smoke_1.ndjson /tmp/viva_server_smoke_2.ndjson

echo "==> server-smoke: TCP replay over the event-driven transport"
# The same script over a real socket against the sharded readiness loop
# must also reproduce the golden transcript byte for byte — the
# transport never changes a byte. The server is then drained with a
# protocol `shutdown`, which must end the process cleanly (all shard
# workers join).
rm -f /tmp/viva_server_smoke_tcp.log
target/release/viva-server --tcp 127.0.0.1:0 --workers 4 \
  > /dev/null 2> /tmp/viva_server_smoke_tcp.log &
SRV_PID=$!
ADDR=""
for _ in $(seq 1 200); do
  ADDR=$(sed -n 's/^viva-server: listening on \([0-9.:]*\) .*/\1/p' /tmp/viva_server_smoke_tcp.log)
  [ -n "$ADDR" ] && break
  sleep 0.05
done
test -n "$ADDR" || { echo "viva-server never announced its address" >&2; kill "$SRV_PID"; exit 1; }
target/release/viva-server-client --tcp "$ADDR" tests/data/server_session.script \
  > /tmp/viva_server_smoke_tcp.ndjson
diff -u tests/data/server_session.golden /tmp/viva_server_smoke_tcp.ndjson
echo '{"cmd":"shutdown"}' | target/release/viva-server-client --tcp "$ADDR" > /dev/null
wait "$SRV_PID"
cargo run --quiet --release -p viva-bench --bin fig_server -- --small > /dev/null

scale_smoke

echo "==> obs-smoke: metrics/tracing replays byte-identical, self-trace deterministic"
# Observability must never perturb the protocol: the same script with
# self-profiling enabled must still reproduce the golden transcript
# byte for byte, while the Prometheus-style exposition file materializes
# alongside. The obs bench smoke then verifies the per-command counters
# against the commands actually served (overhead is only asserted by
# the full run).
cargo run --quiet --release -p viva-server --bin viva-server -- --stdio \
  --metrics-out /tmp/viva_server_smoke_metrics.txt \
  < tests/data/server_session.script > /tmp/viva_server_smoke_obs.ndjson
diff -u tests/data/server_session.golden /tmp/viva_server_smoke_obs.ndjson
test -s /tmp/viva_server_smoke_metrics.txt
grep -q 'viva_counter{scope="server",name="server.cmd.render"}' /tmp/viva_server_smoke_metrics.txt
# The stats golden pins the reset semantics on the wire: the reset
# response carries the pre-reset snapshot, the follow-up shows zeroed
# counters and histograms with gauges untouched, and the exact
# histogram bucket bounds ride along.
cargo run --quiet --release -p viva-server --bin viva-server -- --stdio \
  --metrics-out /tmp/viva_server_smoke_stats_metrics.txt \
  < tests/data/server_stats.script > /tmp/viva_server_smoke_stats.ndjson
diff -u tests/data/server_stats.golden /tmp/viva_server_smoke_stats.ndjson
# Self-trace determinism: the same golden replay with span tracing on
# (fixed seed, sample-everything) still matches the golden transcript,
# two runs export byte-identical CSV (logical ticks, never wall time),
# and the export passes the same strict ingest bar as any real trace.
rm -rf /tmp/viva_selftrace_1 /tmp/viva_selftrace_2
target/release/viva-server --stdio --self-trace /tmp/viva_selftrace_1 \
  --trace-seed 42 --trace-sample 1 \
  < tests/data/server_session.script > /tmp/viva_server_smoke_selftrace_1.ndjson
target/release/viva-server --stdio --self-trace /tmp/viva_selftrace_2 \
  --trace-seed 42 --trace-sample 1 \
  < tests/data/server_session.script > /tmp/viva_server_smoke_selftrace_2.ndjson
diff -u tests/data/server_session.golden /tmp/viva_server_smoke_selftrace_1.ndjson
diff -u /tmp/viva_selftrace_1/selftrace.csv /tmp/viva_selftrace_2/selftrace.csv
target/release/viva-server --check-trace /tmp/viva_selftrace_1/selftrace.csv
cargo run --quiet --release -p viva-bench --bin fig_obs -- --small > /dev/null

echo "==> fuzz-smoke: adversarial ingest corpus, both recovery modes"
# Deterministic and offline: every corpus file plus synthesized
# pathologies (10 MB lines, NaN floods, id collisions) must load
# without panics, with stable error summaries, and render a valid SVG
# carrying the degraded-data badge wherever events survived.
cargo run --quiet --release -p viva-bench --bin fuzz_ingest > /dev/null

echo "==> chaos-smoke: adversarial serving, recovery, and overload shedding"
# The chaos harness drives seeded hostile traffic (garbage frames, NaN
# sliders, torn frames, slow-loris peers, kill->restore->replay cycles,
# mutated checkpoints, a mid-storm golden replay) and asserts zero
# panics, zero wedges, byte-identical recovery renders, and a clean
# graceful drain. Its TCP storm runs over the same event-driven shard
# loop `viva-server --tcp` serves with. The resilience bench smoke then checks the gate sheds
# under pressure and restore works (latency claims are only asserted by
# the full run).
cargo run --quiet --release -p viva-bench --bin fuzz_server > /dev/null
cargo run --quiet --release -p viva-bench --bin fig_resilience -- --small > /dev/null

echo "==> stream-smoke: durable appends survive SIGKILL, resend converges"
# End-to-end durability at the process level: a client streams 10k
# events into a journaled TCP server, the server is SIGKILLed mid-
# append, a fresh server over the same journal directory recovers the
# session, and the client's at-least-once resend (duplicates acked
# idempotently, remainder applied) must converge to a render byte-
# identical to an uninterrupted run. A `--follow` subscriber on the
# recovered server must then see a live delta push. The streaming bench
# smoke re-checks recovery byte-identity and subscriber fan-out in
# process (timing gates are only asserted by the full run).
STREAM_SCRIPT=/tmp/viva_stream_smoke.script
STREAM_DIR_GOLD=/tmp/viva_stream_smoke_gold
STREAM_DIR_CRASH=/tmp/viva_stream_smoke_crash
rm -rf "$STREAM_DIR_GOLD" "$STREAM_DIR_CRASH"
{
  printf '{"cmd":"append","session":"live","seq":1,"text":"span,0.0,20000.0\\ncontainer,1,0,host,h0\\ncontainer,2,0,host,h1\\nmetric,0,MFlop/s,power\\nvar,0.0,1,0,100.0\\nvar,0.0,2,0,50.0"}\n'
  awk 'BEGIN { for (i = 2; i <= 10000; i++)
    printf "{\"cmd\":\"append\",\"session\":\"live\",\"seq\":%d,\"text\":\"var,%d,%d,0,%d\"}\n", i, i, (i % 2) + 1, i % 100 }'
  printf '{"cmd":"render","session":"live","width":640,"height":480,"theme":"light","labels":false}\n'
} > "$STREAM_SCRIPT"
# The uninterrupted reference run (stdio, journaled like the real one).
cargo run --quiet --release -p viva-server --bin viva-server -- --stdio \
  --journal-dir "$STREAM_DIR_GOLD" --journal-sync-every 100 \
  < "$STREAM_SCRIPT" | tail -n 1 > /tmp/viva_stream_smoke_gold.render
# The crashed run: fsync every append so every acked event survives.
rm -f /tmp/viva_stream_smoke_tcp.log
target/release/viva-server --tcp 127.0.0.1:0 --workers 2 \
  --journal-dir "$STREAM_DIR_CRASH" --journal-sync-every 1 \
  > /dev/null 2> /tmp/viva_stream_smoke_tcp.log &
SRV_PID=$!
ADDR=""
for _ in $(seq 1 200); do
  ADDR=$(sed -n 's/^viva-server: listening on \([0-9.:]*\) .*/\1/p' /tmp/viva_stream_smoke_tcp.log)
  [ -n "$ADDR" ] && break
  sleep 0.05
done
test -n "$ADDR" || { echo "viva-server never announced its address" >&2; kill "$SRV_PID"; exit 1; }
target/release/viva-server-client --tcp "$ADDR" "$STREAM_SCRIPT" > /dev/null 2>&1 &
CLIENT_PID=$!
# Pull the trigger once at least ~2000 appends are durable, so the kill
# lands mid-stream rather than before or after it.
for _ in $(seq 1 500); do
  [ -f "$STREAM_DIR_CRASH/live.journal" ] \
    && [ "$(wc -l < "$STREAM_DIR_CRASH/live.journal")" -ge 2000 ] && break
  sleep 0.01
done
kill -9 "$SRV_PID" 2> /dev/null || true
wait "$SRV_PID" 2> /dev/null || true
wait "$CLIENT_PID" 2> /dev/null || true
test -s "$STREAM_DIR_CRASH/live.journal" || { echo "no journal written before the kill" >&2; exit 1; }
# Restart over the same journal directory: the session must come back,
# and resending the whole stream must converge byte-for-byte.
rm -f /tmp/viva_stream_smoke_tcp2.log
target/release/viva-server --tcp 127.0.0.1:0 --workers 2 \
  --journal-dir "$STREAM_DIR_CRASH" --journal-sync-every 1 \
  > /dev/null 2> /tmp/viva_stream_smoke_tcp2.log &
SRV_PID=$!
ADDR=""
for _ in $(seq 1 200); do
  ADDR=$(sed -n 's/^viva-server: listening on \([0-9.:]*\) .*/\1/p' /tmp/viva_stream_smoke_tcp2.log)
  [ -n "$ADDR" ] && break
  sleep 0.05
done
test -n "$ADDR" || { echo "restarted viva-server never announced its address" >&2; kill "$SRV_PID"; exit 1; }
grep -q 'recovered live session "live"' /tmp/viva_stream_smoke_tcp2.log \
  || { echo "restarted server did not recover the live session" >&2; kill "$SRV_PID"; exit 1; }
target/release/viva-server-client --tcp "$ADDR" "$STREAM_SCRIPT" \
  | tail -n 1 > /tmp/viva_stream_smoke_recovered.render
diff -u /tmp/viva_stream_smoke_gold.render /tmp/viva_stream_smoke_recovered.render
# A live follower on the recovered stream must see the next delta.
target/release/viva-server-client --tcp "$ADDR" --follow live \
  > /tmp/viva_stream_smoke_follow.ndjson 2> /dev/null &
FOLLOW_PID=$!
sleep 0.3
echo '{"cmd":"append","session":"live","seq":10001,"text":"var,10001,1,0,42"}' \
  | target/release/viva-server-client --tcp "$ADDR" > /dev/null
for _ in $(seq 1 100); do
  grep -q '"push":"delta"' /tmp/viva_stream_smoke_follow.ndjson && break
  sleep 0.05
done
kill "$FOLLOW_PID" 2> /dev/null || true
wait "$FOLLOW_PID" 2> /dev/null || true
grep -q '"push":"subscribed"\|"ok":"subscribed"' /tmp/viva_stream_smoke_follow.ndjson \
  || { echo "follower never subscribed" >&2; kill "$SRV_PID"; exit 1; }
grep -q '"push":"delta"' /tmp/viva_stream_smoke_follow.ndjson \
  || { echo "follower never saw a delta push" >&2; kill "$SRV_PID"; exit 1; }
echo '{"cmd":"shutdown"}' | target/release/viva-server-client --tcp "$ADDR" > /dev/null
wait "$SRV_PID"
cargo run --quiet --release -p viva-bench --bin fig_streaming -- --small > /dev/null

echo "ci: all green"
