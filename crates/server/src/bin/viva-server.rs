//! The `viva-server` binary: serve the analysis protocol over stdio
//! (default, single analyst) or TCP (shared, worker pool).
//!
//! ```sh
//! # Single-session pipe mode — replays a script deterministically:
//! viva-server --stdio < session.script > transcript.ndjson
//!
//! # Same replay with self-profiling on; the transcript is unchanged
//! # and the Prometheus-style exposition lands in metrics.txt at EOF:
//! viva-server --stdio --metrics-out metrics.txt < session.script > transcript.ndjson
//!
//! # Shared server:
//! viva-server --tcp 127.0.0.1:7878 --workers 8 --max-sessions 64
//! ```

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use viva_server::{serve_tcp, Server, ServerLimits, SessionRegistry};
use viva_obs::{Recorder, Tracer};

struct Args {
    tcp: Option<String>,
    workers: usize,
    max_sessions: Option<usize>,
    max_relax_steps: Option<u64>,
    metrics_out: Option<String>,
    max_inflight: Option<usize>,
    io_timeout_ms: Option<u64>,
    checkpoint_dir: Option<String>,
    journal_dir: Option<String>,
    journal_sync_every: Option<u32>,
    interactive_deadlines: bool,
    self_trace: Option<String>,
    trace_seed: u64,
    trace_sample: u64,
    check_trace: Option<String>,
}

const USAGE: &str = "usage: viva-server [--stdio | --tcp ADDR] [--workers N] \
                     [--max-sessions N] [--max-relax-steps N] [--metrics-out PATH] \
                     [--max-inflight N] [--io-timeout-ms N] [--checkpoint-dir DIR] \
                     [--journal-dir DIR] [--journal-sync-every N] \
                     [--interactive-deadlines] [--self-trace DIR] \
                     [--trace-seed N] [--trace-sample N] [--check-trace FILE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        tcp: None,
        workers: 4,
        max_sessions: None,
        max_relax_steps: None,
        metrics_out: None,
        max_inflight: None,
        io_timeout_ms: None,
        checkpoint_dir: None,
        journal_dir: None,
        journal_sync_every: None,
        interactive_deadlines: false,
        self_trace: None,
        trace_seed: 42,
        trace_sample: 1,
        check_trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--stdio" => args.tcp = None,
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_owned())?;
            }
            "--max-sessions" => {
                args.max_sessions = Some(
                    value("--max-sessions")?
                        .parse()
                        .map_err(|_| "--max-sessions needs an integer".to_owned())?,
                );
            }
            "--max-relax-steps" => {
                args.max_relax_steps = Some(
                    value("--max-relax-steps")?
                        .parse()
                        .map_err(|_| "--max-relax-steps needs an integer".to_owned())?,
                );
            }
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--max-inflight" => {
                args.max_inflight = Some(
                    value("--max-inflight")?
                        .parse()
                        .map_err(|_| "--max-inflight needs an integer".to_owned())?,
                );
            }
            "--io-timeout-ms" => {
                args.io_timeout_ms = Some(
                    value("--io-timeout-ms")?
                        .parse()
                        .map_err(|_| "--io-timeout-ms needs an integer".to_owned())?,
                );
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--journal-dir" => args.journal_dir = Some(value("--journal-dir")?),
            "--journal-sync-every" => {
                args.journal_sync_every = Some(
                    value("--journal-sync-every")?
                        .parse()
                        .map_err(|_| "--journal-sync-every needs an integer".to_owned())?,
                );
            }
            "--interactive-deadlines" => args.interactive_deadlines = true,
            "--self-trace" => args.self_trace = Some(value("--self-trace")?),
            "--trace-seed" => {
                args.trace_seed = value("--trace-seed")?
                    .parse()
                    .map_err(|_| "--trace-seed needs an integer".to_owned())?;
            }
            "--check-trace" => args.check_trace = Some(value("--check-trace")?),
            "--trace-sample" => {
                args.trace_sample = value("--trace-sample")?
                    .parse()
                    .map_err(|_| "--trace-sample needs an integer".to_owned())?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Dumps the full (wall-clock-inclusive) exposition: the server scope
/// first, then every live session, sorted by name.
fn write_metrics(server: &Server, path: &str) -> std::io::Result<()> {
    let mut text = viva_obs::snapshot_to_text("server", &server.recorder().snapshot());
    for name in server.registry().names() {
        let Some(handle) = server.registry().peek(&name) else { continue };
        let snap = SessionRegistry::lock_session(&handle).analysis.recorder().snapshot();
        text.push_str(&viva_obs::snapshot_to_text(&name, &snap));
    }
    std::fs::write(path, text)
}

/// Exports the tracer's finished spans as a viva trace — viva
/// observing viva. Deterministic for a fixed script, seed, and sample
/// rate: the export is built from logical ticks, never wall time.
fn write_selftrace(server: &Server, dir: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let csv = viva_server::selftrace::export_csv(server.tracer());
    std::fs::write(std::path::Path::new(dir).join("selftrace.csv"), csv)
}

/// `--check-trace FILE`: strict-load a CSV trace from disk and print a
/// one-line summary. Exits non-zero on the first malformed record —
/// `ci.sh` uses this to hold the self-trace export to the same ingest
/// bar as any real trace.
fn check_trace(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let report = viva_trace::TraceLoader::new()
        .mode(viva_trace::RecoveryMode::Strict)
        .load_str(&text)
        .map_err(|e| format!("strict load {path}: {e}"))?;
    let t = &report.trace;
    Ok(format!(
        "{path}: ok — {} containers, {} metrics, span {}..{}",
        t.containers().len(),
        t.metrics().len(),
        t.start(),
        t.end()
    ))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("viva-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.check_trace {
        return match check_trace(path) {
            Ok(line) => {
                println!("{line}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("viva-server: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut limits = ServerLimits::default();
    if let Some(n) = args.max_sessions {
        limits.max_sessions = n;
    }
    if let Some(n) = args.max_relax_steps {
        limits.max_relax_steps = n;
    }
    if let Some(n) = args.max_inflight {
        limits.max_inflight_commands = n;
    }
    if let Some(ms) = args.io_timeout_ms {
        // 0 disables the read/write timeouts entirely.
        limits.io_timeout_ms = if ms == 0 { None } else { Some(ms) };
    }
    if let Some(dir) = &args.checkpoint_dir {
        limits.checkpoint_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(dir) = &args.journal_dir {
        limits.journal_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(n) = args.journal_sync_every {
        limits.journal_sync_every = n;
    }
    if args.interactive_deadlines {
        // Opt-in: deadline enforcement reads the wall clock, so replays
        // with deadlines on are not bound by the golden transcripts.
        limits.deadlines = viva_server::DeadlineBudgets::interactive();
    }
    // `--metrics-out` turns observability on; metrics never change a
    // response byte, so a metrics-on replay still matches the golden
    // transcript. The exposition is dumped when serving ends.
    // `--self-trace` additionally wires a sampling span tracer (one
    // ring per worker); the deterministic export of viva's own spans
    // as a viva trace is written to DIR when serving ends.
    let server = Arc::new(if args.metrics_out.is_some() || args.self_trace.is_some() {
        let recorder = if args.metrics_out.is_some() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        };
        let recorder = if args.self_trace.is_some() {
            let shards = if args.tcp.is_some() { args.workers.max(1) } else { 1 };
            recorder.with_tracer(Tracer::enabled(shards, args.trace_seed, args.trace_sample))
        } else {
            recorder
        };
        Server::with_observability(limits, recorder)
    } else {
        Server::new(limits)
    });
    // Crash recovery: every journal in the journal directory becomes a
    // live session again before the first command is read.
    if args.journal_dir.is_some() {
        for name in server.recover_journals() {
            eprintln!("viva-server: recovered live session {name:?} from its journal");
        }
    }
    match args.tcp {
        None => {
            if let Err(e) = server.serve_stdio() {
                eprintln!("viva-server: stdio: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(path) = &args.metrics_out {
                if let Err(e) = write_metrics(&server, path) {
                    eprintln!("viva-server: metrics-out {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(dir) = &args.self_trace {
                if let Err(e) = write_selftrace(&server, dir) {
                    eprintln!("viva-server: self-trace {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        Some(addr) => {
            let listener = match TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("viva-server: bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "viva-server: listening on {} with {} workers",
                listener.local_addr().map(|a| a.to_string()).unwrap_or(addr),
                args.workers
            );
            for worker in serve_tcp(listener, args.workers, Arc::clone(&server)) {
                // The pool runs for the life of the process.
                let _ = worker.join();
            }
            if let Some(path) = &args.metrics_out {
                if let Err(e) = write_metrics(&server, path) {
                    eprintln!("viva-server: metrics-out {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(dir) = &args.self_trace {
                if let Err(e) = write_selftrace(&server, dir) {
                    eprintln!("viva-server: self-trace {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
