//! The deterministic scripted client: replays a command script
//! byte-for-byte and prints one response line per command line.
//!
//! ```sh
//! # In-process replay (no server needed; the golden-transcript mode):
//! viva-server-client session.script > transcript.ndjson
//!
//! # Against a running TCP server:
//! viva-server-client --tcp 127.0.0.1:7878 session.script
//!
//! # Either mode, with a per-command latency summary on stderr
//! # (p50/p99 from the observability histograms; stdout unchanged):
//! viva-server-client --timing session.script > transcript.ndjson
//! ```
//!
//! Blank lines in the script are skipped (they produce no response in
//! either mode), so a script replayed in-process and a script piped to
//! `viva-server --stdio` yield identical transcripts.
//!
//! With `--retry N`, a shed command (`"overloaded"` error) or a refused
//! connection is retried up to N times with exponential backoff plus
//! jitter; the server's `retry_after_ms` hint is honoured as the floor
//! for the next wait. The default (`--retry 0`) never retries, so the
//! golden-transcript replays are unchanged.
//!
//! The shared-trace store has first-class flags, each synthesizing the
//! corresponding protocol command ahead of the script (in the order
//! given on the command line):
//!
//! ```sh
//! # Open a session over a trace already in the server's store:
//! viva-server-client --tcp 127.0.0.1:7878 --attach mine=prod tour.script
//!
//! # Inspect / trim the store (no script needed):
//! viva-server-client --tcp 127.0.0.1:7878 --list-traces
//! viva-server-client --tcp 127.0.0.1:7878 --drop-trace prod
//!
//! # Render a level-of-detail frame (zoom 4x, panned) with no script:
//! viva-server-client --tcp 127.0.0.1:7878 --render mine=1280x720@4,160,-40
//! ```
//!
//! When any of these flags is present and no script is named, stdin is
//! *not* read — the synthesized commands are the whole script.
//!
//! `--follow SESSION` turns the client into a live subscriber: it
//! connects over TCP, sends `subscribe`, and prints every pushed view
//! delta as a line on stdout. When the server sheds it as a laggard it
//! re-subscribes from the pushed `resume_seq`; when the connection
//! drops it reconnects with the `--retry` backoff and resumes from the
//! last delta it printed.
//!
//! ```sh
//! viva-server-client --tcp 127.0.0.1:7878 --retry 5 --follow mysession
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use std::collections::BTreeMap;

use viva::Theme;
use viva_obs::Recorder;
use viva_server::protocol::SpanNode;
use viva_server::{Command, ErrorKind, Push, Response, Server, ServerLimits};

const USAGE: &str = "usage: viva-server-client [--tcp ADDR] [--timing] [--retry N] \
     [--attach SESSION=TRACE] [--list-traces] [--drop-trace TRACE] \
     [--render SESSION=WxH[@ZOOM[,PANX,PANY]]] \
     [--follow SESSION] [--profile SESSION] [SCRIPT (default stdin)]";

/// Parses `--render SESSION=WxH[@ZOOM[,PANX,PANY]]` into a `render`
/// command (light theme, no labels). The optional `@` suffix attaches
/// the level-of-detail camera — zoom alone, or zoom plus both pans;
/// without it the render is the classic camera-less frame.
fn parse_render(spec: &str) -> Option<Command> {
    let (session, rest) = spec.split_once('=')?;
    if session.is_empty() {
        return None;
    }
    let (size, camera) = match rest.split_once('@') {
        Some((s, c)) => (s, Some(c)),
        None => (rest, None),
    };
    let (w, h) = size.split_once('x')?;
    let width: f64 = w.parse().ok()?;
    let height: f64 = h.parse().ok()?;
    let (zoom, pan_x, pan_y) = match camera {
        None => (None, None, None),
        Some(c) => {
            let mut parts = c.split(',');
            let zoom: f64 = parts.next()?.parse().ok()?;
            let pans = match (parts.next(), parts.next(), parts.next()) {
                (None, None, None) => (None, None),
                (Some(x), Some(y), None) => {
                    (Some(x.parse::<f64>().ok()?), Some(y.parse::<f64>().ok()?))
                }
                _ => return None,
            };
            (Some(zoom), pans.0, pans.1)
        }
    };
    Some(Command::Render {
        session: session.to_owned(),
        width,
        height,
        theme: Theme::Light,
        labels: false,
        zoom,
        pan_x,
        pan_y,
    })
}

/// Exponential backoff with deterministic jitter. Each command (and the
/// initial connect) gets a fresh budget of `budget` retries; the wait
/// doubles from 10ms up to a 2s cap, a server-provided `retry_after_ms`
/// hint raises the floor, and an xorshift-derived jitter of up to half
/// the base spreads concurrent clients apart.
struct Retry {
    budget: u32,
    attempt: u32,
    rng: u64,
}

impl Retry {
    fn new(budget: u32) -> Self {
        // Seed the jitter stream per-process so a fleet of clients
        // started together does not retry in lockstep.
        let seed = u64::from(std::process::id()) | 0x9e37_79b9_7f4a_7c15;
        Retry { budget, attempt: 0, rng: seed }
    }

    /// The next wait, or `None` when the retry budget is spent.
    fn next_delay(&mut self, floor_ms: u64) -> Option<Duration> {
        if self.attempt >= self.budget {
            return None;
        }
        self.attempt += 1;
        let base = 10u64 << (self.attempt - 1).min(8);
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let jitter = self.rng % (base / 2 + 1);
        Some(Duration::from_millis(base.min(2_000).max(floor_ms) + jitter))
    }
}

/// If a response line is an overload shed, the `retry_after_ms` hint.
fn overload_hint(line: &str) -> Option<u64> {
    match Response::decode(line.trim()) {
        Ok(Response::Error { kind: ErrorKind::Overloaded { retry_after_ms }, .. }) => {
            Some(retry_after_ms)
        }
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut tcp: Option<String> = None;
    let mut script_path: Option<String> = None;
    let mut timing = false;
    let mut retry = 0u32;
    let mut follow: Option<String> = None;
    let mut profile: Option<String> = None;
    // Protocol commands synthesized from flags, replayed ahead of the
    // script in command-line order.
    let mut prelude: Vec<Command> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => match it.next() {
                Some(addr) => tcp = Some(addr),
                None => {
                    eprintln!("viva-server-client: --tcp needs an address\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--timing" => timing = true,
            "--attach" => match it.next().as_deref().and_then(|v| v.split_once('=')) {
                Some((session, trace)) if !session.is_empty() && !trace.is_empty() => {
                    prelude.push(Command::Attach {
                        session: session.to_owned(),
                        trace: trace.to_owned(),
                    });
                }
                _ => {
                    eprintln!("viva-server-client: --attach needs SESSION=TRACE\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--list-traces" => prelude.push(Command::ListTraces),
            "--render" => match it.next().as_deref().and_then(parse_render) {
                Some(cmd) => prelude.push(cmd),
                None => {
                    eprintln!(
                        "viva-server-client: --render needs SESSION=WxH[@ZOOM[,PANX,PANY]]\n{USAGE}"
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--drop-trace" => match it.next() {
                Some(trace) => prelude.push(Command::DropTrace { trace }),
                None => {
                    eprintln!("viva-server-client: --drop-trace needs a trace name\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--follow" => match it.next() {
                Some(session) => follow = Some(session),
                None => {
                    eprintln!("viva-server-client: --follow needs a session name\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--profile" => match it.next() {
                Some(session) => profile = Some(session),
                None => {
                    eprintln!("viva-server-client: --profile needs a session name\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--retry" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => retry = n,
                None => {
                    eprintln!("viva-server-client: --retry needs an integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if script_path.is_none() && !other.starts_with('-') => {
                script_path = Some(other.to_owned());
            }
            other => {
                eprintln!("viva-server-client: unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(session) = profile {
        // Profile mode asks a tracing server for its recent span trees
        // and prints where the session's commands spent their time.
        let Some(addr) = tcp else {
            eprintln!("viva-server-client: --profile requires --tcp\n{USAGE}");
            return ExitCode::FAILURE;
        };
        return match profile_tcp(&addr, &session, retry) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("viva-server-client: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(session) = follow {
        // Follow mode is a long-lived subscription, not a replay: it
        // needs a push-capable transport and takes no script.
        let Some(addr) = tcp else {
            eprintln!("viva-server-client: --follow requires --tcp\n{USAGE}");
            return ExitCode::FAILURE;
        };
        if script_path.is_some() || !prelude.is_empty() {
            eprintln!("viva-server-client: --follow cannot be combined with a script\n{USAGE}");
            return ExitCode::FAILURE;
        }
        return match follow_tcp(&addr, &session, retry) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("viva-server-client: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let body = match &script_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("viva-server-client: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        // Flags alone are a complete script; only fall back to stdin
        // when there is nothing else to run.
        None if !prelude.is_empty() => String::new(),
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("viva-server-client: read stdin: {e}");
                return ExitCode::FAILURE;
            }
            s
        }
    };
    let mut script = String::new();
    for cmd in &prelude {
        script.push_str(&cmd.encode());
        script.push('\n');
    }
    script.push_str(&body);

    // With `--timing`, each command's round-trip is recorded into a
    // client-side observability histogram keyed by command name; the
    // summary goes to stderr so stdout stays the byte-exact transcript.
    let recorder = if timing { Recorder::enabled() } else { Recorder::disabled() };
    let result = match tcp {
        None => replay_in_process(&script, &recorder, retry),
        Some(addr) => replay_tcp(&addr, &script, &recorder, retry),
    };
    if timing {
        print_timing(&recorder);
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("viva-server-client: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The histogram name a script line's latency is recorded under.
fn timing_name(line: &str) -> String {
    let cmd = Command::decode(line.trim()).map(|c| c.name()).unwrap_or("invalid");
    format!("client.cmd.{cmd}.seconds")
}

/// Prints the per-command latency summary (count, p50, p99) from the
/// client recorder's histograms, sorted by command name.
fn print_timing(recorder: &Recorder) {
    let snap = recorder.snapshot();
    eprintln!("command                    count      p50      p99");
    for h in &snap.histograms {
        let name = h.name.strip_prefix("client.cmd.").unwrap_or(&h.name);
        let name = name.strip_suffix(".seconds").unwrap_or(name);
        eprintln!(
            "{name:<24} {count:>8} {p50:>8} {p99:>8}",
            count = h.count,
            p50 = format_seconds(h.quantile(0.5)),
            p99 = format_seconds(h.quantile(0.99)),
        );
    }
}

/// Renders a factor-of-two latency bound compactly (`<1ms`, `<16ms`…).
fn format_seconds(s: f64) -> String {
    if s < 1e-3 {
        "<1ms".to_owned()
    } else if s < 1.0 {
        format!("<{:.0}ms", (s * 1e3).ceil())
    } else {
        format!("<{s:.0}s")
    }
}

/// `--profile`: fetch the server's recent span trees for one session
/// and print the per-phase breakdown — which commands ran, and inside
/// them, where the nanoseconds went (`session.lock`, `svg.encode`,
/// `journal.append`, ...). Requires a server started with tracing on
/// (`viva-server --self-trace`).
fn profile_tcp(addr: &str, session: &str, retries: u32) -> Result<(), String> {
    let (mut reader, mut writer) = connect(addr, retries)?;
    let cmd = Command::Spans { session: Some(session.to_owned()), limit: Some(64) };
    writer
        .write_all(format!("{}\n", cmd.encode()).as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
    match Response::decode(line.trim()).map_err(|e| e.message)? {
        Response::Spans { dropped, spans } => {
            print_profile(session, dropped, &spans);
            Ok(())
        }
        Response::Error { message, .. } => Err(format!("profile {session:?}: {message}")),
        _ => Err(format!("unexpected response: {}", line.trim())),
    }
}

/// Renders the span trees as two tables: sampled commands (roots) and
/// the phases inside them, each with count, total and mean wall time,
/// phases also with their share of the commands' total.
fn print_profile(session: &str, dropped: u64, spans: &[SpanNode]) {
    #[derive(Default)]
    struct Acc {
        count: u64,
        total_ns: u64,
    }
    let mut commands: BTreeMap<&str, Acc> = BTreeMap::new();
    let mut phases: BTreeMap<&str, Acc> = BTreeMap::new();
    let mut root_ns = 0u64;
    for s in spans {
        let bucket = if s.parent == 0 {
            root_ns += s.duration_ns;
            commands.entry(&s.name).or_default()
        } else {
            phases.entry(&s.name).or_default()
        };
        bucket.count += 1;
        bucket.total_ns += s.duration_ns;
    }
    let trees: u64 = commands.values().map(|a| a.count).sum();
    println!(
        "profile of session {session:?}: {trees} sampled command trees, {} spans{}",
        spans.len(),
        if dropped > 0 { format!(" ({dropped} older spans dropped)") } else { String::new() }
    );
    if trees == 0 {
        println!("no sampled spans for this session yet (is tracing on? is the sample rate 1-in-N?)");
        return;
    }
    println!("{:<24} {:>6} {:>10} {:>10}", "command", "count", "total", "mean");
    for (name, a) in &commands {
        println!(
            "{name:<24} {:>6} {:>10} {:>10}",
            a.count,
            format_ns(a.total_ns),
            format_ns(a.total_ns / a.count.max(1)),
        );
    }
    if !phases.is_empty() {
        println!();
        println!("{:<24} {:>6} {:>10} {:>10} {:>6}", "phase", "count", "total", "mean", "share");
        for (name, a) in &phases {
            println!(
                "{name:<24} {:>6} {:>10} {:>10} {:>5.1}%",
                a.count,
                format_ns(a.total_ns),
                format_ns(a.total_ns / a.count.max(1)),
                100.0 * a.total_ns as f64 / root_ns.max(1) as f64,
            );
        }
    }
}

/// Compact wall-time rendering for the profile tables.
fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Replays against an embedded server: the deterministic mode golden
/// transcripts are recorded in.
fn replay_in_process(script: &str, recorder: &Recorder, retries: u32) -> Result<(), String> {
    let server = Server::new(ServerLimits::default());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in script.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let span = recorder.is_enabled().then(|| recorder.span(&timing_name(line)));
        let mut retry = Retry::new(retries);
        let mut response = server.handle_line(line);
        while let Some(hint) = response.as_deref().and_then(overload_hint) {
            let Some(delay) = retry.next_delay(hint) else { break };
            std::thread::sleep(delay);
            response = server.handle_line(line);
        }
        drop(span);
        if let Some(response) = response {
            writeln!(out, "{response}").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Connects, retrying refused/unreachable servers on the given policy.
fn connect(addr: &str, retries: u32) -> Result<(BufReader<TcpStream>, TcpStream), String> {
    let mut retry = Retry::new(retries);
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) => match retry.next_delay(0) {
                Some(delay) => std::thread::sleep(delay),
                None => return Err(format!("connect {addr}: {e}")),
            },
        }
    };
    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    Ok((reader, stream))
}

/// `--follow`: subscribe to a live session and print every line the
/// server pushes. Three resume paths, all converging on `subscribe`:
///
/// * a **`lagging` push** (this subscriber fell behind and its queue
///   was shed) re-subscribes from the pushed `resume_seq` on the same
///   connection — one snapshot delta resynchronizes;
/// * a **dropped connection** reconnects with the retry backoff and
///   re-subscribes from just after the last delta printed;
/// * the **first** subscribe sends no `from_seq` and receives the full
///   current view as its opening snapshot.
///
/// Exits cleanly when the server goes away for good (retry budget
/// spent after at least one successful subscription).
fn follow_tcp(addr: &str, session: &str, retries: u32) -> Result<(), String> {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut from_seq: Option<u64> = None;
    let mut subscribed_once = false;
    loop {
        let (mut reader, mut writer) = match connect(addr, retries) {
            Ok(rw) => rw,
            Err(e) if subscribed_once => {
                eprintln!("viva-server-client: follow: server is gone ({e}); exiting");
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let sub = Command::Subscribe { session: session.to_owned(), from_seq };
        if writer.write_all(format!("{}\n", sub.encode()).as_bytes()).is_err() {
            continue; // connection died immediately; reconnect
        }
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break, // reconnect and resume
                Ok(_) => {}
            }
            let text = line.trim_end();
            writeln!(out, "{text}").map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            if Push::is_push(text) {
                match Push::decode(text) {
                    Ok(Push::Delta { seq, .. }) => from_seq = Some(seq + 1),
                    Ok(Push::Lagging { resume_seq, .. }) => {
                        from_seq = Some(resume_seq);
                        let resub =
                            Command::Subscribe { session: session.to_owned(), from_seq };
                        if writer.write_all(format!("{}\n", resub.encode()).as_bytes()).is_err() {
                            break;
                        }
                    }
                    Err(_) => {}
                }
            } else {
                match Response::decode(text) {
                    Ok(Response::Subscribed { .. }) => subscribed_once = true,
                    Ok(Response::Error { .. }) => {
                        return Err(format!("follow {session:?}: {text}"));
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Replays against a live TCP server, printing its responses. A shed
/// command is re-sent on the retry policy; a connection the server
/// closed (drain, idle timeout) is re-established if retries remain.
fn replay_tcp(addr: &str, script: &str, recorder: &Recorder, retries: u32) -> Result<(), String> {
    let (mut reader, mut writer) = connect(addr, retries)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in script.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let span = recorder.is_enabled().then(|| recorder.span(&timing_name(line)));
        let mut retry = Retry::new(retries);
        let response = loop {
            writer
                .write_all(format!("{line}\n").as_bytes())
                .map_err(|e| format!("send: {e}"))?;
            let mut response = String::new();
            let n = reader.read_line(&mut response).map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                // The server closed the connection (drain or timeout):
                // reconnect and re-send if the budget allows.
                let Some(delay) = retry.next_delay(0) else {
                    return Err("server closed the connection mid-script".to_owned());
                };
                std::thread::sleep(delay);
                (reader, writer) = connect(addr, retries)?;
                continue;
            }
            match overload_hint(&response) {
                Some(hint) => match retry.next_delay(hint) {
                    Some(delay) => std::thread::sleep(delay),
                    None => break response,
                },
                None => break response,
            }
        };
        drop(span);
        out.write_all(response.as_bytes()).map_err(|e| e.to_string())?;
    }
    Ok(())
}
