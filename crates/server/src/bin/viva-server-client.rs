//! The deterministic scripted client: replays a command script
//! byte-for-byte and prints one response line per command line.
//!
//! ```sh
//! # In-process replay (no server needed; the golden-transcript mode):
//! viva-server-client session.script > transcript.ndjson
//!
//! # Against a running TCP server:
//! viva-server-client --tcp 127.0.0.1:7878 session.script
//!
//! # Either mode, with a per-command latency summary on stderr
//! # (p50/p99 from the observability histograms; stdout unchanged):
//! viva-server-client --timing session.script > transcript.ndjson
//! ```
//!
//! Blank lines in the script are skipped (they produce no response in
//! either mode), so a script replayed in-process and a script piped to
//! `viva-server --stdio` yield identical transcripts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use viva_obs::Recorder;
use viva_server::{Command, Server, ServerLimits};

const USAGE: &str =
    "usage: viva-server-client [--tcp ADDR] [--timing] [SCRIPT (default stdin)]";

fn main() -> ExitCode {
    let mut tcp: Option<String> = None;
    let mut script_path: Option<String> = None;
    let mut timing = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => match it.next() {
                Some(addr) => tcp = Some(addr),
                None => {
                    eprintln!("viva-server-client: --tcp needs an address\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--timing" => timing = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if script_path.is_none() && !other.starts_with('-') => {
                script_path = Some(other.to_owned());
            }
            other => {
                eprintln!("viva-server-client: unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let script = match &script_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("viva-server-client: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("viva-server-client: read stdin: {e}");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    // With `--timing`, each command's round-trip is recorded into a
    // client-side observability histogram keyed by command name; the
    // summary goes to stderr so stdout stays the byte-exact transcript.
    let recorder = if timing { Recorder::enabled() } else { Recorder::disabled() };
    let result = match tcp {
        None => replay_in_process(&script, &recorder),
        Some(addr) => replay_tcp(&addr, &script, &recorder),
    };
    if timing {
        print_timing(&recorder);
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("viva-server-client: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The histogram name a script line's latency is recorded under.
fn timing_name(line: &str) -> String {
    let cmd = Command::decode(line.trim()).map(|c| c.name()).unwrap_or("invalid");
    format!("client.cmd.{cmd}.seconds")
}

/// Prints the per-command latency summary (count, p50, p99) from the
/// client recorder's histograms, sorted by command name.
fn print_timing(recorder: &Recorder) {
    let snap = recorder.snapshot();
    eprintln!("command                    count      p50      p99");
    for h in &snap.histograms {
        let name = h.name.strip_prefix("client.cmd.").unwrap_or(&h.name);
        let name = name.strip_suffix(".seconds").unwrap_or(name);
        eprintln!(
            "{name:<24} {count:>8} {p50:>8} {p99:>8}",
            count = h.count,
            p50 = format_seconds(h.quantile(0.5)),
            p99 = format_seconds(h.quantile(0.99)),
        );
    }
}

/// Renders a factor-of-two latency bound compactly (`<1ms`, `<16ms`…).
fn format_seconds(s: f64) -> String {
    if s < 1e-3 {
        "<1ms".to_owned()
    } else if s < 1.0 {
        format!("<{:.0}ms", (s * 1e3).ceil())
    } else {
        format!("<{s:.0}s")
    }
}

/// Replays against an embedded server: the deterministic mode golden
/// transcripts are recorded in.
fn replay_in_process(script: &str, recorder: &Recorder) -> Result<(), String> {
    let server = Server::new(ServerLimits::default());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in script.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let span = recorder.is_enabled().then(|| recorder.span(&timing_name(line)));
        let response = server.handle_line(line);
        drop(span);
        if let Some(response) = response {
            writeln!(out, "{response}").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Replays against a live TCP server, printing its responses.
fn replay_tcp(addr: &str, script: &str, recorder: &Recorder) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in script.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let span = recorder.is_enabled().then(|| recorder.span(&timing_name(line)));
        writer
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        let n = reader.read_line(&mut response).map_err(|e| format!("recv: {e}"))?;
        drop(span);
        if n == 0 {
            return Err("server closed the connection mid-script".to_owned());
        }
        out.write_all(response.as_bytes()).map_err(|e| e.to_string())?;
    }
    Ok(())
}
