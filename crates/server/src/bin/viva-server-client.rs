//! The deterministic scripted client: replays a command script
//! byte-for-byte and prints one response line per command line.
//!
//! ```sh
//! # In-process replay (no server needed; the golden-transcript mode):
//! viva-server-client session.script > transcript.ndjson
//!
//! # Against a running TCP server:
//! viva-server-client --tcp 127.0.0.1:7878 session.script
//! ```
//!
//! Blank lines in the script are skipped (they produce no response in
//! either mode), so a script replayed in-process and a script piped to
//! `viva-server --stdio` yield identical transcripts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use viva_server::{Server, ServerLimits};

const USAGE: &str = "usage: viva-server-client [--tcp ADDR] [SCRIPT (default stdin)]";

fn main() -> ExitCode {
    let mut tcp: Option<String> = None;
    let mut script_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => match it.next() {
                Some(addr) => tcp = Some(addr),
                None => {
                    eprintln!("viva-server-client: --tcp needs an address\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if script_path.is_none() && !other.starts_with('-') => {
                script_path = Some(other.to_owned());
            }
            other => {
                eprintln!("viva-server-client: unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let script = match &script_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("viva-server-client: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("viva-server-client: read stdin: {e}");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    let result = match tcp {
        None => replay_in_process(&script),
        Some(addr) => replay_tcp(&addr, &script),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("viva-server-client: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Replays against an embedded server: the deterministic mode golden
/// transcripts are recorded in.
fn replay_in_process(script: &str) -> Result<(), String> {
    let server = Server::new(ServerLimits::default());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in script.lines() {
        if let Some(response) = server.handle_line(line) {
            writeln!(out, "{response}").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Replays against a live TCP server, printing its responses.
fn replay_tcp(addr: &str, script: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in script.lines() {
        if line.trim().is_empty() {
            continue;
        }
        writer
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        let n = reader.read_line(&mut response).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection mid-script".to_owned());
        }
        out.write_all(response.as_bytes()).map_err(|e| e.to_string())?;
    }
    Ok(())
}
