//! # viva-server — the headless serving layer
//!
//! Everything the paper's analyst does in-process on an
//! [`viva::AnalysisSession`] — time-slice selection (§3.2.1),
//! collapse/expand (§3.2.2), force sliders and node drags (§4.2),
//! rendering — exposed over a **newline-delimited JSON wire protocol**
//! so an analysis can be driven remotely, shared between analysts, and
//! benchmarked under concurrent load.
//!
//! The design follows graphVizdb's server-boundary-in-front-of-the-
//! graph shape and Mr. Plotter's resolution-aware request/response
//! discipline: the client states *what it wants to see* (slice,
//! collapse level, viewport, theme) and the server answers from caches
//! wherever the session revision proves the answer is still fresh.
//!
//! ## Pieces
//!
//! * [`protocol`] — the [`Command`] / [`Response`] enums and their
//!   deterministic
//!   JSON encoding: same value, same bytes, always. Built on the
//!   dependency-free [`json`] module.
//! * [`registry`] — [`SessionRegistry`]:
//!   many concurrent named sessions behind per-session locks, bounded
//!   by LRU eviction on a logical clock.
//! * [`cache`] — the per-session frame cache keyed on
//!   `(view revision, viewport, theme)`; slider-only changes re-render
//!   without re-aggregating, repeat renders are free.
//! * [`server`] — [`Server`]: the transport-agnostic
//!   request loop, served over stdio (single analyst) or a
//!   `TcpListener` with a thread-per-connection worker pool — behind
//!   admission control, per-command deadlines, and a graceful drain
//!   (DESIGN.md §14).
//! * [`checkpoint`] — [`SessionCheckpoint`]:
//!   deterministic, versioned snapshots of per-session view state;
//!   a restored session renders byte-identically to the live one.
//! * [`store`] — [`TraceStore`]: named, content-hashed, refcounted
//!   traces; `load_trace` pays parse + index once and `attach` creates
//!   further sessions over the same `Arc<Trace>` for free.
//!
//! ## Determinism
//!
//! A fresh server given the same command script produces
//! **byte-identical** response transcripts: layouts are seeded and
//! byte-deterministic, JSON encoding is canonical, and every cache
//! and eviction decision runs on logical clocks, not wall time. The
//! golden-transcript tests and `ci.sh server-smoke` hold the serving
//! layer to exactly that bar.
//!
//! ## Quickstart (stdio)
//!
//! ```text
//! $ cargo run -p viva-server --bin viva-server -- --stdio
//! {"cmd":"load_trace","session":"a","mode":"strict","text":"span,0.0,10.0\n..."}
//! {"ok":"loaded","session":"a","containers":6,...}
//! {"cmd":"render","session":"a","width":800,"height":600,"theme":"light","labels":false}
//! {"ok":"frame","revision":0,"cached":false,"svg":"<svg ..."}
//! ```

pub mod cache;
pub mod checkpoint;
pub mod json;
pub mod protocol;
pub mod registry;
pub mod selftrace;
pub mod server;
pub mod store;

pub use cache::{FrameCache, FrameKey};
pub use checkpoint::{
    NodePlacement, RestoreError, SessionCheckpoint, CHECKPOINT_VERSION, OLDEST_RESTORABLE_VERSION,
};
pub use json::{Json, JsonError};
pub use protocol::{
    Command, CommandClass, DecodeError, DeltaNode, ErrorKind, Push, Response, SessionStats,
    StatsBlock, StatsEvent,
};
pub use registry::{
    DeadlineBudgets, LiveStream, ServerLimits, ServerSession, SessionRegistry, SessionSlot,
};
pub use server::{serve_tcp, Server};
pub use store::{content_hash, hash_token, StoredTrace, TraceEntry, TraceStore};
