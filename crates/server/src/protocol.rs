//! The wire protocol: newline-delimited JSON commands and responses.
//!
//! One request line carries one [`Command`]; the server answers with
//! exactly one [`Response`] line. Encoding is **deterministic** — the
//! same value always serializes to the same bytes (see
//! [`crate::json`]) — which is what makes golden-transcript testing
//! and byte-for-byte replay possible. Decoding accepts member order
//! freely and ignores unknown members, so clients can grow fields
//! without breaking old servers.
//!
//! The command set mirrors the paper's interactive loop one-to-one
//! (§4.2: time-slice selection, collapse/expand, force sliders, node
//! drag/pin) plus the serving concerns around it (trace upload,
//! session management, rendering). Containers and metrics are
//! addressed **by name** — names are stable across loads, ids are not.

use std::fmt;
use std::str::FromStr;

use viva::Theme;
use viva_trace::RecoveryMode;

use crate::checkpoint::SessionCheckpoint;
use crate::json::Json;
use crate::store::TraceEntry;

/// A request from the analyst's client to the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Lists the names of live sessions, sorted.
    Sessions,
    /// Closes (drops) a session.
    CloseSession {
        /// Session name.
        session: String,
    },
    /// Uploads a trace (the CSV interchange format of `viva-trace`)
    /// and (re)creates `session` over it. Routed through
    /// `TraceLoader` with the server's resource budget, so hostile
    /// uploads degrade or error — they never crash the server. The
    /// loaded trace is also registered in the server's `TraceStore`
    /// (under `trace` when given, else under the session's name), so
    /// later [`Command::Attach`]es share it without re-uploading.
    LoadTrace {
        /// Session to create or replace.
        session: String,
        /// Ingestion recovery mode.
        mode: RecoveryMode,
        /// The trace text (CSV lines).
        text: String,
        /// Store name to register the trace under; defaults to the
        /// session name. Absent on the wire when `None`, so pre-0.7
        /// scripts encode (and replay) byte-identically.
        trace: Option<String>,
    },
    /// Creates (or replaces) `session` over a trace already registered
    /// in the `TraceStore` — no re-upload, no re-parse, no re-index:
    /// the new session shares the stored `Arc<Trace>` and `AggIndex`.
    Attach {
        /// Session to create or replace.
        session: String,
        /// Store name of the trace to attach to.
        trace: String,
    },
    /// Lists the stored traces (name, content hash, size, live session
    /// count), name-sorted.
    ListTraces,
    /// Drops a trace from the store. Sessions already attached keep
    /// their shared handle; only new attaches are stopped.
    DropTrace {
        /// Store name of the trace to drop.
        trace: String,
    },
    /// Sets the analysis time-slice (§3.2.1); answered with the
    /// effective (clamped) slice.
    SetTimeSlice {
        /// Session name.
        session: String,
        /// Slice start, seconds.
        start: f64,
        /// Slice end, seconds.
        end: f64,
    },
    /// Collapses a group into one aggregated node (§3.2.2).
    Collapse {
        /// Session name.
        session: String,
        /// Container name.
        container: String,
    },
    /// Expands a collapsed group.
    Expand {
        /// Session name.
        session: String,
        /// Container name.
        container: String,
    },
    /// Jumps to one hierarchy level (Fig. 8).
    CollapseAtDepth {
        /// Session name.
        session: String,
        /// Tree depth to collapse at (0 = whole system as one node).
        depth: u32,
    },
    /// Expands everything (finest view).
    ExpandAll {
        /// Session name.
        session: String,
    },
    /// Updates the force sliders (§4.2). Absent fields keep their
    /// value; the result is sanitized through `LayoutConfig::sanitized`
    /// and echoed back.
    SetForces {
        /// Session name.
        session: String,
        /// New Coulomb repulsion constant.
        repulsion: Option<f64>,
        /// New spring constant.
        spring: Option<f64>,
        /// New velocity damping in `(0, 1]`.
        damping: Option<f64>,
    },
    /// Moves a per-size-group scaling slider (§4.1).
    SetScaling {
        /// Session name.
        session: String,
        /// Size-group name (typically a metric name).
        group: String,
        /// Slider multiplier (finite, ≥ 0; 1.0 = automatic).
        factor: f64,
    },
    /// Drags a visible node to a position and pins it there.
    Drag {
        /// Session name.
        session: String,
        /// Container name.
        container: String,
        /// Target x.
        x: f64,
        /// Target y.
        y: f64,
    },
    /// Releases a pinned node back to the simulation.
    Release {
        /// Session name.
        session: String,
        /// Container name.
        container: String,
    },
    /// Runs up to `steps` layout iterations (clamped to the server's
    /// per-command step budget).
    Relax {
        /// Session name.
        session: String,
        /// Requested iteration count.
        steps: u64,
    },
    /// Aggregates a metric over a group × the current slice (Eq. 1).
    Aggregate {
        /// Session name.
        session: String,
        /// Metric name.
        metric: String,
        /// Container name of the group.
        group: String,
    },
    /// Reads the server's observability snapshot — and, when `session`
    /// names a live session, that session's too. Only the
    /// **deterministic** portion of the metrics crosses the wire
    /// (counter values, gauge values, histogram sample counts, event
    /// log); wall-clock timings stay behind `--metrics-out`.
    Stats {
        /// Session whose metrics to include, if any.
        session: Option<String>,
        /// When `true`, atomically snapshot **and zero** the reported
        /// counters and histograms (gauges and event rings untouched),
        /// so closed-loop benches can measure per-window rates. The
        /// returned blocks are the window that just ended. Absent on
        /// the wire when `false`, so pre-0.10 scripts replay
        /// byte-identically.
        reset: bool,
    },
    /// Reads a deterministic subset of the recently finished causal
    /// spans (newest root trees first, capped at `limit` roots). Spans
    /// exist only when the server was started with tracing enabled
    /// (`--self-trace`); otherwise the answer is an empty list. Wall
    /// durations ride along for profiling clients — they are the one
    /// non-deterministic member, and golden scripts simply do not
    /// exercise this command.
    Spans {
        /// Only roots annotated with this session name, when given.
        session: Option<String>,
        /// Maximum root trees to return; default 16.
        limit: Option<u64>,
    },
    /// Renders the current view to SVG. Viewport and theme come from
    /// the request; frames are served from the per-session cache when
    /// the session revision and presentation match.
    Render {
        /// Session name.
        session: String,
        /// Canvas width, pixels (finite, positive).
        width: f64,
        /// Canvas height, pixels (finite, positive).
        height: f64,
        /// Color theme.
        theme: Theme,
        /// Draw node labels.
        labels: bool,
        /// Level-of-detail camera zoom factor. When all three camera
        /// fields are absent the render takes the classic camera-less
        /// path and is byte-identical to pre-LoD servers.
        zoom: Option<f64>,
        /// Camera pan along x, in canvas pixels.
        pan_x: Option<f64>,
        /// Camera pan along y, in canvas pixels.
        pan_y: Option<f64>,
    },
    /// Snapshots a session's view state into a [`SessionCheckpoint`]
    /// and returns it (also writing it to the server's checkpoint
    /// directory when one is configured). Pure read — the session is
    /// not perturbed.
    Checkpoint {
        /// Session name.
        session: String,
    },
    /// Rebuilds a session from a checkpoint: the one supplied inline
    /// in `state`, or — when `state` is absent — the one previously
    /// written to the server's checkpoint directory under this
    /// session's name. Replaces any live session of the same name.
    Restore {
        /// Session to (re)create.
        session: String,
        /// Inline checkpoint; `None` reads the checkpoint directory.
        state: Option<Box<SessionCheckpoint>>,
    },
    /// Appends one trace line to a **live streaming session**,
    /// creating the session on the first append. The record is written
    /// to the session's journal (and acknowledged only after the write
    /// succeeds — journal-before-ack), then applied incrementally to
    /// the live trace. Delivery is at-least-once: a `seq` at or below
    /// the session's high-water mark is acknowledged again without
    /// re-applying (idempotent duplicate), a `seq` beyond
    /// `last_seq + 1` is refused with [`ErrorKind::SeqGap`] carrying
    /// the expected value.
    Append {
        /// Live session to create or extend.
        session: String,
        /// Client-assigned sequence number, contiguous from 1.
        seq: u64,
        /// One trace interchange line (no trailing newline needed).
        text: String,
    },
    /// Seals a live session's journal: the stream is complete, no
    /// further appends are accepted (they fail with
    /// [`ErrorKind::SessionSealed`]). The session itself stays live
    /// for analysis.
    Seal {
        /// Live session to seal.
        session: String,
    },
    /// Subscribes this connection to a live session's view deltas.
    /// Each applied append pushes a [`Push::Delta`] line (changed
    /// nodes only) to every subscriber. Queues are bounded: a slow
    /// subscriber is shed with a single [`Push::Lagging`] line and
    /// must re-subscribe from the carried `resume_seq`.
    Subscribe {
        /// Live session to follow.
        session: String,
        /// First sequence number the subscriber has **not** seen;
        /// anything at or after it is covered by an immediate snapshot
        /// delta. Absent means "from now on".
        from_seq: Option<u64>,
    },
    /// Starts a graceful drain: every live session is checkpointed (to
    /// the checkpoint directory when configured), new connections and
    /// state-changing commands are refused with `overloaded`, in-flight
    /// commands finish, and the accept loops exit.
    Shutdown,
}

/// Deadline classes: commands with similar cost share one budget (a
/// render is allowed far more time than flipping the time slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandClass {
    /// Constant-time bookkeeping: ping, session listing, stats, close,
    /// shutdown.
    Control,
    /// Interactive view mutations and queries: slice, collapse, forces,
    /// scaling, drag, aggregate.
    Interact,
    /// Trace ingestion: load, checkpoint, restore (all touch the whole
    /// trace).
    Load,
    /// Layout iteration batches.
    Relax,
    /// Frame rendering.
    Render,
}

impl CommandClass {
    /// Every class, in the fixed order the self-trace exporter
    /// enumerates its metrics.
    pub const ALL: [CommandClass; 5] = [
        CommandClass::Control,
        CommandClass::Interact,
        CommandClass::Load,
        CommandClass::Relax,
        CommandClass::Render,
    ];

    /// Stable lowercase label (metric names in the self-trace export).
    pub fn label(self) -> &'static str {
        match self {
            CommandClass::Control => "control",
            CommandClass::Interact => "interact",
            CommandClass::Load => "load",
            CommandClass::Relax => "relax",
            CommandClass::Render => "render",
        }
    }

    /// The class of the command named `name` (the [`Command::name`]
    /// token) — how span records, which carry only the name, find the
    /// metric their duration bills to. `None` for names that are not
    /// commands (phase spans).
    pub fn of_name(name: &str) -> Option<CommandClass> {
        Some(match name {
            "ping" | "sessions" | "close_session" | "list_traces" | "drop_trace" | "stats"
            | "spans" | "shutdown" => CommandClass::Control,
            "set_time_slice" | "collapse" | "expand" | "collapse_at_depth" | "expand_all"
            | "set_forces" | "set_scaling" | "drag" | "release" | "aggregate" | "append"
            | "seal" | "subscribe" => CommandClass::Interact,
            "load_trace" | "attach" | "checkpoint" | "restore" => CommandClass::Load,
            "relax" => CommandClass::Relax,
            "render" => CommandClass::Render,
            _ => return None,
        })
    }
}

/// Why a command was rejected. The variant is the wire-visible `err`
/// kind; the accompanying message is human-readable detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not a valid protocol message (bad JSON,
    /// missing/ill-typed field, oversized line).
    Protocol,
    /// Valid JSON, but an unknown `cmd`.
    UnknownCommand,
    /// The named session does not exist (never created, closed, or
    /// evicted).
    NoSession,
    /// The named container is not part of the session's trace.
    UnknownContainer,
    /// The container exists but is hidden inside a collapsed group.
    HiddenContainer,
    /// The named metric is not recorded in the trace.
    UnknownMetric,
    /// NaN/infinite or inverted time-slice bounds.
    InvalidTimeSlice,
    /// A drag position with a NaN/infinite coordinate.
    NonFinitePosition,
    /// A render viewport with non-finite or non-positive dimensions.
    BadViewport,
    /// An unknown theme name.
    BadTheme,
    /// An argument outside its legal range (e.g. a negative or
    /// non-finite scaling factor).
    BadArgument,
    /// A strict-mode trace upload failed to parse.
    ParseTrace,
    /// A strict-mode trace upload exhausted the server's resource
    /// budget.
    BudgetExceeded,
    /// The server shed this command instead of queueing it: admission
    /// control (too many in-flight commands or too many waiters on the
    /// session) or a drain in progress. The work was **not** started;
    /// retry after the hinted delay.
    Overloaded {
        /// Client back-off hint, milliseconds.
        retry_after_ms: u64,
    },
    /// The command exceeded its deadline budget and was abandoned; the
    /// session is at its last consistent revision.
    DeadlineExceeded,
    /// A `restore` was given a checkpoint the server cannot honor
    /// (unsupported version, rejected trace, state that does not fit
    /// the trace, or no stored checkpoint for the session).
    BadCheckpoint,
    /// An `attach`/`drop_trace` named a trace the store does not hold.
    NoTrace,
    /// An `append` skipped ahead of the session's high-water mark. The
    /// journal never holds a gap; resend from `expected`.
    SeqGap {
        /// The sequence number the session expects next.
        expected: u64,
    },
    /// An `append`/`seal`/`subscribe` named a session that exists but
    /// is not a live streaming session (it was created by
    /// `load_trace`/`attach`/`restore` without a journal).
    NotLive,
    /// An `append` on a sealed live session.
    SessionSealed,
    /// The journal write behind an `append` (or `seal`) failed at the
    /// filesystem. The event was **not** acknowledged and was not
    /// applied — the ack is a durability promise, so an event the
    /// journal could not hold must be resent once the disk recovers.
    JournalIo,
}

impl ErrorKind {
    /// The stable wire token.
    pub fn token(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::UnknownCommand => "unknown_command",
            ErrorKind::NoSession => "no_session",
            ErrorKind::UnknownContainer => "unknown_container",
            ErrorKind::HiddenContainer => "hidden_container",
            ErrorKind::UnknownMetric => "unknown_metric",
            ErrorKind::InvalidTimeSlice => "invalid_time_slice",
            ErrorKind::NonFinitePosition => "non_finite_position",
            ErrorKind::BadViewport => "bad_viewport",
            ErrorKind::BadTheme => "bad_theme",
            ErrorKind::BadArgument => "bad_argument",
            ErrorKind::ParseTrace => "parse_trace",
            ErrorKind::BudgetExceeded => "budget_exceeded",
            ErrorKind::Overloaded { .. } => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::BadCheckpoint => "bad_checkpoint",
            ErrorKind::NoTrace => "no_trace",
            ErrorKind::SeqGap { .. } => "seq_gap",
            ErrorKind::NotLive => "not_live",
            ErrorKind::SessionSealed => "sealed",
            ErrorKind::JournalIo => "journal_io",
        }
    }

    fn from_token(s: &str) -> Option<ErrorKind> {
        use ErrorKind::*;
        Some(match s {
            "protocol" => Protocol,
            "unknown_command" => UnknownCommand,
            "no_session" => NoSession,
            "unknown_container" => UnknownContainer,
            "hidden_container" => HiddenContainer,
            "unknown_metric" => UnknownMetric,
            "invalid_time_slice" => InvalidTimeSlice,
            "non_finite_position" => NonFinitePosition,
            "bad_viewport" => BadViewport,
            "bad_theme" => BadTheme,
            "bad_argument" => BadArgument,
            "parse_trace" => ParseTrace,
            "budget_exceeded" => BudgetExceeded,
            // The hint rides in a separate response member;
            // `Response::decode` fills it in.
            "overloaded" => Overloaded { retry_after_ms: 0 },
            "deadline_exceeded" => DeadlineExceeded,
            "bad_checkpoint" => BadCheckpoint,
            "no_trace" => NoTrace,
            // The expected seq rides in a separate response member;
            // `Response::decode` fills it in.
            "seq_gap" => SeqGap { expected: 0 },
            "not_live" => NotLive,
            "sealed" => SessionSealed,
            "journal_io" => JournalIo,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One discrete event from an observability ring buffer, on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsEvent {
    /// Logical-clock stamp (deterministic).
    pub seq: u64,
    /// Event name, e.g. `layout.freeze`.
    pub name: String,
    /// Machine-readable detail, e.g. the freeze reason token.
    pub detail: String,
}

/// The deterministic portion of one recorder scope's metrics: counter
/// values, gauge values, histogram **sample counts**, and the event
/// log. Histogram sums and bucket occupancy are wall-clock-dependent,
/// so they never cross the wire — that is what keeps the `stats`
/// command inside the golden-transcript byte-determinism contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsBlock {
    /// Logical clock at snapshot time (advances per event).
    pub clock: u64,
    /// Name-sorted counter values.
    pub counters: Vec<(String, u64)>,
    /// Name-sorted gauge values. Non-finite readings are reported as
    /// `0` (JSON carries no NaN/∞); the watchdog freezes layouts
    /// before non-finite state normally reaches a gauge.
    pub gauges: Vec<(String, f64)>,
    /// Name-sorted histogram sample counts.
    pub histograms: Vec<(String, u64)>,
    /// Ring-buffer contents, oldest first.
    pub events: Vec<StatsEvent>,
    /// Events evicted from the ring buffer.
    pub events_dropped: u64,
}

impl StatsBlock {
    /// Projects a recorder snapshot onto its wire-safe subset.
    pub fn from_snapshot(snap: &viva_obs::Snapshot) -> StatsBlock {
        StatsBlock {
            clock: snap.clock,
            counters: snap.counters.clone(),
            gauges: snap
                .gauges
                .iter()
                .map(|(n, v)| (n.clone(), if v.is_finite() { *v } else { 0.0 }))
                .collect(),
            histograms: snap.histograms.iter().map(|h| (h.name.clone(), h.count)).collect(),
            events: snap
                .events
                .iter()
                .map(|e| StatsEvent {
                    seq: e.seq,
                    name: e.name.clone(),
                    detail: e.detail.clone(),
                })
                .collect(),
            events_dropped: snap.events_dropped,
        }
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("clock", Json::Num(self.clock as f64)),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "events",
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            obj(vec![
                                ("seq", Json::Num(e.seq as f64)),
                                ("name", Json::Str(e.name.clone())),
                                ("detail", Json::Str(e.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("events_dropped", Json::Num(self.events_dropped as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<StatsBlock, DecodeError> {
        let u64_map = |key: &str| -> Result<Vec<(String, u64)>, DecodeError> {
            match v.get(key) {
                Some(Json::Obj(members)) => members
                    .iter()
                    .map(|(k, m)| {
                        m.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| bad(format!("non-integer entry in {key:?}")))
                    })
                    .collect(),
                _ => Err(bad(format!("missing or non-object field {key:?}"))),
            }
        };
        let gauges = match v.get("gauges") {
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(k, m)| {
                    m.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| bad("non-numeric entry in \"gauges\""))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(bad("missing or non-object field \"gauges\"")),
        };
        let events = match v.get("events") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|e| {
                    Ok(StatsEvent {
                        seq: uint_field(e, "seq")?,
                        name: str_field(e, "name")?,
                        detail: str_field(e, "detail")?,
                    })
                })
                .collect::<Result<Vec<_>, DecodeError>>()?,
            _ => return Err(bad("missing or non-array field \"events\"")),
        };
        Ok(StatsBlock {
            clock: uint_field(v, "clock")?,
            counters: u64_map("counters")?,
            gauges,
            histograms: u64_map("histograms")?,
            events,
            events_dropped: uint_field(v, "events_dropped")?,
        })
    }
}

/// One finished causal span on the wire (flat tree encoding: children
/// point at their parent's `id`; roots carry `parent: 0`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanNode {
    /// Tree identity — every span of one command shares it.
    pub trace: u64,
    /// This span's id; ids are allocated at span start, so a parent's
    /// id is always smaller than its children's.
    pub id: u64,
    /// Parent span id; `0` marks a root.
    pub parent: u64,
    /// Phase name (command name on roots, e.g. `render`; phase name on
    /// children, e.g. `svg.encode`).
    pub name: String,
    /// Session annotation on command roots, empty otherwise.
    pub detail: String,
    /// Shard worker the span ran on.
    pub shard: u64,
    /// Logical start tick (deterministic under a fixed sampling seed).
    pub start_tick: u64,
    /// Logical end tick.
    pub end_tick: u64,
    /// Wall-clock duration in nanoseconds — profiling data, the one
    /// non-deterministic member.
    pub duration_ns: u64,
}

impl SpanNode {
    fn to_json(&self) -> Json {
        obj(vec![
            ("trace", Json::Num(self.trace as f64)),
            ("id", Json::Num(self.id as f64)),
            ("parent", Json::Num(self.parent as f64)),
            ("name", Json::Str(self.name.clone())),
            ("detail", Json::Str(self.detail.clone())),
            ("shard", Json::Num(self.shard as f64)),
            ("start_tick", Json::Num(self.start_tick as f64)),
            ("end_tick", Json::Num(self.end_tick as f64)),
            ("duration_ns", Json::Num(self.duration_ns as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<SpanNode, DecodeError> {
        Ok(SpanNode {
            trace: uint_field(v, "trace")?,
            id: uint_field(v, "id")?,
            parent: uint_field(v, "parent")?,
            name: str_field(v, "name")?,
            detail: str_field(v, "detail")?,
            shard: uint_field(v, "shard")?,
            start_tick: uint_field(v, "start_tick")?,
            end_tick: uint_field(v, "end_tick")?,
            duration_ns: uint_field(v, "duration_ns")?,
        })
    }
}

/// One session's metrics plus the session-level state the analyst
/// cares about while reading them (revision, watchdog freeze).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// The session's name.
    pub name: String,
    /// Current view revision.
    pub revision: u64,
    /// Watchdog freeze reason token, if the layout is frozen.
    pub frozen: Option<String>,
    /// The session recorder's deterministic metrics.
    pub stats: StatsBlock,
}

impl SessionStats {
    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("revision", Json::Num(self.revision as f64)),
            (
                "frozen",
                match &self.frozen {
                    Some(f) => Json::Str(f.clone()),
                    None => Json::Null,
                },
            ),
            ("stats", self.stats.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<SessionStats, DecodeError> {
        Ok(SessionStats {
            name: str_field(v, "name")?,
            revision: uint_field(v, "revision")?,
            frozen: opt_str_field(v, "frozen")?,
            stats: StatsBlock::from_json(
                v.get("stats").ok_or_else(|| bad("missing field \"stats\""))?,
            )?,
        })
    }
}

/// The server's answer to one [`Command`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Command::Ping`].
    Pong,
    /// Answer to [`Command::Sessions`]: live session names, sorted.
    SessionList {
        /// Sorted session names.
        names: Vec<String>,
    },
    /// A session was closed.
    Closed {
        /// The closed session's name.
        session: String,
    },
    /// A trace was loaded and a session created over it. Quarantine
    /// and drop counts surface ingestion degradation; `breach` names
    /// the budget axis that stopped a lenient load early.
    Loaded {
        /// The session name.
        session: String,
        /// Containers in the trace.
        containers: u64,
        /// Event records ingested.
        events: u64,
        /// Records dropped by lenient recovery.
        dropped: u64,
        /// Non-finite samples quarantined.
        quarantined: u64,
        /// Trace span start, seconds.
        start: f64,
        /// Trace span end, seconds.
        end: f64,
        /// Budget breach summary, if a budget axis stopped the load.
        breach: Option<String>,
    },
    /// A session was created over a stored trace, after
    /// [`Command::Attach`]. No degradation fields: the stored trace
    /// already survived its load-time budget.
    Attached {
        /// The session name.
        session: String,
        /// The store name attached to.
        trace: String,
        /// Containers in the trace.
        containers: u64,
        /// Event records in the trace.
        events: u64,
        /// Trace span start, seconds.
        start: f64,
        /// Trace span end, seconds.
        end: f64,
    },
    /// The stored traces, after [`Command::ListTraces`]; name-sorted.
    TraceList {
        /// One row per stored trace.
        traces: Vec<TraceEntry>,
    },
    /// A trace was dropped from the store.
    TraceDropped {
        /// The dropped trace's store name.
        trace: String,
    },
    /// The effective (clamped) time-slice after
    /// [`Command::SetTimeSlice`].
    Slice {
        /// Effective start.
        start: f64,
        /// Effective end.
        end: f64,
    },
    /// Generic acknowledgement carrying the session's new view
    /// revision (collapse/expand/drag/release/scaling).
    Done {
        /// View revision after the command.
        revision: u64,
    },
    /// The sanitized force parameters after [`Command::SetForces`].
    Forces {
        /// Effective repulsion.
        repulsion: f64,
        /// Effective spring constant.
        spring: f64,
        /// Effective damping.
        damping: f64,
    },
    /// Layout iterations ran. `frozen` carries the watchdog's
    /// `FreezeReason` when the layout froze instead of diverging.
    Relaxed {
        /// Iterations actually executed.
        steps: u64,
        /// Watchdog freeze reason, if frozen.
        frozen: Option<String>,
    },
    /// Numeric aggregate of a metric over a group (Eq. 1 + §6).
    Aggregated {
        /// Members carrying the metric.
        members: u64,
        /// Space × time integral.
        integral: f64,
        /// Mean of member time-averages.
        mean: f64,
        /// Minimum member time-average.
        min: f64,
        /// Maximum member time-average.
        max: f64,
        /// Median member time-average.
        median: f64,
        /// Quarantined samples under the group.
        quarantined: u64,
        /// Whether no member carries the metric.
        empty: bool,
    },
    /// The observability snapshot after [`Command::Stats`]. Boxed:
    /// the blocks are by far the largest payload in the enum.
    Stats {
        /// Live sessions in the registry.
        sessions: u64,
        /// Server-scope metrics (per-command counters and registry
        /// occupancy).
        server: Box<StatsBlock>,
        /// The requested session's metrics, when one was named.
        session: Option<Box<SessionStats>>,
    },
    /// Recent causal span trees, after [`Command::Spans`]: flat,
    /// ordered by `(trace, id)` — rebuild trees by following `parent`.
    Spans {
        /// Spans evicted from the tracer's bounded rings (history the
        /// answer cannot include).
        dropped: u64,
        /// The selected spans.
        spans: Vec<SpanNode>,
    },
    /// A rendered frame.
    Frame {
        /// Session view revision the frame was rendered at.
        revision: u64,
        /// Whether the frame came from the cache.
        cached: bool,
        /// The SVG document.
        svg: String,
    },
    /// A session's checkpoint, after [`Command::Checkpoint`]. Boxed:
    /// the checkpoint embeds the whole trace.
    Checkpointed {
        /// The checkpointed session's name.
        session: String,
        /// The snapshot.
        state: Box<SessionCheckpoint>,
    },
    /// A session was rebuilt from a checkpoint.
    Restored {
        /// The restored session's name.
        session: String,
        /// The session's view revision (as captured).
        revision: u64,
    },
    /// One append was journaled and applied (or recognized as an
    /// idempotent duplicate).
    Appended {
        /// The live session's name.
        session: String,
        /// The acknowledged sequence number.
        seq: u64,
        /// View revision after the append (unchanged for duplicates
        /// and for records the lenient loader skips).
        revision: u64,
        /// Whether this `seq` was already applied (at-least-once
        /// retransmit); the record was **not** re-applied.
        duplicate: bool,
    },
    /// A live session's journal was sealed.
    Sealed {
        /// The sealed session's name.
        session: String,
        /// High-water sequence number at seal time.
        last_seq: u64,
    },
    /// This connection now follows a live session.
    Subscribed {
        /// The followed session's name.
        session: String,
        /// High-water sequence number at subscribe time — deltas for
        /// later appends arrive as [`Push::Delta`] lines.
        last_seq: u64,
    },
    /// A graceful drain started (or was already in progress).
    ShutdownStarted {
        /// Sessions live at drain time.
        sessions: u64,
        /// Sessions checkpointed to the checkpoint directory.
        checkpointed: u64,
    },
    /// The command failed; the session (if any) is unchanged.
    Error {
        /// Machine-readable failure kind.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// A line that failed to decode into a [`Command`] or [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DecodeError {}

fn bad(message: impl Into<String>) -> DecodeError {
    DecodeError { message: message.into() }
}

/// Fetches a required string member.
fn str_field(obj: &Json, key: &str) -> Result<String, DecodeError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| bad(format!("missing or non-string field {key:?}")))
}

/// Fetches a required (finite) number member.
fn num_field(obj: &Json, key: &str) -> Result<f64, DecodeError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing or non-numeric field {key:?}")))
}

/// Fetches a required non-negative integer member.
fn uint_field(obj: &Json, key: &str) -> Result<u64, DecodeError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer field {key:?}")))
}

/// Fetches an optional number member (absent or `null` → `None`).
fn opt_num_field(obj: &Json, key: &str) -> Result<Option<f64>, DecodeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(format!("non-numeric field {key:?}"))),
    }
}

/// Fetches an optional string member (absent or `null` → `None`).
fn opt_str_field(obj: &Json, key: &str) -> Result<Option<String>, DecodeError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| bad(format!("non-string field {key:?}"))),
    }
}

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn mode_token(mode: RecoveryMode) -> &'static str {
    match mode {
        RecoveryMode::Strict => "strict",
        RecoveryMode::Lenient => "lenient",
    }
}

impl Command {
    /// The wire token naming this command.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Ping => "ping",
            Command::Sessions => "sessions",
            Command::CloseSession { .. } => "close_session",
            Command::LoadTrace { .. } => "load_trace",
            Command::Attach { .. } => "attach",
            Command::ListTraces => "list_traces",
            Command::DropTrace { .. } => "drop_trace",
            Command::SetTimeSlice { .. } => "set_time_slice",
            Command::Collapse { .. } => "collapse",
            Command::Expand { .. } => "expand",
            Command::CollapseAtDepth { .. } => "collapse_at_depth",
            Command::ExpandAll { .. } => "expand_all",
            Command::SetForces { .. } => "set_forces",
            Command::SetScaling { .. } => "set_scaling",
            Command::Drag { .. } => "drag",
            Command::Release { .. } => "release",
            Command::Relax { .. } => "relax",
            Command::Aggregate { .. } => "aggregate",
            Command::Stats { .. } => "stats",
            Command::Spans { .. } => "spans",
            Command::Render { .. } => "render",
            Command::Checkpoint { .. } => "checkpoint",
            Command::Restore { .. } => "restore",
            Command::Append { .. } => "append",
            Command::Seal { .. } => "seal",
            Command::Subscribe { .. } => "subscribe",
            Command::Shutdown => "shutdown",
        }
    }

    /// The deadline class this command is billed under.
    pub fn class(&self) -> CommandClass {
        match self {
            Command::Ping
            | Command::Sessions
            | Command::CloseSession { .. }
            | Command::ListTraces
            | Command::DropTrace { .. }
            | Command::Stats { .. }
            | Command::Spans { .. }
            | Command::Shutdown => CommandClass::Control,
            Command::SetTimeSlice { .. }
            | Command::Collapse { .. }
            | Command::Expand { .. }
            | Command::CollapseAtDepth { .. }
            | Command::ExpandAll { .. }
            | Command::SetForces { .. }
            | Command::SetScaling { .. }
            | Command::Drag { .. }
            | Command::Release { .. }
            | Command::Aggregate { .. }
            // The append fast path applies one incremental sample;
            // structural records (rare) escalate to a reload that runs
            // to completion — the journal already holds the record, so
            // abandoning it mid-reload would lose the ack.
            | Command::Append { .. }
            | Command::Seal { .. }
            | Command::Subscribe { .. } => CommandClass::Interact,
            Command::LoadTrace { .. }
            | Command::Attach { .. }
            | Command::Checkpoint { .. }
            | Command::Restore { .. } => CommandClass::Load,
            Command::Relax { .. } => CommandClass::Relax,
            Command::Render { .. } => CommandClass::Render,
        }
    }

    /// Serializes to the canonical one-line JSON form.
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    fn to_json(&self) -> Json {
        let name = Json::Str(self.name().to_owned());
        match self {
            Command::Ping | Command::Sessions => obj(vec![("cmd", name)]),
            Command::CloseSession { session } => {
                obj(vec![("cmd", name), ("session", Json::Str(session.clone()))])
            }
            Command::LoadTrace { session, mode, text, trace } => {
                let mut members = vec![
                    ("cmd", name),
                    ("session", Json::Str(session.clone())),
                    ("mode", Json::Str(mode_token(*mode).to_owned())),
                    ("text", Json::Str(text.clone())),
                ];
                if let Some(t) = trace {
                    members.push(("trace", Json::Str(t.clone())));
                }
                obj(members)
            }
            Command::Attach { session, trace } => obj(vec![
                ("cmd", name),
                ("session", Json::Str(session.clone())),
                ("trace", Json::Str(trace.clone())),
            ]),
            Command::ListTraces => obj(vec![("cmd", name)]),
            Command::DropTrace { trace } => {
                obj(vec![("cmd", name), ("trace", Json::Str(trace.clone()))])
            }
            Command::SetTimeSlice { session, start, end } => obj(vec![
                ("cmd", name),
                ("session", Json::Str(session.clone())),
                ("start", Json::Num(*start)),
                ("end", Json::Num(*end)),
            ]),
            Command::Collapse { session, container } | Command::Expand { session, container } => {
                obj(vec![
                    ("cmd", name),
                    ("session", Json::Str(session.clone())),
                    ("container", Json::Str(container.clone())),
                ])
            }
            Command::CollapseAtDepth { session, depth } => obj(vec![
                ("cmd", name),
                ("session", Json::Str(session.clone())),
                ("depth", Json::Num(*depth as f64)),
            ]),
            Command::ExpandAll { session } => {
                obj(vec![("cmd", name), ("session", Json::Str(session.clone()))])
            }
            Command::SetForces { session, repulsion, spring, damping } => {
                let mut members = vec![("cmd", name), ("session", Json::Str(session.clone()))];
                if let Some(r) = repulsion {
                    members.push(("repulsion", Json::Num(*r)));
                }
                if let Some(s) = spring {
                    members.push(("spring", Json::Num(*s)));
                }
                if let Some(d) = damping {
                    members.push(("damping", Json::Num(*d)));
                }
                obj(members)
            }
            Command::SetScaling { session, group, factor } => obj(vec![
                ("cmd", name),
                ("session", Json::Str(session.clone())),
                ("group", Json::Str(group.clone())),
                ("factor", Json::Num(*factor)),
            ]),
            Command::Drag { session, container, x, y } => obj(vec![
                ("cmd", name),
                ("session", Json::Str(session.clone())),
                ("container", Json::Str(container.clone())),
                ("x", Json::Num(*x)),
                ("y", Json::Num(*y)),
            ]),
            Command::Release { session, container } => obj(vec![
                ("cmd", name),
                ("session", Json::Str(session.clone())),
                ("container", Json::Str(container.clone())),
            ]),
            Command::Relax { session, steps } => obj(vec![
                ("cmd", name),
                ("session", Json::Str(session.clone())),
                ("steps", Json::Num(*steps as f64)),
            ]),
            Command::Aggregate { session, metric, group } => obj(vec![
                ("cmd", name),
                ("session", Json::Str(session.clone())),
                ("metric", Json::Str(metric.clone())),
                ("group", Json::Str(group.clone())),
            ]),
            Command::Stats { session, reset } => {
                let mut members = vec![("cmd", name)];
                if let Some(s) = session {
                    members.push(("session", Json::Str(s.clone())));
                }
                if *reset {
                    members.push(("reset", Json::Bool(true)));
                }
                obj(members)
            }
            Command::Spans { session, limit } => {
                let mut members = vec![("cmd", name)];
                if let Some(s) = session {
                    members.push(("session", Json::Str(s.clone())));
                }
                if let Some(l) = limit {
                    members.push(("limit", Json::Num(*l as f64)));
                }
                obj(members)
            }
            Command::Render { session, width, height, theme, labels, zoom, pan_x, pan_y } => {
                let mut members = vec![
                    ("cmd", name),
                    ("session", Json::Str(session.clone())),
                    ("width", Json::Num(*width)),
                    ("height", Json::Num(*height)),
                    ("theme", Json::Str(theme.to_string())),
                    ("labels", Json::Bool(*labels)),
                ];
                if let Some(z) = zoom {
                    members.push(("zoom", Json::Num(*z)));
                }
                if let Some(p) = pan_x {
                    members.push(("pan_x", Json::Num(*p)));
                }
                if let Some(p) = pan_y {
                    members.push(("pan_y", Json::Num(*p)));
                }
                obj(members)
            }
            Command::Checkpoint { session } => {
                obj(vec![("cmd", name), ("session", Json::Str(session.clone()))])
            }
            Command::Restore { session, state } => {
                let mut members = vec![("cmd", name), ("session", Json::Str(session.clone()))];
                if let Some(s) = state {
                    members.push(("state", s.to_json()));
                }
                obj(members)
            }
            Command::Append { session, seq, text } => obj(vec![
                ("cmd", name),
                ("session", Json::Str(session.clone())),
                ("seq", Json::Num(*seq as f64)),
                ("text", Json::Str(text.clone())),
            ]),
            Command::Seal { session } => {
                obj(vec![("cmd", name), ("session", Json::Str(session.clone()))])
            }
            Command::Subscribe { session, from_seq } => {
                let mut members = vec![("cmd", name), ("session", Json::Str(session.clone()))];
                if let Some(f) = from_seq {
                    members.push(("from_seq", Json::Num(*f as f64)));
                }
                obj(members)
            }
            Command::Shutdown => obj(vec![("cmd", name)]),
        }
    }

    /// Decodes one request line. Unknown members are ignored; missing
    /// or ill-typed required members are a [`DecodeError`].
    pub fn decode(line: &str) -> Result<Command, DecodeError> {
        let v = Json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        if !matches!(v, Json::Obj(_)) {
            return Err(bad("request must be a JSON object"));
        }
        let cmd = str_field(&v, "cmd")?;
        let session = || str_field(&v, "session");
        Ok(match cmd.as_str() {
            "ping" => Command::Ping,
            "sessions" => Command::Sessions,
            "close_session" => Command::CloseSession { session: session()? },
            "load_trace" => {
                let mode = match str_field(&v, "mode")?.as_str() {
                    "strict" => RecoveryMode::Strict,
                    "lenient" => RecoveryMode::Lenient,
                    other => {
                        return Err(bad(format!(
                            "unknown mode {other:?} (expected \"strict\" or \"lenient\")"
                        )))
                    }
                };
                Command::LoadTrace {
                    session: session()?,
                    mode,
                    text: str_field(&v, "text")?,
                    trace: opt_str_field(&v, "trace")?,
                }
            }
            "attach" => Command::Attach { session: session()?, trace: str_field(&v, "trace")? },
            "list_traces" => Command::ListTraces,
            "drop_trace" => Command::DropTrace { trace: str_field(&v, "trace")? },
            "set_time_slice" => Command::SetTimeSlice {
                session: session()?,
                start: num_field(&v, "start")?,
                end: num_field(&v, "end")?,
            },
            "collapse" => {
                Command::Collapse { session: session()?, container: str_field(&v, "container")? }
            }
            "expand" => {
                Command::Expand { session: session()?, container: str_field(&v, "container")? }
            }
            "collapse_at_depth" => {
                let depth = uint_field(&v, "depth")?;
                let depth = u32::try_from(depth).map_err(|_| bad("depth out of range"))?;
                Command::CollapseAtDepth { session: session()?, depth }
            }
            "expand_all" => Command::ExpandAll { session: session()? },
            "set_forces" => Command::SetForces {
                session: session()?,
                repulsion: opt_num_field(&v, "repulsion")?,
                spring: opt_num_field(&v, "spring")?,
                damping: opt_num_field(&v, "damping")?,
            },
            "set_scaling" => Command::SetScaling {
                session: session()?,
                group: str_field(&v, "group")?,
                factor: num_field(&v, "factor")?,
            },
            "drag" => Command::Drag {
                session: session()?,
                container: str_field(&v, "container")?,
                x: num_field(&v, "x")?,
                y: num_field(&v, "y")?,
            },
            "release" => {
                Command::Release { session: session()?, container: str_field(&v, "container")? }
            }
            "relax" => Command::Relax { session: session()?, steps: uint_field(&v, "steps")? },
            "aggregate" => Command::Aggregate {
                session: session()?,
                metric: str_field(&v, "metric")?,
                group: str_field(&v, "group")?,
            },
            "stats" => Command::Stats {
                session: opt_str_field(&v, "session")?,
                reset: v
                    .get("reset")
                    .map(|r| r.as_bool().ok_or_else(|| bad("non-boolean field \"reset\"")))
                    .transpose()?
                    .unwrap_or(false),
            },
            "spans" => Command::Spans {
                session: opt_str_field(&v, "session")?,
                limit: match v.get("limit") {
                    None | Some(Json::Null) => None,
                    Some(l) => {
                        Some(l.as_u64().ok_or_else(|| bad("non-integer field \"limit\""))?)
                    }
                },
            },
            "render" => {
                let theme_name = str_field(&v, "theme")?;
                let theme = Theme::from_str(&theme_name)
                    .map_err(|e| bad(format!("bad theme: {e}")))?;
                Command::Render {
                    session: session()?,
                    width: num_field(&v, "width")?,
                    height: num_field(&v, "height")?,
                    theme,
                    labels: v
                        .get("labels")
                        .map(|l| l.as_bool().ok_or_else(|| bad("non-boolean field \"labels\"")))
                        .transpose()?
                        .unwrap_or(false),
                    zoom: opt_num_field(&v, "zoom")?,
                    pan_x: opt_num_field(&v, "pan_x")?,
                    pan_y: opt_num_field(&v, "pan_y")?,
                }
            }
            "checkpoint" => Command::Checkpoint { session: session()? },
            "restore" => Command::Restore {
                session: session()?,
                state: match v.get("state") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(Box::new(SessionCheckpoint::from_json(s)?)),
                },
            },
            "append" => Command::Append {
                session: session()?,
                seq: uint_field(&v, "seq")?,
                text: str_field(&v, "text")?,
            },
            "seal" => Command::Seal { session: session()? },
            "subscribe" => Command::Subscribe {
                session: session()?,
                from_seq: match v.get("from_seq") {
                    None | Some(Json::Null) => None,
                    Some(f) => Some(
                        f.as_u64().ok_or_else(|| bad("non-integer field \"from_seq\""))?,
                    ),
                },
            },
            "shutdown" => Command::Shutdown,
            other => return Err(bad(format!("unknown command {other:?}"))),
        })
    }
}

impl Response {
    /// Serializes to the canonical one-line JSON form.
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    fn to_json(&self) -> Json {
        match self {
            Response::Pong => obj(vec![("ok", Json::Str("pong".into()))]),
            Response::SessionList { names } => obj(vec![
                ("ok", Json::Str("sessions".into())),
                ("names", Json::Arr(names.iter().map(|n| Json::Str(n.clone())).collect())),
            ]),
            Response::Closed { session } => obj(vec![
                ("ok", Json::Str("closed".into())),
                ("session", Json::Str(session.clone())),
            ]),
            Response::Loaded {
                session,
                containers,
                events,
                dropped,
                quarantined,
                start,
                end,
                breach,
            } => obj(vec![
                ("ok", Json::Str("loaded".into())),
                ("session", Json::Str(session.clone())),
                ("containers", Json::Num(*containers as f64)),
                ("events", Json::Num(*events as f64)),
                ("dropped", Json::Num(*dropped as f64)),
                ("quarantined", Json::Num(*quarantined as f64)),
                ("start", Json::Num(*start)),
                ("end", Json::Num(*end)),
                (
                    "breach",
                    match breach {
                        Some(b) => Json::Str(b.clone()),
                        None => Json::Null,
                    },
                ),
            ]),
            Response::Attached { session, trace, containers, events, start, end } => obj(vec![
                ("ok", Json::Str("attached".into())),
                ("session", Json::Str(session.clone())),
                ("trace", Json::Str(trace.clone())),
                ("containers", Json::Num(*containers as f64)),
                ("events", Json::Num(*events as f64)),
                ("start", Json::Num(*start)),
                ("end", Json::Num(*end)),
            ]),
            Response::TraceList { traces } => obj(vec![
                ("ok", Json::Str("traces".into())),
                (
                    "traces",
                    Json::Arr(
                        traces
                            .iter()
                            .map(|t| {
                                obj(vec![
                                    ("name", Json::Str(t.name.clone())),
                                    ("hash", Json::Str(t.hash.clone())),
                                    ("containers", Json::Num(t.containers as f64)),
                                    ("events", Json::Num(t.events as f64)),
                                    ("sessions", Json::Num(t.sessions as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::TraceDropped { trace } => obj(vec![
                ("ok", Json::Str("trace_dropped".into())),
                ("trace", Json::Str(trace.clone())),
            ]),
            Response::Slice { start, end } => obj(vec![
                ("ok", Json::Str("slice".into())),
                ("start", Json::Num(*start)),
                ("end", Json::Num(*end)),
            ]),
            Response::Done { revision } => obj(vec![
                ("ok", Json::Str("done".into())),
                ("revision", Json::Num(*revision as f64)),
            ]),
            Response::Forces { repulsion, spring, damping } => obj(vec![
                ("ok", Json::Str("forces".into())),
                ("repulsion", Json::Num(*repulsion)),
                ("spring", Json::Num(*spring)),
                ("damping", Json::Num(*damping)),
            ]),
            Response::Relaxed { steps, frozen } => obj(vec![
                ("ok", Json::Str("relaxed".into())),
                ("steps", Json::Num(*steps as f64)),
                (
                    "frozen",
                    match frozen {
                        Some(f) => Json::Str(f.clone()),
                        None => Json::Null,
                    },
                ),
            ]),
            Response::Aggregated {
                members,
                integral,
                mean,
                min,
                max,
                median,
                quarantined,
                empty,
            } => obj(vec![
                ("ok", Json::Str("aggregate".into())),
                ("members", Json::Num(*members as f64)),
                ("integral", Json::Num(*integral)),
                ("mean", Json::Num(*mean)),
                ("min", Json::Num(*min)),
                ("max", Json::Num(*max)),
                ("median", Json::Num(*median)),
                ("quarantined", Json::Num(*quarantined as f64)),
                ("empty", Json::Bool(*empty)),
            ]),
            Response::Stats { sessions, server, session } => obj(vec![
                ("ok", Json::Str("stats".into())),
                ("sessions", Json::Num(*sessions as f64)),
                // The exact histogram bucket upper bounds — a protocol
                // constant (not state), so clients can turn the
                // reported sample counts into real quantiles without
                // hard-coding the log-linear scheme. Deterministic:
                // every bound is a power of two times a 2-bit fraction.
                (
                    "bucket_bounds",
                    Json::Arr(viva_obs::bucket_bounds().into_iter().map(Json::Num).collect()),
                ),
                ("server", server.to_json()),
                (
                    "session",
                    match session {
                        Some(s) => s.to_json(),
                        None => Json::Null,
                    },
                ),
            ]),
            Response::Spans { dropped, spans } => obj(vec![
                ("ok", Json::Str("spans".into())),
                ("dropped", Json::Num(*dropped as f64)),
                ("spans", Json::Arr(spans.iter().map(SpanNode::to_json).collect())),
            ]),
            Response::Frame { revision, cached, svg } => obj(vec![
                ("ok", Json::Str("frame".into())),
                ("revision", Json::Num(*revision as f64)),
                ("cached", Json::Bool(*cached)),
                ("svg", Json::Str(svg.clone())),
            ]),
            Response::Checkpointed { session, state } => obj(vec![
                ("ok", Json::Str("checkpoint".into())),
                ("session", Json::Str(session.clone())),
                ("state", state.to_json()),
            ]),
            Response::Restored { session, revision } => obj(vec![
                ("ok", Json::Str("restored".into())),
                ("session", Json::Str(session.clone())),
                ("revision", Json::Num(*revision as f64)),
            ]),
            Response::Appended { session, seq, revision, duplicate } => obj(vec![
                ("ok", Json::Str("appended".into())),
                ("session", Json::Str(session.clone())),
                ("seq", Json::Num(*seq as f64)),
                ("revision", Json::Num(*revision as f64)),
                ("duplicate", Json::Bool(*duplicate)),
            ]),
            Response::Sealed { session, last_seq } => obj(vec![
                ("ok", Json::Str("sealed".into())),
                ("session", Json::Str(session.clone())),
                ("last_seq", Json::Num(*last_seq as f64)),
            ]),
            Response::Subscribed { session, last_seq } => obj(vec![
                ("ok", Json::Str("subscribed".into())),
                ("session", Json::Str(session.clone())),
                ("last_seq", Json::Num(*last_seq as f64)),
            ]),
            Response::ShutdownStarted { sessions, checkpointed } => obj(vec![
                ("ok", Json::Str("shutdown".into())),
                ("sessions", Json::Num(*sessions as f64)),
                ("checkpointed", Json::Num(*checkpointed as f64)),
            ]),
            Response::Error { kind, message } => {
                let mut members = vec![
                    ("err", Json::Str(kind.token().to_owned())),
                    ("message", Json::Str(message.clone())),
                ];
                if let ErrorKind::Overloaded { retry_after_ms } = kind {
                    members.push(("retry_after_ms", Json::Num(*retry_after_ms as f64)));
                }
                if let ErrorKind::SeqGap { expected } = kind {
                    members.push(("expected", Json::Num(*expected as f64)));
                }
                obj(members)
            }
        }
    }

    /// Decodes one response line (used by clients and the transcript
    /// tooling; the server only encodes).
    pub fn decode(line: &str) -> Result<Response, DecodeError> {
        let v = Json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        if let Some(err) = v.get("err") {
            let token = err.as_str().ok_or_else(|| bad("non-string \"err\""))?;
            let mut kind = ErrorKind::from_token(token)
                .ok_or_else(|| bad(format!("unknown error kind {token:?}")))?;
            if matches!(kind, ErrorKind::Overloaded { .. }) {
                kind = ErrorKind::Overloaded { retry_after_ms: uint_field(&v, "retry_after_ms")? };
            }
            if matches!(kind, ErrorKind::SeqGap { .. }) {
                kind = ErrorKind::SeqGap { expected: uint_field(&v, "expected")? };
            }
            return Ok(Response::Error { kind, message: str_field(&v, "message")? });
        }
        let ok = str_field(&v, "ok")?;
        Ok(match ok.as_str() {
            "pong" => Response::Pong,
            "sessions" => {
                let names = match v.get("names") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|i| {
                            i.as_str().map(str::to_owned).ok_or_else(|| bad("non-string name"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(bad("missing or non-array field \"names\"")),
                };
                Response::SessionList { names }
            }
            "closed" => Response::Closed { session: str_field(&v, "session")? },
            "loaded" => Response::Loaded {
                session: str_field(&v, "session")?,
                containers: uint_field(&v, "containers")?,
                events: uint_field(&v, "events")?,
                dropped: uint_field(&v, "dropped")?,
                quarantined: uint_field(&v, "quarantined")?,
                start: num_field(&v, "start")?,
                end: num_field(&v, "end")?,
                breach: opt_str_field(&v, "breach")?,
            },
            "attached" => Response::Attached {
                session: str_field(&v, "session")?,
                trace: str_field(&v, "trace")?,
                containers: uint_field(&v, "containers")?,
                events: uint_field(&v, "events")?,
                start: num_field(&v, "start")?,
                end: num_field(&v, "end")?,
            },
            "traces" => {
                let traces = match v.get("traces") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|t| {
                            Ok(TraceEntry {
                                name: str_field(t, "name")?,
                                hash: str_field(t, "hash")?,
                                containers: uint_field(t, "containers")?,
                                events: uint_field(t, "events")?,
                                sessions: uint_field(t, "sessions")?,
                            })
                        })
                        .collect::<Result<Vec<_>, DecodeError>>()?,
                    _ => return Err(bad("missing or non-array field \"traces\"")),
                };
                Response::TraceList { traces }
            }
            "trace_dropped" => Response::TraceDropped { trace: str_field(&v, "trace")? },
            "slice" => {
                Response::Slice { start: num_field(&v, "start")?, end: num_field(&v, "end")? }
            }
            "done" => Response::Done { revision: uint_field(&v, "revision")? },
            "forces" => Response::Forces {
                repulsion: num_field(&v, "repulsion")?,
                spring: num_field(&v, "spring")?,
                damping: num_field(&v, "damping")?,
            },
            "relaxed" => Response::Relaxed {
                steps: uint_field(&v, "steps")?,
                frozen: opt_str_field(&v, "frozen")?,
            },
            "aggregate" => Response::Aggregated {
                members: uint_field(&v, "members")?,
                integral: num_field(&v, "integral")?,
                mean: num_field(&v, "mean")?,
                min: num_field(&v, "min")?,
                max: num_field(&v, "max")?,
                median: num_field(&v, "median")?,
                quarantined: uint_field(&v, "quarantined")?,
                empty: v
                    .get("empty")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("missing or non-boolean field \"empty\""))?,
            },
            "stats" => Response::Stats {
                sessions: uint_field(&v, "sessions")?,
                server: Box::new(StatsBlock::from_json(
                    v.get("server").ok_or_else(|| bad("missing field \"server\""))?,
                )?),
                session: match v.get("session") {
                    None | Some(Json::Null) => None,
                    Some(s) => Some(Box::new(SessionStats::from_json(s)?)),
                },
            },
            "spans" => Response::Spans {
                dropped: uint_field(&v, "dropped")?,
                spans: match v.get("spans") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(SpanNode::from_json)
                        .collect::<Result<Vec<_>, DecodeError>>()?,
                    _ => return Err(bad("missing or non-array field \"spans\"")),
                },
            },
            "frame" => Response::Frame {
                revision: uint_field(&v, "revision")?,
                cached: v
                    .get("cached")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("missing or non-boolean field \"cached\""))?,
                svg: str_field(&v, "svg")?,
            },
            "checkpoint" => Response::Checkpointed {
                session: str_field(&v, "session")?,
                state: Box::new(SessionCheckpoint::from_json(
                    v.get("state").ok_or_else(|| bad("missing field \"state\""))?,
                )?),
            },
            "restored" => Response::Restored {
                session: str_field(&v, "session")?,
                revision: uint_field(&v, "revision")?,
            },
            "appended" => Response::Appended {
                session: str_field(&v, "session")?,
                seq: uint_field(&v, "seq")?,
                revision: uint_field(&v, "revision")?,
                duplicate: v
                    .get("duplicate")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| bad("missing or non-boolean field \"duplicate\""))?,
            },
            "sealed" => Response::Sealed {
                session: str_field(&v, "session")?,
                last_seq: uint_field(&v, "last_seq")?,
            },
            "subscribed" => Response::Subscribed {
                session: str_field(&v, "session")?,
                last_seq: uint_field(&v, "last_seq")?,
            },
            "shutdown" => Response::ShutdownStarted {
                sessions: uint_field(&v, "sessions")?,
                checkpointed: uint_field(&v, "checkpointed")?,
            },
            other => return Err(bad(format!("unknown response kind {other:?}"))),
        })
    }
}

/// One node's worth of view delta, as pushed to subscribers. A compact
/// projection of the session's `GraphView` node: identity plus the
/// values an observer dashboard needs, not geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaNode {
    /// Container id (stable within the live trace).
    pub container: u64,
    /// Container name.
    pub label: String,
    /// Fill (color) value — the time-averaged fill metric.
    pub fill: f64,
    /// Size value — the aggregated size metric.
    pub size: f64,
    /// Leaf members aggregated under this node (1 for a leaf).
    pub members: u64,
}

/// A server-initiated line pushed to a subscribed connection, distinct
/// from command responses by its leading `push` member (see
/// [`Push::is_push`]). Pushes interleave *between* request/response
/// pairs, never inside one.
#[derive(Debug, Clone, PartialEq)]
pub enum Push {
    /// The view changed after an applied append: the nodes whose view
    /// row changed (or appeared), and the container ids of nodes that
    /// vanished. A subscribe with a `from_seq` in the past receives
    /// one snapshot delta carrying every visible node.
    Delta {
        /// The live session.
        session: String,
        /// The append that caused this delta (the session high-water
        /// mark for a subscribe-time snapshot).
        seq: u64,
        /// Session view revision after the change.
        revision: u64,
        /// Changed or new nodes, view order.
        changed: Vec<DeltaNode>,
        /// Container ids no longer visible, ascending.
        removed: Vec<u64>,
    },
    /// The subscriber fell behind and its queue was shed. No further
    /// pushes will arrive; re-subscribe with `from_seq = resume_seq`
    /// to resynchronize via a snapshot delta.
    Lagging {
        /// The live session.
        session: String,
        /// First sequence number not covered by deltas already
        /// delivered to this subscriber.
        resume_seq: u64,
    },
}

impl Push {
    /// Cheap syntactic test: does this line look like a push (as
    /// opposed to a response)? Exact for lines the server produced.
    pub fn is_push(line: &str) -> bool {
        line.starts_with("{\"push\":")
    }

    /// Serializes to the canonical one-line JSON form.
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    fn to_json(&self) -> Json {
        match self {
            Push::Delta { session, seq, revision, changed, removed } => obj(vec![
                ("push", Json::Str("delta".into())),
                ("session", Json::Str(session.clone())),
                ("seq", Json::Num(*seq as f64)),
                ("revision", Json::Num(*revision as f64)),
                (
                    "changed",
                    Json::Arr(
                        changed
                            .iter()
                            .map(|n| {
                                obj(vec![
                                    ("c", Json::Num(n.container as f64)),
                                    ("label", Json::Str(n.label.clone())),
                                    ("fill", Json::Num(n.fill)),
                                    ("size", Json::Num(n.size)),
                                    ("members", Json::Num(n.members as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "removed",
                    Json::Arr(removed.iter().map(|c| Json::Num(*c as f64)).collect()),
                ),
            ]),
            Push::Lagging { session, resume_seq } => obj(vec![
                ("push", Json::Str("lagging".into())),
                ("session", Json::Str(session.clone())),
                ("resume_seq", Json::Num(*resume_seq as f64)),
            ]),
        }
    }

    /// Decodes one pushed line.
    pub fn decode(line: &str) -> Result<Push, DecodeError> {
        let v = Json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
        let kind = str_field(&v, "push")?;
        Ok(match kind.as_str() {
            "delta" => {
                let changed = match v.get("changed") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|n| {
                            Ok(DeltaNode {
                                container: uint_field(n, "c")?,
                                label: str_field(n, "label")?,
                                fill: num_field(n, "fill")?,
                                size: num_field(n, "size")?,
                                members: uint_field(n, "members")?,
                            })
                        })
                        .collect::<Result<Vec<_>, DecodeError>>()?,
                    _ => return Err(bad("missing or non-array field \"changed\"")),
                };
                let removed = match v.get("removed") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|c| c.as_u64().ok_or_else(|| bad("non-integer removed id")))
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(bad("missing or non-array field \"removed\"")),
                };
                Push::Delta {
                    session: str_field(&v, "session")?,
                    seq: uint_field(&v, "seq")?,
                    revision: uint_field(&v, "revision")?,
                    changed,
                    removed,
                }
            }
            "lagging" => Push::Lagging {
                session: str_field(&v, "session")?,
                resume_seq: uint_field(&v, "resume_seq")?,
            },
            other => return Err(bad(format!("unknown push kind {other:?}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{NodePlacement, CHECKPOINT_VERSION};

    fn tiny_checkpoint() -> SessionCheckpoint {
        SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            session: "s".into(),
            revision: 3,
            slice_start: 0.5,
            slice_end: 9.25,
            collapsed: vec![1, 4],
            forces: (100.0, 2.0, 0.6),
            scaling: vec![("power".into(), 2.0)],
            placements: vec![NodePlacement { container: 2, x: -1.5, y: 3.25, pinned: true }],
            quarantined: vec![(2, 0, 7)],
            ingest_dropped: 1,
            journal: Some(("s".into(), 12)),
            trace_hash: crate::store::hash_token(crate::store::content_hash(b"span,0,10\n")),
            trace_csv: "span,0,10\n".into(),
        }
    }

    #[test]
    fn command_encoding_is_stable() {
        let cmd = Command::Render {
            session: "a".into(),
            width: 800.0,
            height: 600.0,
            theme: Theme::Dark,
            labels: false,
            zoom: None,
            pan_x: None,
            pan_y: None,
        };
        assert_eq!(
            cmd.encode(),
            r#"{"cmd":"render","session":"a","width":800,"height":600,"theme":"dark","labels":false}"#
        );
        assert_eq!(Command::decode(&cmd.encode()).unwrap(), cmd);

        let lod = Command::Render {
            session: "a".into(),
            width: 800.0,
            height: 600.0,
            theme: Theme::Dark,
            labels: false,
            zoom: Some(4.0),
            pan_x: Some(-12.5),
            pan_y: None,
        };
        assert_eq!(
            lod.encode(),
            r#"{"cmd":"render","session":"a","width":800,"height":600,"theme":"dark","labels":false,"zoom":4,"pan_x":-12.5}"#
        );
        assert_eq!(Command::decode(&lod.encode()).unwrap(), lod);
    }

    #[test]
    fn commands_round_trip() {
        let cmds = vec![
            Command::Ping,
            Command::Sessions,
            Command::CloseSession { session: "s".into() },
            Command::LoadTrace {
                session: "s".into(),
                mode: RecoveryMode::Lenient,
                text: "span,0.0,10.0\n".into(),
                trace: None,
            },
            Command::LoadTrace {
                session: "s".into(),
                mode: RecoveryMode::Strict,
                text: "span,0.0,10.0\n".into(),
                trace: Some("shared".into()),
            },
            Command::Attach { session: "s2".into(), trace: "shared".into() },
            Command::ListTraces,
            Command::DropTrace { trace: "shared".into() },
            Command::SetTimeSlice { session: "s".into(), start: 0.25, end: 7.5 },
            Command::Collapse { session: "s".into(), container: "c1".into() },
            Command::Expand { session: "s".into(), container: "c1".into() },
            Command::CollapseAtDepth { session: "s".into(), depth: 2 },
            Command::ExpandAll { session: "s".into() },
            Command::SetForces {
                session: "s".into(),
                repulsion: Some(250.0),
                spring: None,
                damping: Some(0.5),
            },
            Command::SetScaling { session: "s".into(), group: "bandwidth".into(), factor: 2.0 },
            Command::Drag { session: "s".into(), container: "h1".into(), x: -3.5, y: 10.0 },
            Command::Release { session: "s".into(), container: "h1".into() },
            Command::Relax { session: "s".into(), steps: 500 },
            Command::Aggregate {
                session: "s".into(),
                metric: "power_used".into(),
                group: "c1".into(),
            },
            Command::Stats { session: None, reset: false },
            Command::Stats { session: Some("s".into()), reset: false },
            Command::Checkpoint { session: "s".into() },
            Command::Restore { session: "s".into(), state: None },
            Command::Restore { session: "s".into(), state: Some(Box::new(tiny_checkpoint())) },
            Command::Append { session: "live".into(), seq: 42, text: "var,1.0,1,0,3.5".into() },
            Command::Seal { session: "live".into() },
            Command::Subscribe { session: "live".into(), from_seq: None },
            Command::Subscribe { session: "live".into(), from_seq: Some(7) },
            Command::Shutdown,
        ];
        for cmd in cmds {
            let line = cmd.encode();
            assert_eq!(Command::decode(&line).unwrap(), cmd, "{line}");
            assert_eq!(Command::decode(&line).unwrap().encode(), line, "stable re-encode");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Pong,
            Response::SessionList { names: vec!["a".into(), "b".into()] },
            Response::Closed { session: "a".into() },
            Response::Loaded {
                session: "a".into(),
                containers: 12,
                events: 300,
                dropped: 2,
                quarantined: 1,
                start: 0.0,
                end: 10.0,
                breach: Some("event count budget (10) exhausted at line 7 (byte 130)".into()),
            },
            Response::Attached {
                session: "s2".into(),
                trace: "shared".into(),
                containers: 12,
                events: 300,
                start: 0.0,
                end: 10.0,
            },
            Response::TraceList {
                traces: vec![TraceEntry {
                    name: "shared".into(),
                    hash: "00c0ffee00c0ffee".into(),
                    containers: 12,
                    events: 300,
                    sessions: 2,
                }],
            },
            Response::TraceList { traces: vec![] },
            Response::TraceDropped { trace: "shared".into() },
            Response::Slice { start: 0.0, end: 2.5 },
            Response::Done { revision: 42 },
            Response::Forces { repulsion: 100.0, spring: 2.0, damping: 0.6 },
            Response::Relaxed { steps: 137, frozen: None },
            Response::Relaxed { steps: 0, frozen: Some("non-finite force".into()) },
            Response::Aggregated {
                members: 4,
                integral: 2400.0,
                mean: 60.0,
                min: 60.0,
                max: 60.0,
                median: 60.0,
                quarantined: 0,
                empty: false,
            },
            Response::Frame { revision: 7, cached: true, svg: "<svg>…</svg>\n".into() },
            Response::Stats {
                sessions: 2,
                server: Box::new(StatsBlock {
                    clock: 0,
                    counters: vec![("server.cmd.ping".into(), 3)],
                    gauges: vec![("server.sessions".into(), 2.0)],
                    histograms: vec![("server.cmd.ping.seconds".into(), 3)],
                    events: vec![],
                    events_dropped: 0,
                }),
                session: None,
            },
            Response::Stats {
                sessions: 1,
                server: Box::new(StatsBlock::default()),
                session: Some(Box::new(SessionStats {
                    name: "a".into(),
                    revision: 9,
                    frozen: Some("non_finite_force".into()),
                    stats: StatsBlock {
                        clock: 2,
                        counters: vec![("layout.steps".into(), 40)],
                        gauges: vec![("layout.kinetic_energy".into(), 0.125)],
                        histograms: vec![("layout.step.seconds".into(), 40)],
                        events: vec![
                            StatsEvent {
                                seq: 0,
                                name: "layout.freeze".into(),
                                detail: "non_finite_force".into(),
                            },
                            StatsEvent {
                                seq: 1,
                                name: "layout.thaw".into(),
                                detail: "non_finite_force".into(),
                            },
                        ],
                        events_dropped: 0,
                    },
                })),
            },
            Response::Checkpointed { session: "a".into(), state: Box::new(tiny_checkpoint()) },
            Response::Restored { session: "a".into(), revision: 3 },
            Response::Appended { session: "live".into(), seq: 42, revision: 17, duplicate: false },
            Response::Appended { session: "live".into(), seq: 41, revision: 17, duplicate: true },
            Response::Sealed { session: "live".into(), last_seq: 42 },
            Response::Subscribed { session: "live".into(), last_seq: 42 },
            Response::ShutdownStarted { sessions: 2, checkpointed: 2 },
            Response::Error { kind: ErrorKind::NoSession, message: "session \"x\"".into() },
            Response::Error {
                kind: ErrorKind::Overloaded { retry_after_ms: 50 },
                message: "64 commands in flight".into(),
            },
            Response::Error { kind: ErrorKind::DeadlineExceeded, message: "render".into() },
            Response::Error { kind: ErrorKind::BadCheckpoint, message: "version 9".into() },
            Response::Error { kind: ErrorKind::NoTrace, message: "trace \"shared\"".into() },
            Response::Error {
                kind: ErrorKind::SeqGap { expected: 8 },
                message: "expected seq 8, got 12".into(),
            },
            Response::Error { kind: ErrorKind::NotLive, message: "session \"s\"".into() },
            Response::Error { kind: ErrorKind::SessionSealed, message: "session \"s\"".into() },
        ];
        for r in responses {
            let line = r.encode();
            assert_eq!(Response::decode(&line).unwrap(), r, "{line}");
            assert_eq!(Response::decode(&line).unwrap().encode(), line, "stable re-encode");
        }
    }

    #[test]
    fn stats_command_encoding_is_stable() {
        assert_eq!(Command::Stats { session: None, reset: false }.encode(), r#"{"cmd":"stats"}"#);
        assert_eq!(
            Command::Stats { session: Some("a".into()), reset: false }.encode(),
            r#"{"cmd":"stats","session":"a"}"#
        );
    }

    #[test]
    fn stats_block_projection_keeps_only_deterministic_data() {
        let rec = viva_obs::Recorder::enabled();
        rec.counter("c").add(7);
        rec.gauge("bad").set(f64::NAN);
        rec.histogram("h.seconds").record(0.25);
        rec.event("e", "d");
        let block = StatsBlock::from_snapshot(&rec.snapshot());
        assert_eq!(block.counters, vec![("c".to_owned(), 7)]);
        assert_eq!(block.gauges, vec![("bad".to_owned(), 0.0)], "NaN gauge sanitized");
        assert_eq!(
            block.histograms,
            vec![("h.seconds".to_owned(), 1)],
            "count only — no sum, no buckets"
        );
        assert_eq!(
            block.events,
            vec![StatsEvent { seq: 0, name: "e".into(), detail: "d".into() }]
        );
    }

    #[test]
    fn decode_rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            "[]",
            "42",
            r#"{"cmd":"no_such_command"}"#,
            r#"{"cmd":"collapse"}"#,
            r#"{"cmd":"collapse","session":"s"}"#,
            r#"{"cmd":"render","session":"s","width":800,"height":600,"theme":"sepia"}"#,
            r#"{"cmd":"relax","session":"s","steps":-1}"#,
            r#"{"cmd":"relax","session":"s","steps":2.5}"#,
            r#"{"cmd":"load_trace","session":"s","mode":"yolo","text":""}"#,
            r#"{"cmd":"set_time_slice","session":"s","start":"a","end":1}"#,
        ] {
            assert!(Command::decode(bad).is_err(), "{bad:?} should fail to decode");
        }
    }

    #[test]
    fn pushes_round_trip() {
        let pushes = vec![
            Push::Delta {
                session: "live".into(),
                seq: 42,
                revision: 17,
                changed: vec![
                    DeltaNode {
                        container: 3,
                        label: "h0".into(),
                        fill: 0.5,
                        size: 120.0,
                        members: 1,
                    },
                    DeltaNode {
                        container: 1,
                        label: "c1".into(),
                        fill: 0.25,
                        size: 240.0,
                        members: 2,
                    },
                ],
                removed: vec![4, 9],
            },
            Push::Delta {
                session: "live".into(),
                seq: 1,
                revision: 1,
                changed: vec![],
                removed: vec![],
            },
            Push::Lagging { session: "live".into(), resume_seq: 40 },
        ];
        for p in pushes {
            let line = p.encode();
            assert!(Push::is_push(&line), "{line}");
            assert_eq!(Push::decode(&line).unwrap(), p, "{line}");
            assert_eq!(Push::decode(&line).unwrap().encode(), line, "stable re-encode");
        }
        // Responses never look like pushes.
        assert!(!Push::is_push(&Response::Pong.encode()));
        assert!(!Push::is_push(
            &Response::Appended {
                session: "s".into(),
                seq: 1,
                revision: 1,
                duplicate: false
            }
            .encode()
        ));
    }

    #[test]
    fn unknown_members_are_ignored() {
        let cmd =
            Command::decode(r#"{"cmd":"ping","future_field":123,"another":{"x":[1,2]}}"#).unwrap();
        assert_eq!(cmd, Command::Ping);
    }
}
