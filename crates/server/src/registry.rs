//! Many named analysis sessions behind one server.
//!
//! The [`SessionRegistry`] is the shared-machine piece of the serving
//! layer: each analyst (or tab, or benchmark client) works in a named
//! session holding its own [`viva::AnalysisSession`] and frame cache.
//! Sessions are protected by **per-session locks**, so two connections
//! driving different sessions never contend, while two connections
//! driving the *same* session serialize their commands (the analysis
//! session is single-writer by design).
//!
//! The registry itself is read-mostly: the name → slot map sits behind
//! an `RwLock` and the LRU clock and per-slot recency ticks are
//! atomics, so the hot lookup path (`get`) never takes an exclusive
//! lock. Each slot additionally carries its frame cache behind its own
//! small mutex and a lock-free mirror of the session revision, which is
//! what lets a cached render answer without touching the session lock
//! at all — the fix for the p99 collapse under many concurrent
//! sessions.
//!
//! Capacity is bounded: creating a session beyond
//! [`ServerLimits::max_sessions`] evicts the least-recently-*used*
//! session, tracked with a logical clock so eviction order is a pure
//! function of the command history — wall time never leaks into
//! protocol-visible behaviour.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use viva::{AnalysisSession, GraphView};
use viva_obs::Recorder;
use viva_trace::{JournalWriter, ResourceBudget};

use crate::cache::FrameCache;
use crate::protocol::CommandClass;

/// Per-class deadline budgets, milliseconds. `None` disables the
/// deadline for that class — and with every class disabled (the
/// default) the command path never reads the wall clock, which is what
/// keeps golden transcripts reproducible. `Some(0)` is a budget that
/// is *always* already exhausted (also without reading the clock),
/// which is how tests exercise the breach path deterministically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineBudgets {
    /// Budget for [`CommandClass::Control`] commands.
    pub control_ms: Option<u64>,
    /// Budget for [`CommandClass::Interact`] commands.
    pub interact_ms: Option<u64>,
    /// Budget for [`CommandClass::Load`] commands.
    pub load_ms: Option<u64>,
    /// Budget for [`CommandClass::Relax`] commands.
    pub relax_ms: Option<u64>,
    /// Budget for [`CommandClass::Render`] commands.
    pub render_ms: Option<u64>,
}

impl DeadlineBudgets {
    /// Budgets tuned for interactive serving: cheap bookkeeping answers
    /// fast or not at all, loads get seconds, renders get a couple.
    pub fn interactive() -> DeadlineBudgets {
        DeadlineBudgets {
            control_ms: Some(50),
            interact_ms: Some(100),
            load_ms: Some(10_000),
            relax_ms: Some(1_000),
            render_ms: Some(2_000),
        }
    }

    /// The budget billed against `class`.
    pub fn budget_for(self, class: CommandClass) -> Option<u64> {
        match class {
            CommandClass::Control => self.control_ms,
            CommandClass::Interact => self.interact_ms,
            CommandClass::Load => self.load_ms,
            CommandClass::Relax => self.relax_ms,
            CommandClass::Render => self.render_ms,
        }
    }
}

/// Hard ceilings a server instance enforces; the serving analogue of
/// [`ResourceBudget`]. Defaults are sized for an interactive
/// multi-analyst workstation.
#[derive(Debug, Clone)]
pub struct ServerLimits {
    /// Live sessions kept before LRU eviction.
    pub max_sessions: usize,
    /// Per-`relax`-command cap on layout iterations (a hostile
    /// `{"steps": 1e15}` must not pin a worker thread).
    pub max_relax_steps: u64,
    /// Per-request-line byte cap (the trace upload arrives inline, so
    /// this is generous — but bounded).
    pub max_line_bytes: usize,
    /// Frames each session's cache retains.
    pub frame_cache_frames: usize,
    /// Ingestion budget applied to every `load_trace` (and to the
    /// trace embedded in a `restore` checkpoint).
    pub load_budget: ResourceBudget,
    /// Commands allowed in flight across the whole server before
    /// admission control sheds with `overloaded`. Shedding is
    /// deterministic — over the limit the command is refused before
    /// any work starts; nothing queues.
    pub max_inflight_commands: usize,
    /// Connections allowed to *wait* on one session's lock (the
    /// holder is not counted). Beyond this the command is shed —
    /// a convoy on a hot session must not absorb every worker thread.
    pub max_session_waiters: usize,
    /// Back-off hint carried by `overloaded` responses, milliseconds.
    pub overload_retry_after_ms: u64,
    /// Per-class command deadlines. All `None` by default: deadlines
    /// are opt-in because enforcing them reads the wall clock.
    pub deadlines: DeadlineBudgets,
    /// Read/write timeout on TCP connections, milliseconds (`None`
    /// disables). A peer that trickles bytes or stops reading holds
    /// buffers on a shard; this bounds for how long (slow-loris
    /// defense).
    pub io_timeout_ms: Option<u64>,
    /// Directory session checkpoints are written to (on `checkpoint`,
    /// on LRU eviction, and on drain) and read from by `restore`
    /// without an inline state. `None` disables persistence;
    /// `checkpoint`/`restore` still work inline.
    pub checkpoint_dir: Option<PathBuf>,
    /// Directory live-session journals are written to. `None` disables
    /// durability: `append` still works but an `appended` ack only
    /// promises in-memory application, and a crash loses the stream.
    pub journal_dir: Option<PathBuf>,
    /// Journal fsync batching: sync the journal file every N appended
    /// records (and always on seal). `1` means sync-per-record — the
    /// strongest durability, what the crash-recovery smoke test runs.
    pub journal_sync_every: u32,
    /// Per-subscriber bound on queued push lines. A subscriber whose
    /// connection stops draining is shed once its queue reaches this
    /// bound: the queue is dropped and replaced with a single
    /// `lagging` push naming the oldest lost sequence number, so the
    /// client can re-subscribe without silent gaps. Appends never
    /// block on subscribers.
    pub subscriber_queue: usize,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_sessions: 32,
            max_relax_steps: 20_000,
            max_line_bytes: 64 << 20, // 64 MiB: inline trace uploads
            frame_cache_frames: 32,
            load_budget: ResourceBudget {
                // Tighter than the workstation default: server traces
                // arrive from the network.
                max_events: 5_000_000,
                max_containers: 100_000,
                max_line_bytes: 1 << 20,
                max_memory_bytes: 512 << 20,
                max_diagnostics: 64,
            },
            max_inflight_commands: 64,
            max_session_waiters: 4,
            overload_retry_after_ms: 50,
            deadlines: DeadlineBudgets::default(),
            io_timeout_ms: Some(30_000),
            checkpoint_dir: None,
            journal_dir: None,
            journal_sync_every: 64,
            subscriber_queue: 64,
        }
    }
}

/// The streaming half of a live session: the append cursor, the
/// durable journal behind it, and the accumulated event text that
/// *defines* the session's content (a live session always equals the
/// lenient load of its acked texts, concatenated in sequence order —
/// the invariant crash recovery restores).
#[derive(Debug)]
pub struct LiveStream {
    /// Durable backing, when the server has a journal directory.
    pub journal: Option<JournalWriter>,
    /// Highest acknowledged sequence number (appends are contiguous:
    /// the next must be `last_seq + 1`; re-sends of older numbers are
    /// acked as duplicates without re-applying).
    pub last_seq: u64,
    /// Every acked event text, concatenated. Structural records force
    /// a rebuild from this text, and seal/checkpoint capture it.
    pub text: String,
    /// The trace extent the stream has declared, if any — the last
    /// valid `span` record wins, exactly as in a batch load.
    pub span: Option<(f64, f64)>,
    /// Sealed streams refuse further appends (the journal, if any, is
    /// sealed too, so recovery knows the stream ended on purpose).
    pub sealed: bool,
    /// The view as of the last published delta — the diff base.
    /// `None` until the first subscriber snapshot, so sessions nobody
    /// watches never pay for view extraction.
    pub last_view: Option<GraphView>,
}

/// One named session: the analysis state behind the per-session lock.
/// The frame cache lives on the [`SessionSlot`], outside this lock, so
/// cached renders never serialize behind a slow command.
#[derive(Debug)]
pub struct ServerSession {
    /// The interactive analysis this session wraps.
    pub analysis: AnalysisSession,
    /// Streaming state, present only on sessions fed by `append`.
    /// Batch-loaded and restored sessions leave this `None` and are
    /// indistinguishable from before streaming existed.
    pub live: Option<LiveStream>,
}

/// A registry slot: the session behind its per-session lock, plus the
/// pieces the fast paths read without that lock — the frame cache
/// (its own mutex), a lock-free mirror of the session revision, the
/// session's recorder, and the LRU recency tick. The waiter count is
/// what lets admission control bound the convoy on a hot session
/// ([`ServerLimits::max_session_waiters`]) instead of letting every
/// worker thread pile up behind one slow command.
#[derive(Debug)]
pub struct SessionSlot {
    lock: Mutex<ServerSession>,
    waiters: AtomicUsize,
    /// Rendered-frame cache keyed on (revision, viewport, theme).
    /// Separate mutex: a cache hit takes this lock only.
    frames: Mutex<FrameCache>,
    /// Mirror of `analysis.revision()`, published after every command
    /// while the session lock is still held. A reader that sees a
    /// stale value misses the cache and falls back to the locked path,
    /// so staleness costs latency, never correctness.
    revision: AtomicU64,
    /// The session's recorder (cloned handle; recorders share state),
    /// so the lock-free render path can count cache hits.
    recorder: Recorder,
    /// Last-touched logical tick (LRU order).
    last_used: AtomicU64,
}

impl SessionSlot {
    fn new(session: ServerSession, frames: FrameCache, tick: u64) -> SessionSlot {
        let recorder = session.analysis.recorder().clone();
        let revision = session.analysis.revision();
        SessionSlot {
            lock: Mutex::new(session),
            waiters: AtomicUsize::new(0),
            frames: Mutex::new(frames),
            revision: AtomicU64::new(revision),
            recorder,
            last_used: AtomicU64::new(tick),
        }
    }

    /// Tries to take the session lock without blocking, recovering
    /// from poisoning.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, ServerSession>> {
        match self.lock.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Blocks for the session lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, ServerSession> {
        relock(&self.lock)
    }

    /// Locks the slot's frame cache (independent of the session lock).
    pub fn frames(&self) -> MutexGuard<'_, FrameCache> {
        relock(&self.frames)
    }

    /// The last revision published for this session. May trail the
    /// authoritative `analysis.revision()` while a command is in
    /// flight; the cached-render fast path tolerates that by design.
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Acquire)
    }

    /// Publishes the session revision for lock-free readers. Called
    /// with the session lock held, after the command has run.
    pub(crate) fn publish_revision(&self, revision: u64) {
        self.revision.store(revision, Ordering::Release);
    }

    /// The session's recorder handle.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Connections currently blocked on [`SessionSlot::lock`] via the
    /// counted path.
    pub(crate) fn waiters(&self) -> &AtomicUsize {
        &self.waiters
    }

    fn touch(&self, tick: u64) {
        self.last_used.store(tick, Ordering::Relaxed);
    }

    fn tick(&self) -> u64 {
        self.last_used.load(Ordering::Relaxed)
    }
}

/// A bounded, concurrency-safe map of named [`ServerSession`]s.
#[derive(Debug)]
pub struct SessionRegistry {
    limits: ServerLimits,
    sessions: RwLock<HashMap<String, Arc<SessionSlot>>>,
    clock: AtomicU64,
}

/// Recovers from a poisoned mutex: a panic in one request handler must
/// not wedge every future request (graceful degradation — the state
/// itself is still consistent, the analysis types have no
/// panic-unsafe invariants).
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl SessionRegistry {
    /// An empty registry enforcing `limits`.
    pub fn new(limits: ServerLimits) -> SessionRegistry {
        SessionRegistry {
            limits,
            sessions: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(0),
        }
    }

    /// The limits this registry enforces.
    pub fn limits(&self) -> &ServerLimits {
        &self.limits
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<SessionSlot>>> {
        self.sessions.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<SessionSlot>>> {
        self.sessions.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Advances the logical clock and returns the fresh tick. Ticks
    /// are unique, so LRU victims are always unambiguous.
    fn next_tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Creates (or replaces) the session `name`, evicting the least
    /// recently used session if the registry is full. Returns the
    /// evicted sessions as `(name, slot)` pairs, name-sorted and
    /// deterministic for a given command history — the caller owns
    /// the victims' last handles and can checkpoint them before drop.
    pub fn create(&self, name: &str, session: AnalysisSession) -> Vec<(String, Arc<SessionSlot>)> {
        self.create_session(name, ServerSession { analysis: session, live: None })
    }

    /// Like [`create`](SessionRegistry::create), but the caller builds
    /// the whole [`ServerSession`] — the streaming path uses this to
    /// install a session with live state attached atomically.
    pub fn create_session(
        &self,
        name: &str,
        session: ServerSession,
    ) -> Vec<(String, Arc<SessionSlot>)> {
        let tick = self.next_tick();
        let entry = Arc::new(SessionSlot::new(
            session,
            FrameCache::new(self.limits.frame_cache_frames),
            tick,
        ));
        let mut sessions = self.write();
        sessions.insert(name.to_owned(), entry);
        let mut evicted = Vec::new();
        while sessions.len() > self.limits.max_sessions.max(1) {
            // Victim: stalest tick; ticks are unique so this is
            // unambiguous. The session just created has the freshest
            // tick and can never evict itself.
            let victim = sessions
                .iter()
                .min_by_key(|(n, slot)| (slot.tick(), (*n).clone()))
                .map(|(n, _)| n.clone())
                .expect("non-empty registry");
            let slot = sessions.remove(&victim).expect("victim is live");
            evicted.push((victim, slot));
        }
        evicted.sort_by(|a, b| a.0.cmp(&b.0));
        evicted
    }

    /// Fetches a session by name, refreshing its LRU recency. The
    /// returned slot is locked per command by the caller. Takes only
    /// the read half of the registry lock — the hot path under
    /// concurrent sessions.
    pub fn get(&self, name: &str) -> Option<Arc<SessionSlot>> {
        let tick = self.next_tick();
        let found = self.read().get(name).cloned();
        if let Some(slot) = &found {
            slot.touch(tick);
        }
        found
    }

    /// Fetches a session **without** refreshing its LRU recency or
    /// advancing the logical clock. The observability path uses this
    /// so reading a session's stats never changes which session a
    /// later `create` evicts — the observer must not disturb the
    /// observed.
    pub fn peek(&self, name: &str) -> Option<Arc<SessionSlot>> {
        self.read().get(name).cloned()
    }

    /// Drops a session. Returns whether it existed.
    pub fn close(&self, name: &str) -> bool {
        self.write().remove(name).is_some()
    }

    /// Live session names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// Whether no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locks `name`'s session for one command, recovering from
    /// poisoning (a panicking handler must not wedge the session).
    pub fn lock_session<'a>(session: &'a Arc<SessionSlot>) -> MutexGuard<'a, ServerSession> {
        session.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    fn tiny_session() -> AnalysisSession {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let h = b.new_container(b.root(), "h", ContainerKind::Host).unwrap();
        b.set_variable(0.0, h, power, 10.0).unwrap();
        AnalysisSession::builder(b.finish(1.0)).build()
    }

    fn registry(max_sessions: usize) -> SessionRegistry {
        SessionRegistry::new(ServerLimits { max_sessions, ..ServerLimits::default() })
    }

    #[test]
    fn create_get_close_roundtrip() {
        let r = registry(4);
        assert!(r.is_empty());
        assert!(r.create("a", tiny_session()).is_empty());
        assert!(r.get("a").is_some());
        assert!(r.get("b").is_none());
        assert_eq!(r.names(), vec!["a".to_owned()]);
        assert!(r.close("a"));
        assert!(!r.close("a"));
        assert!(r.is_empty());
    }

    #[test]
    fn lru_eviction_is_by_use_not_by_creation() {
        let r = registry(2);
        r.create("a", tiny_session());
        r.create("b", tiny_session());
        // Touch "a" so "b" becomes the LRU victim.
        assert!(r.get("a").is_some());
        let evicted = r.create("c", tiny_session());
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, "b");
        // The evicted slot is handed back alive for checkpointing.
        assert_eq!(evicted[0].1.lock().analysis.revision(), 0);
        assert_eq!(r.names(), vec!["a".to_owned(), "c".to_owned()]);
        assert!(r.get("b").is_none(), "evicted session is gone");
    }

    #[test]
    fn peek_does_not_refresh_lru_recency() {
        let r = registry(2);
        r.create("a", tiny_session());
        r.create("b", tiny_session());
        assert!(r.peek("a").is_some());
        assert!(r.peek("nope").is_none());
        // Despite the peek, "a" is still the LRU victim.
        assert_eq!(r.create("c", tiny_session())[0].0, "a");
    }

    #[test]
    fn replacing_a_session_does_not_grow_the_registry() {
        let r = registry(2);
        r.create("a", tiny_session());
        r.create("b", tiny_session());
        assert!(r.create("a", tiny_session()).is_empty(), "replace, not evict");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn capacity_one_always_keeps_the_newest() {
        let r = registry(1);
        assert!(r.create("a", tiny_session()).is_empty());
        assert_eq!(r.create("b", tiny_session())[0].0, "a");
        assert_eq!(r.names(), vec!["b".to_owned()]);
    }

    #[test]
    fn slot_try_lock_reports_contention() {
        let r = registry(2);
        r.create("a", tiny_session());
        let slot = r.get("a").unwrap();
        let held = slot.try_lock().unwrap();
        assert!(slot.try_lock().is_none(), "second try_lock must not succeed");
        drop(held);
        assert!(slot.try_lock().is_some());
    }

    #[test]
    fn slot_publishes_revision_and_owns_frame_cache() {
        let r = registry(2);
        r.create("a", tiny_session());
        let slot = r.get("a").unwrap();
        assert_eq!(slot.revision(), 0, "mirror starts at the session revision");
        slot.publish_revision(7);
        assert_eq!(slot.revision(), 7);
        // The frame cache is usable without the session lock held.
        let _held = slot.lock();
        assert!(slot.frames().is_empty());
    }
}
