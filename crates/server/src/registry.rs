//! Many named analysis sessions behind one server.
//!
//! The [`SessionRegistry`] is the shared-machine piece of the serving
//! layer: each analyst (or tab, or benchmark client) works in a named
//! session holding its own [`viva::AnalysisSession`] and frame cache.
//! Sessions are protected by **per-session locks**, so two connections
//! driving different sessions never contend, while two connections
//! driving the *same* session serialize their commands (the analysis
//! session is single-writer by design).
//!
//! Capacity is bounded: creating a session beyond
//! [`ServerLimits::max_sessions`] evicts the least-recently-*used*
//! session, tracked with a logical clock so eviction order is a pure
//! function of the command history — wall time never leaks into
//! protocol-visible behaviour.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use viva::AnalysisSession;
use viva_trace::ResourceBudget;

use crate::cache::FrameCache;

/// Hard ceilings a server instance enforces; the serving analogue of
/// [`ResourceBudget`]. Defaults are sized for an interactive
/// multi-analyst workstation.
#[derive(Debug, Clone)]
pub struct ServerLimits {
    /// Live sessions kept before LRU eviction.
    pub max_sessions: usize,
    /// Per-`relax`-command cap on layout iterations (a hostile
    /// `{"steps": 1e15}` must not pin a worker thread).
    pub max_relax_steps: u64,
    /// Per-request-line byte cap (the trace upload arrives inline, so
    /// this is generous — but bounded).
    pub max_line_bytes: usize,
    /// Frames each session's cache retains.
    pub frame_cache_frames: usize,
    /// Ingestion budget applied to every `load_trace`.
    pub load_budget: ResourceBudget,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_sessions: 32,
            max_relax_steps: 20_000,
            max_line_bytes: 64 << 20, // 64 MiB: inline trace uploads
            frame_cache_frames: 32,
            load_budget: ResourceBudget {
                // Tighter than the workstation default: server traces
                // arrive from the network.
                max_events: 5_000_000,
                max_containers: 100_000,
                max_line_bytes: 1 << 20,
                max_memory_bytes: 512 << 20,
                max_diagnostics: 64,
            },
        }
    }
}

/// One named session: the analysis state plus its frame cache.
#[derive(Debug)]
pub struct ServerSession {
    /// The interactive analysis this session wraps.
    pub analysis: AnalysisSession,
    /// Rendered-frame cache keyed on (revision, viewport, theme).
    pub frames: FrameCache,
}

#[derive(Debug, Default)]
struct RegistryInner {
    sessions: HashMap<String, Arc<Mutex<ServerSession>>>,
    /// name → last-touched logical tick (LRU order).
    last_used: HashMap<String, u64>,
    clock: u64,
}

/// A bounded, concurrency-safe map of named [`ServerSession`]s.
#[derive(Debug)]
pub struct SessionRegistry {
    limits: ServerLimits,
    inner: Mutex<RegistryInner>,
}

/// Recovers from a poisoned mutex: a panic in one request handler must
/// not wedge every future request (graceful degradation — the state
/// itself is still consistent, the analysis types have no
/// panic-unsafe invariants).
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl SessionRegistry {
    /// An empty registry enforcing `limits`.
    pub fn new(limits: ServerLimits) -> SessionRegistry {
        SessionRegistry { limits, inner: Mutex::new(RegistryInner::default()) }
    }

    /// The limits this registry enforces.
    pub fn limits(&self) -> &ServerLimits {
        &self.limits
    }

    /// Creates (or replaces) the session `name`, evicting the least
    /// recently used session if the registry is full. Returns the
    /// names of evicted sessions (deterministic for a given command
    /// history).
    pub fn create(&self, name: &str, session: AnalysisSession) -> Vec<String> {
        let mut inner = relock(&self.inner);
        inner.clock += 1;
        let tick = inner.clock;
        let entry = Arc::new(Mutex::new(ServerSession {
            analysis: session,
            frames: FrameCache::new(self.limits.frame_cache_frames),
        }));
        inner.sessions.insert(name.to_owned(), entry);
        inner.last_used.insert(name.to_owned(), tick);
        let mut evicted = Vec::new();
        while inner.sessions.len() > self.limits.max_sessions.max(1) {
            // Victim: stalest tick; ticks are unique so this is
            // unambiguous. The session just created has the freshest
            // tick and can never evict itself.
            let victim = inner
                .last_used
                .iter()
                .min_by_key(|(_, &t)| t)
                .map(|(n, _)| n.clone())
                .expect("non-empty registry");
            inner.sessions.remove(&victim);
            inner.last_used.remove(&victim);
            evicted.push(victim);
        }
        evicted.sort();
        evicted
    }

    /// Fetches a session by name, refreshing its LRU recency. The
    /// returned handle is locked per command by the caller.
    pub fn get(&self, name: &str) -> Option<Arc<Mutex<ServerSession>>> {
        let mut inner = relock(&self.inner);
        inner.clock += 1;
        let tick = inner.clock;
        let found = inner.sessions.get(name).cloned();
        if found.is_some() {
            inner.last_used.insert(name.to_owned(), tick);
        }
        found
    }

    /// Fetches a session **without** refreshing its LRU recency or
    /// advancing the logical clock. The observability path uses this
    /// so reading a session's stats never changes which session a
    /// later `create` evicts — the observer must not disturb the
    /// observed.
    pub fn peek(&self, name: &str) -> Option<Arc<Mutex<ServerSession>>> {
        relock(&self.inner).sessions.get(name).cloned()
    }

    /// Drops a session. Returns whether it existed.
    pub fn close(&self, name: &str) -> bool {
        let mut inner = relock(&self.inner);
        inner.last_used.remove(name);
        inner.sessions.remove(name).is_some()
    }

    /// Live session names, sorted.
    pub fn names(&self) -> Vec<String> {
        let inner = relock(&self.inner);
        let mut names: Vec<String> = inner.sessions.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        relock(&self.inner).sessions.len()
    }

    /// Whether no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locks `name`'s session for one command, recovering from
    /// poisoning (a panicking handler must not wedge the session).
    pub fn lock_session<'a>(
        session: &'a Arc<Mutex<ServerSession>>,
    ) -> MutexGuard<'a, ServerSession> {
        relock(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    fn tiny_session() -> AnalysisSession {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let h = b.new_container(b.root(), "h", ContainerKind::Host).unwrap();
        b.set_variable(0.0, h, power, 10.0).unwrap();
        AnalysisSession::builder(b.finish(1.0)).build()
    }

    fn registry(max_sessions: usize) -> SessionRegistry {
        SessionRegistry::new(ServerLimits { max_sessions, ..ServerLimits::default() })
    }

    #[test]
    fn create_get_close_roundtrip() {
        let r = registry(4);
        assert!(r.is_empty());
        assert!(r.create("a", tiny_session()).is_empty());
        assert!(r.get("a").is_some());
        assert!(r.get("b").is_none());
        assert_eq!(r.names(), vec!["a".to_owned()]);
        assert!(r.close("a"));
        assert!(!r.close("a"));
        assert!(r.is_empty());
    }

    #[test]
    fn lru_eviction_is_by_use_not_by_creation() {
        let r = registry(2);
        r.create("a", tiny_session());
        r.create("b", tiny_session());
        // Touch "a" so "b" becomes the LRU victim.
        assert!(r.get("a").is_some());
        let evicted = r.create("c", tiny_session());
        assert_eq!(evicted, vec!["b".to_owned()]);
        assert_eq!(r.names(), vec!["a".to_owned(), "c".to_owned()]);
        assert!(r.get("b").is_none(), "evicted session is gone");
    }

    #[test]
    fn peek_does_not_refresh_lru_recency() {
        let r = registry(2);
        r.create("a", tiny_session());
        r.create("b", tiny_session());
        assert!(r.peek("a").is_some());
        assert!(r.peek("nope").is_none());
        // Despite the peek, "a" is still the LRU victim.
        assert_eq!(r.create("c", tiny_session()), vec!["a".to_owned()]);
    }

    #[test]
    fn replacing_a_session_does_not_grow_the_registry() {
        let r = registry(2);
        r.create("a", tiny_session());
        r.create("b", tiny_session());
        assert!(r.create("a", tiny_session()).is_empty(), "replace, not evict");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn capacity_one_always_keeps_the_newest() {
        let r = registry(1);
        assert!(r.create("a", tiny_session()).is_empty());
        assert_eq!(r.create("b", tiny_session()), vec!["a".to_owned()]);
        assert_eq!(r.names(), vec!["b".to_owned()]);
    }
}
