//! Session checkpoint/restore: crash-only serving.
//!
//! A [`SessionCheckpoint`] is a deterministic, versioned snapshot of
//! everything that makes a session's **view**: the trace (as canonical
//! CSV interchange text, so the checkpoint is self-contained across a
//! process restart), the collapse set, the time slice, the force
//! sliders, the per-group scaling sliders, the position and pin state
//! of every visible node, the ingestion-degradation counters, and the
//! view revision.
//!
//! The correctness bar is **byte-identical rendering**: a session
//! restored from a checkpoint renders exactly the bytes the live
//! session rendered at checkpoint time, at the same revision. A second
//! consequence is the *fixed point* property — checkpointing a restored
//! session reproduces the original checkpoint byte for byte — which is
//! what makes kill-restore-replay cycles testable.
//!
//! Serialization goes through the same canonical JSON codec as the wire
//! protocol ([`crate::json`]): fixed member order, sorted collections,
//! shortest-round-trip numbers. Same checkpoint, same bytes, always.
//!
//! What a checkpoint deliberately does **not** carry:
//!
//! * layout *momentum* (velocities) and the layout RNG: positions are
//!   the visual contract; a restored session relaxes from rest;
//! * the frame cache: it is a pure function of (revision, viewport)
//!   and refills on demand;
//! * watchdog freeze state: a restored layout starts thawed — the
//!   conditions that froze it are gone with the process.

use std::fmt;
use std::sync::Arc;

use viva::AnalysisSession;
use viva_agg::AggIndex;
use viva_layout::{NodeKey, Vec2};
use viva_obs::Recorder;
use viva_trace::{
    ContainerId, MetricId, RecoveryMode, ResourceBudget, Trace, TraceError, TraceLoader,
};

use crate::json::Json;
use crate::protocol::DecodeError;
use crate::store::{content_hash, hash_token};

/// Format version written by [`SessionCheckpoint::capture`]. Bump on
/// any incompatible change to the member set; restore rejects versions
/// it does not understand. Version 2 added `trace_hash` — the content
/// hash the server's `TraceStore` uses to re-link a restored session
/// to an already-loaded shared trace. Version 3 added the optional
/// `journal` member linking a live streaming session back to its
/// event journal; version-2 checkpoints still restore (they simply
/// carry no journal link).
pub const CHECKPOINT_VERSION: u64 = 3;

/// Oldest checkpoint version [`SessionCheckpoint::restore`] accepts.
pub const OLDEST_RESTORABLE_VERSION: u64 = 2;

/// Position and pin state of one visible node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePlacement {
    /// Container index (stable across the canonical CSV round trip).
    pub container: u64,
    /// Layout x coordinate.
    pub x: f64,
    /// Layout y coordinate.
    pub y: f64,
    /// Whether the node is pinned (dragged and not yet released).
    pub pinned: bool,
}

/// A deterministic, versioned snapshot of one session's view state.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    /// Checkpoint format version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// The session's name at capture time.
    pub session: String,
    /// The session's view revision at capture time.
    pub revision: u64,
    /// Effective time slice (already clamped to the trace extent).
    pub slice_start: f64,
    /// Effective time slice end.
    pub slice_end: f64,
    /// Collapsed container indices, sorted.
    pub collapsed: Vec<u64>,
    /// Sanitized force sliders: repulsion, spring, damping.
    pub forces: (f64, f64, f64),
    /// Touched scaling sliders, sorted by group name.
    pub scaling: Vec<(String, f64)>,
    /// Every visible node's position and pin state, sorted by
    /// container index.
    pub placements: Vec<NodePlacement>,
    /// Quarantine counters `(container, metric, count)`, sorted — the
    /// ingestion facts the canonical CSV cannot carry.
    pub quarantined: Vec<(u64, u64, u64)>,
    /// Records dropped by the original (possibly lenient) ingest.
    pub ingest_dropped: u64,
    /// For live streaming sessions: the `(journal id, last acked
    /// sequence number)` pair linking this checkpoint back to its
    /// event journal. A restoring server re-opens the journal and
    /// replays the records after `last_seq` through the ordinary
    /// append path, so a checkpoint plus its journal reconstructs the
    /// stream exactly. `None` for batch sessions (and for version-2
    /// checkpoints).
    pub journal: Option<(String, u64)>,
    /// Content hash of `trace_csv` (FNV-1a 64, 16 lowercase hex
    /// digits). Restore verifies it against the embedded CSV, and the
    /// server uses it to re-link the session to a stored shared trace
    /// with the same content instead of re-parsing.
    pub trace_hash: String,
    /// The trace as canonical CSV interchange text. Kept last so the
    /// bulk payload does not obscure the state members in a dump.
    pub trace_csv: String,
}

/// Why a checkpoint could not be turned back into a session. The
/// server maps this onto the typed `bad_checkpoint` wire error.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The checkpoint was written by an unknown format version.
    Version {
        /// The version the checkpoint claims.
        found: u64,
    },
    /// The embedded trace failed to load (parse error or budget
    /// breach — checkpoints are external input and get the same
    /// ingestion scrutiny as an upload).
    Trace(String),
    /// The state members do not fit the embedded trace (unknown
    /// container, hidden placement target, non-finite values).
    State(String),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Version { found } => write!(
                f,
                "checkpoint version {found} is not supported (this server writes \
                 version {CHECKPOINT_VERSION})"
            ),
            RestoreError::Trace(m) => write!(f, "checkpoint trace rejected: {m}"),
            RestoreError::State(m) => write!(f, "checkpoint state rejected: {m}"),
        }
    }
}

impl std::error::Error for RestoreError {}

fn key_of(index: u64) -> NodeKey {
    NodeKey(index)
}

impl SessionCheckpoint {
    /// Snapshots `analysis` (named `session` in the registry) into a
    /// checkpoint. Pure read: the session is not perturbed.
    pub fn capture(session: &str, analysis: &AnalysisSession) -> SessionCheckpoint {
        let trace = analysis.trace();
        let slice = analysis.time_slice();
        let cfg = analysis.layout().config();

        let mut placements: Vec<NodePlacement> = analysis
            .layout()
            .positions()
            .map(|(k, pos)| NodePlacement {
                container: k.0,
                x: pos.x,
                y: pos.y,
                pinned: analysis.layout().is_pinned(k),
            })
            .collect();
        placements.sort_by_key(|p| p.container);

        let mut quarantined: Vec<(u64, u64, u64)> = trace
            .quarantined_entries()
            .map(|(c, m, n)| (c.index() as u64, m.index() as u64, n))
            .collect();
        quarantined.sort_unstable();
        let trace_csv = viva_trace::export::to_csv(trace);

        SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            session: session.to_owned(),
            revision: analysis.revision(),
            slice_start: slice.start(),
            slice_end: slice.end(),
            collapsed: analysis
                .view_state()
                .collapsed_ids()
                .into_iter()
                .map(|c| c.index() as u64)
                .collect(),
            forces: (cfg.repulsion, cfg.spring, cfg.damping),
            scaling: analysis.scaling().sliders(),
            placements,
            quarantined,
            ingest_dropped: trace.ingest_dropped(),
            journal: None,
            trace_hash: hash_token(content_hash(trace_csv.as_bytes())),
            trace_csv,
        }
    }

    /// Rebuilds a live session from this checkpoint. The embedded
    /// trace is re-ingested in strict mode under `budget` (checkpoints
    /// are external input), then the view state is replayed through the
    /// session's ordinary mutators and the revision snapped back to the
    /// captured value. A render of the result is byte-identical to a
    /// render of the captured session.
    pub fn restore(
        &self,
        budget: ResourceBudget,
        recorder: Recorder,
    ) -> Result<AnalysisSession, RestoreError> {
        if !(OLDEST_RESTORABLE_VERSION..=CHECKPOINT_VERSION).contains(&self.version) {
            return Err(RestoreError::Version { found: self.version });
        }
        let found = hash_token(content_hash(self.trace_csv.as_bytes()));
        if found != self.trace_hash {
            return Err(RestoreError::Trace(format!(
                "trace hash mismatch: checkpoint claims {} but the embedded CSV hashes \
                 to {found}",
                self.trace_hash
            )));
        }
        let loader = TraceLoader::new()
            .mode(RecoveryMode::Strict)
            .budget(budget)
            .recorder(recorder.clone());
        let report = loader.load_str(&self.trace_csv).map_err(|e| match e {
            TraceError::BudgetExceeded(b) => RestoreError::Trace(b.to_string()),
            other => RestoreError::Trace(other.to_string()),
        })?;
        let mut trace = report.trace.clone();
        let containers = trace.containers().len() as u64;
        let metrics = trace.metrics().len() as u64;

        let quarantined: Vec<(ContainerId, MetricId, u64)> = self
            .quarantined
            .iter()
            .map(|&(c, m, n)| {
                if c >= containers || m >= metrics {
                    return Err(RestoreError::State(format!(
                        "quarantine entry ({c}, {m}) is outside the trace"
                    )));
                }
                Ok((
                    ContainerId::from_index(c as usize),
                    MetricId::from_index(m as usize),
                    n,
                ))
            })
            .collect::<Result<_, _>>()?;
        trace.restore_ingest_degradation(&quarantined, self.ingest_dropped);

        let mut analysis = AnalysisSession::builder(trace).recorder(recorder).build();
        self.replay_state(&mut analysis)?;
        Ok(analysis)
    }

    /// Rebuilds a session over an **already-loaded shared trace** — the
    /// server's re-link fast path: no CSV re-parse, no index rebuild.
    /// Only sound when the checkpoint carries no ingestion degradation
    /// (quarantine counters and drop counts live on the trace, and a
    /// shared trace cannot be mutated) and when both the checkpoint and
    /// the shared trace are clean; the caller matches `trace_hash`
    /// against the store before calling. Violations are reported as
    /// [`RestoreError::State`] and the caller falls back to
    /// [`restore`](SessionCheckpoint::restore).
    pub fn restore_shared(
        &self,
        trace: Arc<Trace>,
        index: Option<Arc<AggIndex>>,
        recorder: Recorder,
    ) -> Result<AnalysisSession, RestoreError> {
        if !(OLDEST_RESTORABLE_VERSION..=CHECKPOINT_VERSION).contains(&self.version) {
            return Err(RestoreError::Version { found: self.version });
        }
        if !self.quarantined.is_empty() || self.ingest_dropped != 0 {
            return Err(RestoreError::State(
                "checkpoint carries ingestion degradation; shared-trace restore \
                 requires a clean trace"
                    .into(),
            ));
        }
        if trace.quarantined_entries().next().is_some() || trace.ingest_dropped() != 0 {
            return Err(RestoreError::State(
                "stored trace carries ingestion degradation the checkpoint does not"
                    .into(),
            ));
        }
        let mut builder = AnalysisSession::builder(trace).recorder(recorder);
        if let Some(index) = index {
            builder = builder.shared_index(index);
        }
        let mut analysis = builder.build();
        self.replay_state(&mut analysis)?;
        Ok(analysis)
    }

    /// Replays the checkpointed view state into a freshly built
    /// session through its ordinary mutators, then snaps the revision
    /// back to the captured value.
    fn replay_state(&self, analysis: &mut AnalysisSession) -> Result<(), RestoreError> {
        let containers = analysis.trace().containers().len() as u64;
        for &c in &self.collapsed {
            if c >= containers {
                return Err(RestoreError::State(format!(
                    "collapsed container {c} is outside the trace"
                )));
            }
            analysis
                .collapse(ContainerId::from_index(c as usize))
                .map_err(|e| RestoreError::State(e.to_string()))?;
        }
        analysis
            .try_set_time_slice(self.slice_start, self.slice_end)
            .map_err(|e| RestoreError::State(e.to_string()))?;
        {
            let cfg = analysis.layout_config_mut();
            cfg.repulsion = self.forces.0;
            cfg.spring = self.forces.1;
            cfg.damping = self.forces.2;
            *cfg = cfg.sanitized();
        }
        for (group, factor) in &self.scaling {
            if !(factor.is_finite() && *factor >= 0.0) {
                return Err(RestoreError::State(format!(
                    "scaling slider {group:?} has illegal factor {factor}"
                )));
            }
            analysis.scaling_mut().set_slider(group.clone(), *factor);
        }
        for p in &self.placements {
            if !(p.x.is_finite() && p.y.is_finite()) {
                return Err(RestoreError::State(format!(
                    "placement of container {} is not finite",
                    p.container
                )));
            }
            let k = key_of(p.container);
            if !analysis.layout_mut().move_node(k, Vec2::new(p.x, p.y)) {
                return Err(RestoreError::State(format!(
                    "placement names container {} which is not visible under the \
                     checkpointed collapse set",
                    p.container
                )));
            }
            if p.pinned {
                analysis.layout_mut().pin(k);
            }
        }
        analysis.restore_revision(self.revision);
        Ok(())
    }

    /// Serializes to the canonical one-line JSON form.
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    /// Parses a checkpoint from its canonical JSON line.
    pub fn decode(line: &str) -> Result<SessionCheckpoint, DecodeError> {
        let v = Json::parse(line)
            .map_err(|e| DecodeError { message: format!("invalid JSON: {e}") })?;
        SessionCheckpoint::from_json(&v)
    }

    pub(crate) fn to_json(&self) -> Json {
        let num = Json::Num;
        let mut members = vec![
            ("version".into(), num(self.version as f64)),
            ("session".into(), Json::Str(self.session.clone())),
            ("revision".into(), num(self.revision as f64)),
            (
                "slice".into(),
                Json::Obj(vec![
                    ("start".into(), num(self.slice_start)),
                    ("end".into(), num(self.slice_end)),
                ]),
            ),
            (
                "collapsed".into(),
                Json::Arr(self.collapsed.iter().map(|&c| num(c as f64)).collect()),
            ),
            (
                "forces".into(),
                Json::Obj(vec![
                    ("repulsion".into(), num(self.forces.0)),
                    ("spring".into(), num(self.forces.1)),
                    ("damping".into(), num(self.forces.2)),
                ]),
            ),
            (
                "scaling".into(),
                Json::Obj(
                    self.scaling.iter().map(|(g, f)| (g.clone(), num(*f))).collect(),
                ),
            ),
            (
                "nodes".into(),
                Json::Arr(
                    self.placements
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("c".into(), num(p.container as f64)),
                                ("x".into(), num(p.x)),
                                ("y".into(), num(p.y)),
                                ("pin".into(), Json::Bool(p.pinned)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "quarantined".into(),
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|&(c, m, n)| {
                            Json::Arr(vec![num(c as f64), num(m as f64), num(n as f64)])
                        })
                        .collect(),
                ),
            ),
            ("ingest_dropped".into(), num(self.ingest_dropped as f64)),
        ];
        // Optional member: absent for batch sessions, so version-3
        // checkpoints of non-streaming sessions are byte-identical to
        // version-2 ones apart from the version number.
        if let Some((id, last_seq)) = &self.journal {
            members.push((
                "journal".into(),
                Json::Obj(vec![
                    ("id".into(), Json::Str(id.clone())),
                    ("last_seq".into(), num(*last_seq as f64)),
                ]),
            ));
        }
        members.push(("trace_hash".into(), Json::Str(self.trace_hash.clone())));
        members.push(("trace_csv".into(), Json::Str(self.trace_csv.clone())));
        Json::Obj(members)
    }

    pub(crate) fn from_json(v: &Json) -> Result<SessionCheckpoint, DecodeError> {
        let bad = |m: &str| DecodeError { message: m.to_owned() };
        let uint = |v: &Json, k: &str| -> Result<u64, DecodeError> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(&format!("missing or non-integer checkpoint field {k:?}")))
        };
        let num = |v: &Json, k: &str| -> Result<f64, DecodeError> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(&format!("missing or non-numeric checkpoint field {k:?}")))
        };
        let text = |v: &Json, k: &str| -> Result<String, DecodeError> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("missing or non-string checkpoint field {k:?}")))
        };

        let slice = v.get("slice").ok_or_else(|| bad("missing checkpoint field \"slice\""))?;
        let forces = v.get("forces").ok_or_else(|| bad("missing checkpoint field \"forces\""))?;
        let collapsed = match v.get("collapsed") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|i| i.as_u64().ok_or_else(|| bad("non-integer collapsed entry")))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(bad("missing or non-array checkpoint field \"collapsed\"")),
        };
        let scaling = match v.get("scaling") {
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(g, f)| {
                    f.as_f64()
                        .map(|f| (g.clone(), f))
                        .ok_or_else(|| bad("non-numeric scaling slider"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(bad("missing or non-object checkpoint field \"scaling\"")),
        };
        let placements = match v.get("nodes") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|p| {
                    Ok(NodePlacement {
                        container: uint(p, "c")?,
                        x: num(p, "x")?,
                        y: num(p, "y")?,
                        pinned: p
                            .get("pin")
                            .and_then(Json::as_bool)
                            .ok_or_else(|| bad("missing or non-boolean placement \"pin\""))?,
                    })
                })
                .collect::<Result<Vec<_>, DecodeError>>()?,
            _ => return Err(bad("missing or non-array checkpoint field \"nodes\"")),
        };
        let quarantined = match v.get("quarantined") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|e| match e {
                    Json::Arr(t) if t.len() == 3 => {
                        let g = |i: usize| {
                            t[i].as_u64().ok_or_else(|| bad("non-integer quarantine entry"))
                        };
                        Ok((g(0)?, g(1)?, g(2)?))
                    }
                    _ => Err(bad("quarantine entry must be a [container, metric, count] triple")),
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(bad("missing or non-array checkpoint field \"quarantined\"")),
        };

        Ok(SessionCheckpoint {
            version: uint(v, "version")?,
            session: text(v, "session")?,
            revision: uint(v, "revision")?,
            slice_start: num(slice, "start")?,
            slice_end: num(slice, "end")?,
            collapsed,
            forces: (num(forces, "repulsion")?, num(forces, "spring")?, num(forces, "damping")?),
            scaling,
            placements,
            quarantined,
            ingest_dropped: uint(v, "ingest_dropped")?,
            journal: match v.get("journal") {
                None | Some(Json::Null) => None,
                Some(j) => Some((text(j, "id")?, uint(j, "last_seq")?)),
            },
            // Absent on version-1 checkpoints; they decode, then the
            // version check in restore reports the typed error.
            trace_hash: match v.get("trace_hash") {
                None | Some(Json::Null) => String::new(),
                Some(h) => h
                    .as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| bad("non-string checkpoint field \"trace_hash\""))?,
            },
            trace_csv: text(v, "trace_csv")?,
        })
    }
}

/// The file name a session's checkpoint is written under inside the
/// server's checkpoint directory, or `None` when the session name
/// cannot be used as a path component safely (checkpoint names are
/// analyst input; a name like `../x` must never escape the directory).
pub fn checkpoint_file_name(session: &str) -> Option<String> {
    if session.is_empty()
        || session.len() > 128
        || !session
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        || session.starts_with('.')
    {
        return None;
    }
    Some(format!("{session}.ckpt.json"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    fn sample_session() -> AnalysisSession {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        for cn in ["c1", "c2"] {
            let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
            for i in 0..2 {
                let h = b
                    .new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host)
                    .unwrap();
                b.set_variable(0.0, h, power, 100.0 + i as f64).unwrap();
            }
        }
        AnalysisSession::builder(b.finish(10.0)).build()
    }

    #[test]
    fn checkpoint_round_trips_through_json() {
        let mut s = sample_session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        s.collapse(c1).unwrap();
        s.relax(25);
        s.try_set_time_slice(1.0, 7.0).unwrap();
        s.scaling_mut().set_slider("power", 2.0);
        let ckpt = SessionCheckpoint::capture("a", &s);
        let line = ckpt.encode();
        let back = SessionCheckpoint::decode(&line).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.encode(), line, "stable re-encode");
    }

    #[test]
    fn restore_is_render_identical_and_a_fixed_point() {
        let mut s = sample_session();
        let c2 = s.trace().containers().by_name("c2").unwrap().id();
        s.collapse(c2).unwrap();
        s.relax(40);
        let h = s.trace().containers().by_name("c1-h0").unwrap().id();
        s.drag(h, viva_layout::Vec2::new(17.5, -3.25)).unwrap();
        s.try_set_time_slice(2.0, 9.0).unwrap();

        let ckpt = SessionCheckpoint::capture("a", &s);
        let restored = ckpt
            .restore(ResourceBudget::default(), Recorder::disabled())
            .unwrap();
        let vp = viva::Viewport::new(640.0, 480.0);
        assert_eq!(restored.render(&vp), s.render(&vp), "render bytes must survive restore");
        assert_eq!(restored.revision(), s.revision());
        // Fixed point: checkpointing the restored session reproduces
        // the original checkpoint byte for byte.
        let again = SessionCheckpoint::capture("a", &restored);
        assert_eq!(again.encode(), ckpt.encode());
    }

    #[test]
    fn hostile_checkpoints_are_rejected_with_typed_errors() {
        let s = sample_session();
        let good = SessionCheckpoint::capture("a", &s);
        let budget = ResourceBudget::default;

        let mut wrong_version = good.clone();
        wrong_version.version = 99;
        assert!(matches!(
            wrong_version.restore(budget(), Recorder::disabled()),
            Err(RestoreError::Version { found: 99 })
        ));

        let mut bad_trace = good.clone();
        bad_trace.trace_csv = "not a trace".into();
        bad_trace.trace_hash = hash_token(content_hash(b"not a trace"));
        assert!(matches!(
            bad_trace.restore(budget(), Recorder::disabled()),
            Err(RestoreError::Trace(_))
        ));

        let mut tampered = good.clone();
        tampered.trace_csv.push_str("# tampered\n");
        assert!(
            matches!(
                tampered.restore(budget(), Recorder::disabled()),
                Err(RestoreError::Trace(m)) if m.contains("hash mismatch")
            ),
            "CSV edited under a stale hash must be rejected"
        );

        let mut bad_collapse = good.clone();
        bad_collapse.collapsed = vec![999];
        assert!(matches!(
            bad_collapse.restore(budget(), Recorder::disabled()),
            Err(RestoreError::State(_))
        ));

        let mut bad_place = good.clone();
        bad_place.placements[0].x = f64::NAN;
        assert!(matches!(
            bad_place.restore(budget(), Recorder::disabled()),
            Err(RestoreError::State(_))
        ));

        let mut bad_slider = good.clone();
        bad_slider.scaling = vec![("power".into(), -1.0)];
        assert!(matches!(
            bad_slider.restore(budget(), Recorder::disabled()),
            Err(RestoreError::State(_))
        ));
    }

    #[test]
    fn shared_restore_is_render_identical_to_full_restore() {
        let mut s = sample_session();
        let c1 = s.trace().containers().by_name("c1").unwrap().id();
        s.collapse(c1).unwrap();
        s.relax(30);
        s.try_set_time_slice(1.0, 8.0).unwrap();
        let ckpt = SessionCheckpoint::capture("a", &s);

        let relinked = ckpt
            .restore_shared(s.shared_trace(), s.shared_index(), Recorder::disabled())
            .unwrap();
        let vp = viva::Viewport::new(640.0, 480.0);
        assert_eq!(relinked.render(&vp), s.render(&vp));
        assert_eq!(relinked.revision(), s.revision());
        // The re-linked session shares the trace, not a copy.
        assert!(Arc::ptr_eq(&relinked.shared_trace(), &s.shared_trace()));
        // Fixed point holds on the shared path too.
        assert_eq!(SessionCheckpoint::capture("a", &relinked).encode(), ckpt.encode());
    }

    #[test]
    fn shared_restore_refuses_degraded_checkpoints() {
        let s = sample_session();
        let mut ckpt = SessionCheckpoint::capture("a", &s);
        ckpt.ingest_dropped = 3;
        assert!(matches!(
            ckpt.restore_shared(s.shared_trace(), None, Recorder::disabled()),
            Err(RestoreError::State(_))
        ));
    }

    #[test]
    fn journal_link_round_trips_and_v2_checkpoints_still_restore() {
        let s = sample_session();
        let mut ckpt = SessionCheckpoint::capture("a", &s);
        assert_eq!(ckpt.version, CHECKPOINT_VERSION);
        assert_eq!(ckpt.journal, None);
        ckpt.journal = Some(("a".into(), 41));
        let line = ckpt.encode();
        let back = SessionCheckpoint::decode(&line).unwrap();
        assert_eq!(back.journal, Some(("a".into(), 41)));
        assert_eq!(back.encode(), line, "stable re-encode with a journal link");
        // A version-2 checkpoint (no journal member) still restores.
        let mut v2 = SessionCheckpoint::capture("a", &s);
        v2.version = 2;
        assert!(v2.restore(ResourceBudget::default(), Recorder::disabled()).is_ok());
        // Version 1 stays rejected.
        let mut v1 = SessionCheckpoint::capture("a", &s);
        v1.version = 1;
        assert!(matches!(
            v1.restore(ResourceBudget::default(), Recorder::disabled()),
            Err(RestoreError::Version { found: 1 })
        ));
    }

    #[test]
    fn checkpoint_file_names_are_path_safe() {
        assert_eq!(checkpoint_file_name("demo"), Some("demo.ckpt.json".into()));
        assert_eq!(checkpoint_file_name("a-b_c.1"), Some("a-b_c.1.ckpt.json".into()));
        for bad in ["", "../x", "a/b", "a\\b", ".hidden", "a b", "a\nb", &"x".repeat(200)] {
            assert_eq!(checkpoint_file_name(bad), None, "{bad:?}");
        }
    }
}
