//! The serving loop: NDJSON over stdio or TCP.
//!
//! A [`Server`] owns a [`SessionRegistry`] and turns request lines
//! into response lines — one in, one out, in order. The same
//! [`Server::handle_line`] drives every transport:
//!
//! * [`Server::serve`] pumps any `BufRead`/`Write` pair — the stdio
//!   single-analyst mode, and the per-connection loop of TCP;
//! * [`serve_tcp`] accepts on a `std::net::TcpListener` from a fixed
//!   pool of worker threads (thread-per-connection, no external
//!   dependencies): each worker blocks in `accept`, serves its
//!   connection to EOF, then returns to accepting.
//!
//! Responses are deterministic: a fresh server given the same command
//! script produces byte-identical output, including the `cached`
//! flags of frame responses (the caches run on logical clocks).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use viva::{AnalysisSession, SessionError, Viewport};
use viva_layout::Vec2;
use viva_obs::Recorder;
use viva_trace::{ContainerId, TraceError, TraceLoader};

use crate::protocol::{Command, ErrorKind, Response, SessionStats, StatsBlock};
use crate::registry::{ServerLimits, ServerSession, SessionRegistry};

/// A protocol server over a session registry. Cheap to share:
/// transports hold it behind an [`Arc`].
///
/// With [`Server::with_metrics`] the server carries an enabled
/// [`Recorder`] of its own (per-command counters and latency
/// histograms, registry occupancy) and hands every new session an
/// enabled recorder of *its* own, threaded through the trace loader,
/// aggregation index, layout engine, and frame cache. [`Server::new`]
/// leaves both disabled — the metrics-off hot path is the original
/// uninstrumented code.
#[derive(Debug)]
pub struct Server {
    registry: SessionRegistry,
    recorder: Recorder,
}

fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error { kind, message: message.into() }
}

/// Maps a session-layer failure onto the wire.
fn session_error(e: SessionError) -> Response {
    let kind = match &e {
        SessionError::UnknownContainer(_) => ErrorKind::UnknownContainer,
        SessionError::HiddenContainer(_) => ErrorKind::HiddenContainer,
        SessionError::UnknownMetric(_) => ErrorKind::UnknownMetric,
        SessionError::InvalidTimeSlice(_) => ErrorKind::InvalidTimeSlice,
        SessionError::NonFinitePosition { .. } => ErrorKind::NonFinitePosition,
    };
    err(kind, e.to_string())
}

/// Resolves a container *name* against the session's trace. Names are
/// the protocol's container handle; ids are an in-process detail.
fn container_id(s: &ServerSession, name: &str) -> Result<ContainerId, Response> {
    s.analysis
        .trace()
        .containers()
        .by_name(name)
        .map(|c| c.id())
        .ok_or_else(|| {
            err(ErrorKind::UnknownContainer, format!("container {name:?} does not exist"))
        })
}

impl Server {
    /// A server with the given limits, no sessions, and metrics off.
    pub fn new(limits: ServerLimits) -> Server {
        Server { registry: SessionRegistry::new(limits), recorder: Recorder::disabled() }
    }

    /// A server with observability on: server-scope command metrics,
    /// plus a per-session recorder wired through every layer of each
    /// session created from here on. Metrics never reach a response
    /// except through the `stats` command's deterministic subset, so
    /// transcripts stay byte-identical to a metrics-off server's.
    pub fn with_metrics(limits: ServerLimits) -> Server {
        Server { registry: SessionRegistry::new(limits), recorder: Recorder::enabled() }
    }

    /// The underlying registry (tests and embedding).
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// The server-scope recorder (disabled unless built by
    /// [`Server::with_metrics`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Handles one raw request line. Returns `None` for blank lines
    /// (they produce no response), otherwise exactly one encoded
    /// response line (without trailing newline).
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return None;
        }
        if trimmed.len() > self.registry.limits().max_line_bytes {
            return Some(
                err(
                    ErrorKind::Protocol,
                    format!(
                        "request line of {} bytes exceeds the {}-byte limit",
                        trimmed.len(),
                        self.registry.limits().max_line_bytes
                    ),
                )
                .encode(),
            );
        }
        let response = match Command::decode(trimmed) {
            Ok(cmd) => self.execute(cmd),
            Err(e) => {
                let kind = if e.message.starts_with("unknown command") {
                    ErrorKind::UnknownCommand
                } else if e.message.starts_with("bad theme") {
                    ErrorKind::BadTheme
                } else {
                    ErrorKind::Protocol
                };
                err(kind, e.message)
            }
        };
        Some(response.encode())
    }

    /// Executes one decoded command, tallying per-command counters and
    /// latency histograms when metrics are on (the span's wall-clock
    /// duration stays in the recorder — it never reaches a response).
    pub fn execute(&self, cmd: Command) -> Response {
        let _span = self.recorder.is_enabled().then(|| {
            let name = cmd.name();
            self.recorder.counter(&format!("server.cmd.{name}")).inc();
            self.recorder.span(&format!("server.cmd.{name}.seconds"))
        });
        self.dispatch(cmd)
    }

    fn dispatch(&self, cmd: Command) -> Response {
        match cmd {
            Command::Ping => Response::Pong,
            Command::Sessions => Response::SessionList { names: self.registry.names() },
            Command::CloseSession { session } => {
                if self.registry.close(&session) {
                    self.update_occupancy();
                    Response::Closed { session }
                } else {
                    err(ErrorKind::NoSession, format!("session {session:?} does not exist"))
                }
            }
            Command::LoadTrace { session, mode, text } => self.load_trace(session, mode, &text),
            Command::Stats { session } => self.stats(session),
            cmd => self.with_session(cmd),
        }
    }

    /// Mirrors registry occupancy into the `server.sessions` gauge.
    fn update_occupancy(&self) {
        if self.recorder.is_enabled() {
            self.recorder.gauge("server.sessions").set(self.registry.len() as f64);
        }
    }

    /// Answers `stats`: the server's deterministic metric subset, plus
    /// one session's when named. Session lookup goes through
    /// [`SessionRegistry::peek`] so observing never perturbs LRU state.
    fn stats(&self, session: Option<String>) -> Response {
        let server = Box::new(StatsBlock::from_snapshot(&self.recorder.snapshot()));
        let session = match session {
            None => None,
            Some(name) => {
                let Some(handle) = self.registry.peek(&name) else {
                    return err(ErrorKind::NoSession, format!("session {name:?} does not exist"));
                };
                let s = SessionRegistry::lock_session(&handle);
                Some(Box::new(SessionStats {
                    name,
                    revision: s.analysis.revision(),
                    frozen: s.analysis.layout_freeze_reason().map(|r| r.token().to_owned()),
                    stats: StatsBlock::from_snapshot(&s.analysis.recorder().snapshot()),
                }))
            }
        };
        Response::Stats { sessions: self.registry.len() as u64, server, session }
    }

    fn load_trace(
        &self,
        session: String,
        mode: viva_trace::RecoveryMode,
        text: &str,
    ) -> Response {
        // A metrics-on server gives each session its own recorder,
        // shared by the loader, index, layout, and frame-cache
        // counters — `stats` reads it back per session.
        let session_recorder = if self.recorder.is_enabled() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        };
        let loader = TraceLoader::new()
            .mode(mode)
            .budget(self.registry.limits().load_budget)
            .recorder(session_recorder.clone());
        let report = match loader.load_str(text) {
            Ok(report) => report,
            Err(TraceError::BudgetExceeded(breach)) => {
                return err(ErrorKind::BudgetExceeded, breach.to_string())
            }
            Err(e) => return err(ErrorKind::ParseTrace, e.to_string()),
        };
        let trace = report.trace.clone();
        let analysis = AnalysisSession::builder(trace).recorder(session_recorder).build();
        let containers = analysis.trace().containers().len() as u64;
        let (start, end) = (analysis.trace().start(), analysis.trace().end());
        // Evicted names are dropped silently: eviction is deterministic
        // for a given script, and the victims' owners find out through
        // a typed `no_session` error on their next command.
        let _evicted = self.registry.create(&session, analysis);
        self.update_occupancy();
        Response::Loaded {
            session,
            containers,
            events: report.events as u64,
            dropped: report.dropped as u64,
            quarantined: report.quarantined as u64,
            start,
            end,
            breach: report.breach.map(|b| b.to_string()),
        }
    }

    /// Dispatches the commands that operate on an existing session.
    fn with_session(&self, cmd: Command) -> Response {
        let name = match session_name(&cmd) {
            Some(n) => n.to_owned(),
            None => return err(ErrorKind::Protocol, "command carries no session"),
        };
        let Some(handle) = self.registry.get(&name) else {
            return err(ErrorKind::NoSession, format!("session {name:?} does not exist"));
        };
        let mut s = SessionRegistry::lock_session(&handle);
        match cmd {
            Command::SetTimeSlice { start, end, .. } => {
                match s.analysis.try_set_time_slice(start, end) {
                    Ok(slice) => Response::Slice { start: slice.start(), end: slice.end() },
                    Err(e) => session_error(e),
                }
            }
            Command::Collapse { container, .. } => match container_id(&s, &container) {
                Ok(id) => match s.analysis.collapse(id) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Expand { container, .. } => match container_id(&s, &container) {
                Ok(id) => match s.analysis.expand(id) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::CollapseAtDepth { depth, .. } => {
                s.analysis.collapse_at_depth(depth);
                Response::Done { revision: s.analysis.revision() }
            }
            Command::ExpandAll { .. } => {
                s.analysis.expand_all();
                Response::Done { revision: s.analysis.revision() }
            }
            Command::SetForces { repulsion, spring, damping, .. } => {
                let cfg = s.analysis.layout_config_mut();
                if let Some(r) = repulsion {
                    cfg.repulsion = r;
                }
                if let Some(k) = spring {
                    cfg.spring = k;
                }
                if let Some(d) = damping {
                    cfg.damping = d;
                }
                // The slider trust boundary: hostile values are
                // repaired, not rejected, and the effective
                // configuration is echoed back.
                *cfg = cfg.sanitized();
                Response::Forces {
                    repulsion: cfg.repulsion,
                    spring: cfg.spring,
                    damping: cfg.damping,
                }
            }
            Command::SetScaling { group, factor, .. } => {
                if !(factor.is_finite() && factor >= 0.0) {
                    return err(
                        ErrorKind::BadArgument,
                        format!("scaling factor {factor} must be finite and non-negative"),
                    );
                }
                s.analysis.scaling_mut().set_slider(group, factor);
                Response::Done { revision: s.analysis.revision() }
            }
            Command::Drag { container, x, y, .. } => match container_id(&s, &container) {
                Ok(id) => match s.analysis.drag(id, Vec2::new(x, y)) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Release { container, .. } => match container_id(&s, &container) {
                Ok(id) => match s.analysis.release(id) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Relax { steps, .. } => {
                let budget = self.registry.limits().max_relax_steps;
                let executed = s.analysis.relax(steps.min(budget) as usize) as u64;
                Response::Relaxed {
                    steps: executed,
                    frozen: s.analysis.layout_freeze_reason().map(|r| r.to_string()),
                }
            }
            Command::Aggregate { metric, group, .. } => match container_id(&s, &group) {
                Ok(id) => match s.analysis.aggregate(&metric, id) {
                    Ok(agg) => Response::Aggregated {
                        members: agg.members as u64,
                        integral: agg.integral,
                        mean: agg.summary.mean,
                        min: agg.summary.min,
                        max: agg.summary.max,
                        median: agg.summary.median,
                        quarantined: agg.quarantined,
                        empty: agg.is_empty(),
                    },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Render { width, height, theme, labels, .. } => {
                let viewport = match Viewport::try_new(width, height) {
                    Ok(vp) => vp.with_theme(theme).with_labels(labels),
                    Err(e) => return err(ErrorKind::BadViewport, e.to_string()),
                };
                let revision = s.analysis.revision();
                let key = crate::cache::FrameKey::new(revision, &viewport);
                let obs = s.analysis.recorder().is_enabled().then(|| s.analysis.recorder().clone());
                if let Some(svg) = s.frames.get(&key) {
                    if let Some(rec) = &obs {
                        rec.counter("cache.hits").inc();
                    }
                    return Response::Frame { revision, cached: true, svg };
                }
                let svg = s.analysis.render(&viewport);
                let before = s.frames.evictions();
                s.frames.insert(key, svg.clone());
                if let Some(rec) = &obs {
                    rec.counter("cache.misses").inc();
                    rec.counter("cache.evictions").add(s.frames.evictions() - before);
                }
                Response::Frame { revision, cached: false, svg }
            }
            // Session-free commands are handled by `dispatch`.
            Command::Ping
            | Command::Sessions
            | Command::CloseSession { .. }
            | Command::LoadTrace { .. }
            | Command::Stats { .. } => unreachable!("handled by dispatch"),
        }
    }

    /// Pumps `reader` to `writer`: one response line per request line,
    /// until EOF. I/O errors end the loop (the connection is gone);
    /// content never does.
    pub fn serve<R: BufRead, W: Write>(&self, reader: R, mut writer: W) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if let Some(response) = self.handle_line(&line) {
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
        }
        Ok(())
    }

    /// Serves a single analyst over stdin/stdout until EOF.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.serve(stdin.lock(), stdout.lock())
    }
}

/// The session name a command addresses, if any.
fn session_name(cmd: &Command) -> Option<&str> {
    match cmd {
        Command::Ping | Command::Sessions | Command::Stats { .. } => None,
        Command::CloseSession { session }
        | Command::LoadTrace { session, .. }
        | Command::SetTimeSlice { session, .. }
        | Command::Collapse { session, .. }
        | Command::Expand { session, .. }
        | Command::CollapseAtDepth { session, .. }
        | Command::ExpandAll { session }
        | Command::SetForces { session, .. }
        | Command::SetScaling { session, .. }
        | Command::Drag { session, .. }
        | Command::Release { session, .. }
        | Command::Relax { session, .. }
        | Command::Aggregate { session, .. }
        | Command::Render { session, .. } => Some(session),
    }
}

/// Accepts connections on `listener` from a pool of `workers` threads,
/// each serving one connection at a time with [`Server::serve`]. All
/// workers share the server (and thus its sessions): two analysts can
/// connect separately and collaborate in one named session.
///
/// Returns the worker handles; the pool runs until the listener is
/// shut down externally (the handles are typically detached —
/// `serve_tcp` is the lifetime of the process).
pub fn serve_tcp(
    listener: TcpListener,
    workers: usize,
    server: Arc<Server>,
) -> Vec<JoinHandle<()>> {
    let listener = Arc::new(listener);
    (0..workers.max(1))
        .map(|i| {
            let listener = Arc::clone(&listener);
            let server = Arc::clone(&server);
            thread::Builder::new()
                .name(format!("viva-server-worker-{i}"))
                .spawn(move || {
                    // Accept errors (e.g. the listener was closed) end
                    // this worker.
                    while let Ok((stream, _addr)) = listener.accept() {
                        serve_stream(&server, stream);
                    }
                })
                .expect("spawn worker thread")
        })
        .collect()
}

fn serve_stream(server: &Server, stream: TcpStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    // A dying connection is that connection's problem only.
    let _ = server.serve(reader, stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    /// The canonical two-cluster test trace, as CSV for `load_trace`.
    fn trace_csv() -> String {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        let bw = b.metric("bandwidth", "Mbit/s");
        for cn in ["c1", "c2"] {
            let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
            for i in 0..2 {
                let h = b
                    .new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host)
                    .unwrap();
                b.set_variable(0.0, h, power, 100.0).unwrap();
                b.set_variable(0.0, h, used, 60.0).unwrap();
            }
        }
        let bb = b.new_container(b.root(), "bb", ContainerKind::Link).unwrap();
        b.set_variable(0.0, bb, bw, 1000.0).unwrap();
        viva_trace::export::to_csv(&b.finish(10.0))
    }

    fn server() -> Server {
        Server::new(ServerLimits::default())
    }

    fn load(s: &Server, session: &str) {
        let r = s.execute(Command::LoadTrace {
            session: session.into(),
            mode: viva_trace::RecoveryMode::Strict,
            text: trace_csv(),
        });
        assert!(matches!(r, Response::Loaded { .. }), "{r:?}");
    }

    #[test]
    fn full_interactive_loop_over_the_protocol() {
        let s = server();
        load(&s, "a");
        // Slice (clamped to the trace extent).
        let r = s.execute(Command::SetTimeSlice { session: "a".into(), start: 2.0, end: 99.0 });
        assert_eq!(r, Response::Slice { start: 2.0, end: 10.0 });
        // Collapse + aggregate.
        let r = s.execute(Command::Collapse { session: "a".into(), container: "c1".into() });
        assert!(matches!(r, Response::Done { .. }));
        let r = s.execute(Command::Aggregate {
            session: "a".into(),
            metric: "power_used".into(),
            group: "c1".into(),
        });
        match r {
            Response::Aggregated { members, integral, empty, .. } => {
                assert_eq!(members, 2);
                assert_eq!(integral, 2.0 * 60.0 * 8.0);
                assert!(!empty);
            }
            other => panic!("{other:?}"),
        }
        // Sliders sanitize.
        let r = s.execute(Command::SetForces {
            session: "a".into(),
            repulsion: Some(f64::NAN),
            spring: Some(-5.0),
            damping: Some(7.0),
        });
        assert_eq!(r, Response::Forces { repulsion: 100.0, spring: 0.0, damping: 1.0 });
        // Drag visible, drag hidden.
        let r = s.execute(Command::Drag {
            session: "a".into(),
            container: "c1".into(),
            x: 5.0,
            y: 5.0,
        });
        assert!(matches!(r, Response::Done { .. }));
        let r = s.execute(Command::Drag {
            session: "a".into(),
            container: "c1-h0".into(),
            x: 1.0,
            y: 1.0,
        });
        assert!(
            matches!(r, Response::Error { kind: ErrorKind::HiddenContainer, .. }),
            "{r:?}"
        );
        // Relax, then render.
        let r = s.execute(Command::Relax { session: "a".into(), steps: 50 });
        match r {
            Response::Relaxed { steps, frozen } => {
                assert!(steps > 0);
                assert_eq!(frozen, None);
            }
            other => panic!("{other:?}"),
        }
        let r = s.execute(Command::Render {
            session: "a".into(),
            width: 640.0,
            height: 480.0,
            theme: viva::Theme::Dark,
            labels: true,
        });
        match r {
            Response::Frame { cached, svg, .. } => {
                assert!(!cached);
                assert!(svg.starts_with("<svg"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_cache_serves_repeat_renders_and_invalidates_on_change() {
        let s = server();
        load(&s, "a");
        let render = |w: f64| {
            s.execute(Command::Render {
                session: "a".into(),
                width: w,
                height: 480.0,
                theme: viva::Theme::Light,
                labels: false,
            })
        };
        let (first, second) = (render(640.0), render(640.0));
        match (&first, &second) {
            (
                Response::Frame { cached: c1, svg: s1, revision: r1 },
                Response::Frame { cached: c2, svg: s2, revision: r2 },
            ) => {
                assert!(!c1 && *c2, "second render is a cache hit");
                assert_eq!(s1, s2);
                assert_eq!(r1, r2);
            }
            other => panic!("{other:?}"),
        }
        // A different viewport misses; the original still hits.
        assert!(matches!(render(800.0), Response::Frame { cached: false, .. }));
        assert!(matches!(render(640.0), Response::Frame { cached: true, .. }));
        // A state change invalidates (new revision, fresh render); the
        // session's aggregation cache makes this cheap, not free.
        s.execute(Command::SetForces {
            session: "a".into(),
            repulsion: Some(150.0),
            spring: None,
            damping: None,
        });
        assert!(matches!(render(640.0), Response::Frame { cached: false, .. }));
    }

    fn counter(block: &StatsBlock, name: &str) -> Option<u64> {
        block.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    #[test]
    fn stats_surfaces_command_counts_and_cache_behaviour() {
        let s = Server::with_metrics(ServerLimits::default());
        load(&s, "a");
        let render = |w: f64| {
            s.execute(Command::Render {
                session: "a".into(),
                width: w,
                height: 480.0,
                theme: viva::Theme::Light,
                labels: false,
            })
        };
        assert!(matches!(render(640.0), Response::Frame { cached: false, .. }));
        assert!(matches!(render(640.0), Response::Frame { cached: true, .. }));
        // A viewport-only change misses; the original still hits.
        assert!(matches!(render(800.0), Response::Frame { cached: false, .. }));
        assert!(matches!(render(640.0), Response::Frame { cached: true, .. }));
        match s.execute(Command::Stats { session: Some("a".into()) }) {
            Response::Stats { sessions, server, session } => {
                assert_eq!(sessions, 1);
                assert_eq!(counter(&server, "server.cmd.render"), Some(4));
                assert_eq!(counter(&server, "server.cmd.load_trace"), Some(1));
                assert_eq!(counter(&server, "server.cmd.stats"), Some(1), "counts itself");
                assert_eq!(
                    server.gauges.iter().find(|(n, _)| n == "server.sessions").map(|(_, v)| *v),
                    Some(1.0)
                );
                // Per-command latency histograms carry one sample per
                // completed command (the in-flight stats span is open).
                assert_eq!(
                    server.histograms.iter().find(|(n, _)| n == "server.cmd.render.seconds"),
                    Some(&("server.cmd.render.seconds".to_owned(), 4))
                );
                let sess = session.expect("session stats");
                assert_eq!((sess.name.as_str(), sess.frozen), ("a", None));
                assert_eq!(counter(&sess.stats, "cache.hits"), Some(2));
                assert_eq!(counter(&sess.stats, "cache.misses"), Some(2));
                // The loader reported into the same session recorder.
                assert_eq!(counter(&sess.stats, "trace.loads"), Some(1));
            }
            other => panic!("{other:?}"),
        }
        // Unknown session name is the usual typed error.
        assert!(matches!(
            s.execute(Command::Stats { session: Some("ghost".into()) }),
            Response::Error { kind: ErrorKind::NoSession, .. }
        ));
        // A metrics-off server answers stats too — with empty blocks.
        let off = server();
        match off.execute(Command::Stats { session: None }) {
            Response::Stats { sessions: 0, server, session: None } => {
                assert!(server.counters.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_cache_evictions_surface_in_session_stats() {
        let s = Server::with_metrics(ServerLimits {
            frame_cache_frames: 2,
            ..ServerLimits::default()
        });
        load(&s, "a");
        for w in [100.0, 200.0, 300.0] {
            let r = s.execute(Command::Render {
                session: "a".into(),
                width: w,
                height: 480.0,
                theme: viva::Theme::Light,
                labels: false,
            });
            assert!(matches!(r, Response::Frame { cached: false, .. }));
        }
        match s.execute(Command::Stats { session: Some("a".into()) }) {
            Response::Stats { session: Some(sess), .. } => {
                assert_eq!(counter(&sess.stats, "cache.misses"), Some(3));
                assert_eq!(counter(&sess.stats, "cache.evictions"), Some(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_do_not_change_any_response_byte() {
        let script: Vec<Command> = vec![
            Command::LoadTrace {
                session: "a".into(),
                mode: viva_trace::RecoveryMode::Strict,
                text: trace_csv(),
            },
            Command::SetTimeSlice { session: "a".into(), start: 1.0, end: 9.0 },
            Command::Collapse { session: "a".into(), container: "c1".into() },
            Command::Relax { session: "a".into(), steps: 30 },
            Command::Render {
                session: "a".into(),
                width: 640.0,
                height: 480.0,
                theme: viva::Theme::Dark,
                labels: true,
            },
            Command::Render {
                session: "a".into(),
                width: 640.0,
                height: 480.0,
                theme: viva::Theme::Dark,
                labels: true,
            },
            Command::Sessions,
        ];
        let plain = server();
        let observed = Server::with_metrics(ServerLimits::default());
        for cmd in script {
            let a = plain.execute(cmd.clone()).encode();
            let b = observed.execute(cmd).encode();
            assert_eq!(a, b, "metrics perturbed a response");
        }
    }

    #[test]
    fn typed_errors_for_every_failure_shape() {
        let s = server();
        // No session yet.
        let r = s.execute(Command::Relax { session: "nope".into(), steps: 1 });
        assert!(matches!(r, Response::Error { kind: ErrorKind::NoSession, .. }));
        load(&s, "a");
        let cases: Vec<(Command, ErrorKind)> = vec![
            (
                Command::Collapse { session: "a".into(), container: "ghost".into() },
                ErrorKind::UnknownContainer,
            ),
            (
                Command::Aggregate {
                    session: "a".into(),
                    metric: "no_such".into(),
                    group: "c1".into(),
                },
                ErrorKind::UnknownMetric,
            ),
            (
                Command::SetTimeSlice { session: "a".into(), start: f64::NAN, end: 1.0 },
                ErrorKind::InvalidTimeSlice,
            ),
            (
                Command::Drag {
                    session: "a".into(),
                    container: "c1-h0".into(),
                    x: f64::INFINITY,
                    y: 0.0,
                },
                ErrorKind::NonFinitePosition,
            ),
            (
                Command::Render {
                    session: "a".into(),
                    width: -1.0,
                    height: 480.0,
                    theme: viva::Theme::Light,
                    labels: false,
                },
                ErrorKind::BadViewport,
            ),
            (
                Command::SetScaling {
                    session: "a".into(),
                    group: "power".into(),
                    factor: f64::NAN,
                },
                ErrorKind::BadArgument,
            ),
            (
                Command::CloseSession { session: "ghost".into() },
                ErrorKind::NoSession,
            ),
        ];
        for (cmd, want) in cases {
            match s.execute(cmd.clone()) {
                Response::Error { kind, .. } => assert_eq!(kind, want, "{cmd:?}"),
                other => panic!("{cmd:?} -> {other:?}"),
            }
        }
        // Wire-level failures that never reach `execute` are typed too.
        let bad_theme = s
            .handle_line(r#"{"cmd":"render","session":"a","width":8,"height":6,"theme":"mauve","labels":false}"#)
            .expect("a response");
        assert!(bad_theme.starts_with(r#"{"err":"bad_theme""#), "{bad_theme}");
        // The session survived all of it.
        assert!(matches!(
            s.execute(Command::Relax { session: "a".into(), steps: 1 }),
            Response::Relaxed { .. }
        ));
    }

    #[test]
    fn lenient_upload_of_damaged_trace_degrades() {
        let s = server();
        let text = format!("{}garbage line\nvar,3.0,1,0,NaN\n", trace_csv());
        let r = s.execute(Command::LoadTrace {
            session: "dmg".into(),
            mode: viva_trace::RecoveryMode::Lenient,
            text,
        });
        match r {
            Response::Loaded { dropped, quarantined, .. } => {
                assert!(dropped >= 2, "garbage + NaN dropped, got {dropped}");
                assert_eq!(quarantined, 1);
            }
            other => panic!("{other:?}"),
        }
        // Strict mode refuses the same upload with a typed error.
        let text = format!("{}garbage line\n", trace_csv());
        let r = s.execute(Command::LoadTrace {
            session: "dmg2".into(),
            mode: viva_trace::RecoveryMode::Strict,
            text,
        });
        assert!(
            matches!(r, Response::Error { kind: ErrorKind::ParseTrace, .. }),
            "{r:?}"
        );
        assert!(s.registry().get("dmg2").is_none(), "failed load creates no session");
    }

    #[test]
    fn handle_line_one_response_per_request() {
        let s = server();
        assert_eq!(s.handle_line(""), None);
        assert_eq!(s.handle_line("   "), None);
        assert_eq!(s.handle_line(r#"{"cmd":"ping"}"#), Some(r#"{"ok":"pong"}"#.to_owned()));
        let bad = s.handle_line("not json").unwrap();
        assert!(bad.starts_with(r#"{"err":"protocol""#), "{bad}");
        let unknown = s.handle_line(r#"{"cmd":"frobnicate"}"#).unwrap();
        assert!(unknown.starts_with(r#"{"err":"unknown_command""#), "{unknown}");
    }

    #[test]
    fn oversized_request_line_is_rejected_not_processed() {
        let s = Server::new(ServerLimits { max_line_bytes: 64, ..ServerLimits::default() });
        let huge = format!(r#"{{"cmd":"ping","pad":"{}"}}"#, "x".repeat(1000));
        let r = s.handle_line(&huge).unwrap();
        assert!(r.starts_with(r#"{"err":"protocol""#), "{r}");
    }

    #[test]
    fn tcp_round_trip_with_worker_pool() {
        use std::io::{BufRead, BufReader, Write};
        let server = Arc::new(server());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _workers = serve_tcp(listener, 2, Arc::clone(&server));
        // Two concurrent connections, each its own session.
        let clients: Vec<_> = (0..2)
            .map(|i| {
                let csv = trace_csv();
                thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut send = |cmd: &Command| {
                        stream
                            .write_all(format!("{}\n", cmd.encode()).as_bytes())
                            .unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        Response::decode(line.trim_end()).unwrap()
                    };
                    let session = format!("tcp-{i}");
                    let r = send(&Command::LoadTrace {
                        session: session.clone(),
                        mode: viva_trace::RecoveryMode::Strict,
                        text: csv,
                    });
                    assert!(matches!(r, Response::Loaded { .. }));
                    let r = send(&Command::Render {
                        session,
                        width: 320.0,
                        height: 240.0,
                        theme: viva::Theme::Light,
                        labels: false,
                    });
                    assert!(matches!(r, Response::Frame { .. }));
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.registry().len(), 2);
    }
}
