//! The serving loop: NDJSON over stdio or TCP.
//!
//! A [`Server`] owns a [`SessionRegistry`] and turns request lines
//! into response lines — one in, one out, in order. The same
//! [`Server::handle_line`] drives every transport:
//!
//! * [`Server::serve`] pumps any `BufRead`/`Write` pair — the stdio
//!   single-analyst mode;
//! * [`serve_tcp`] runs an **event-driven readiness loop** over
//!   non-blocking sockets (std-only — `set_nonblocking` plus a
//!   sleep-backed poll shim, no external dependencies): `workers`
//!   shard threads each own a set of connections with per-connection
//!   read/write buffers, so one shard multiplexes hundreds of
//!   connections and one syscall round drains every complete NDJSON
//!   frame a pipelining client has batched.
//!
//! Responses are deterministic: a fresh server given the same command
//! script produces byte-identical output, including the `cached`
//! flags of frame responses (the caches run on logical clocks).
//! The transport never changes a byte — stdio and TCP replay the
//! same golden transcripts.
//!
//! # Resilience
//!
//! The serving layer is **crash-only** (DESIGN.md §14): it prefers a
//! deterministic refusal now over an unbounded queue later, and it can
//! rebuild any session from a checkpoint.
//!
//! * **Admission control** — at most
//!   [`ServerLimits::max_inflight_commands`] commands run at once and
//!   at most [`ServerLimits::max_session_waiters`] connections wait on
//!   one session's lock; beyond either, commands are *shed* with the
//!   typed `overloaded` error (and a `retry_after_ms` hint) before any
//!   work starts.
//! * **Deadlines** — each command class can carry a wall-clock budget
//!   ([`crate::registry::DeadlineBudgets`], opt-in); a breach returns
//!   the typed `deadline_exceeded` error and leaves the session at its
//!   last consistent revision.
//! * **Checkpoint/restore** — `checkpoint` snapshots a session
//!   ([`SessionCheckpoint`]); `restore` rebuilds one with
//!   byte-identical renders. LRU victims and drains are checkpointed
//!   to [`ServerLimits::checkpoint_dir`] when configured.
//! * **Drain** — `shutdown` checkpoints live sessions, refuses new
//!   connections and state-changing commands with `overloaded`, lets
//!   in-flight commands finish, and winds the accept loops down.

use std::fs;
use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use viva::{AnalysisSession, SessionError, Viewport};
use viva_agg::AggIndex;
use viva_layout::Vec2;
use viva_obs::Recorder;
use viva_trace::{ContainerId, TraceError, TraceLoader};

use crate::checkpoint::{checkpoint_file_name, SessionCheckpoint};
use crate::protocol::{Command, ErrorKind, Response, SessionStats, StatsBlock};
use crate::registry::{ServerLimits, ServerSession, SessionRegistry, SessionSlot};
use crate::store::{content_hash, hash_token, StoredTrace, TraceStore};

/// Layout iterations run between deadline checks when a `relax` budget
/// is configured. Small enough to bound overshoot, large enough that
/// the `Instant` read stays off the per-step hot path.
const RELAX_DEADLINE_CHUNK: usize = 64;

/// A protocol server over a session registry. Cheap to share:
/// transports hold it behind an [`Arc`].
///
/// With [`Server::with_metrics`] the server carries an enabled
/// [`Recorder`] of its own (per-command counters and latency
/// histograms, registry occupancy) and hands every new session an
/// enabled recorder of *its* own, threaded through the trace loader,
/// aggregation index, layout engine, and frame cache. [`Server::new`]
/// leaves both disabled — the metrics-off hot path is the original
/// uninstrumented code.
#[derive(Debug)]
pub struct Server {
    registry: SessionRegistry,
    /// Named, content-hashed shared traces: `load_trace` registers,
    /// `attach` shares, `restore` re-links by hash.
    store: TraceStore,
    recorder: Recorder,
    /// Commands currently executing (admission-control gauge).
    inflight: AtomicUsize,
    /// Set once by `shutdown`; never cleared. Everything that checks it
    /// degrades to refusal, so a draining server quiesces instead of
    /// wedging.
    draining: AtomicBool,
}

/// One command's wall-clock budget. With no budget the deadline never
/// reads the clock and never expires — the default configuration stays
/// wall-clock-free, which is what keeps golden transcripts exact. A
/// zero budget is expired *a priori* (also without a clock read), the
/// deterministic breach tests rely on.
struct Deadline {
    budget_ms: Option<u64>,
    started: Option<Instant>,
}

impl Deadline {
    fn start(budget_ms: Option<u64>) -> Deadline {
        let started = match budget_ms {
            Some(ms) if ms > 0 => Some(Instant::now()),
            _ => None,
        };
        Deadline { budget_ms, started }
    }

    fn expired(&self) -> bool {
        match (self.budget_ms, self.started) {
            (None, _) => false,
            (Some(0), _) => true,
            (Some(ms), Some(t0)) => t0.elapsed() >= Duration::from_millis(ms),
            (Some(_), None) => true,
        }
    }
}

/// RAII admission permit: holds one in-flight slot for the duration of
/// a command, released even when the handler panics.
struct InflightPermit<'a>(&'a AtomicUsize);

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error { kind, message: message.into() }
}

/// Maps a session-layer failure onto the wire.
fn session_error(e: SessionError) -> Response {
    let kind = match &e {
        SessionError::UnknownContainer(_) => ErrorKind::UnknownContainer,
        SessionError::HiddenContainer(_) => ErrorKind::HiddenContainer,
        SessionError::UnknownMetric(_) => ErrorKind::UnknownMetric,
        SessionError::InvalidTimeSlice(_) => ErrorKind::InvalidTimeSlice,
        SessionError::NonFinitePosition { .. } => ErrorKind::NonFinitePosition,
    };
    err(kind, e.to_string())
}

/// Resolves a container *name* against the session's trace. Names are
/// the protocol's container handle; ids are an in-process detail.
fn container_id(s: &ServerSession, name: &str) -> Result<ContainerId, Response> {
    s.analysis
        .trace()
        .containers()
        .by_name(name)
        .map(|c| c.id())
        .ok_or_else(|| {
            err(ErrorKind::UnknownContainer, format!("container {name:?} does not exist"))
        })
}

impl Server {
    /// A server with the given limits, no sessions, and metrics off.
    pub fn new(limits: ServerLimits) -> Server {
        Server {
            registry: SessionRegistry::new(limits),
            store: TraceStore::new(),
            recorder: Recorder::disabled(),
            inflight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// A server with observability on: server-scope command metrics,
    /// plus a per-session recorder wired through every layer of each
    /// session created from here on. Metrics never reach a response
    /// except through the `stats` command's deterministic subset, so
    /// transcripts stay byte-identical to a metrics-off server's.
    pub fn with_metrics(limits: ServerLimits) -> Server {
        Server {
            registry: SessionRegistry::new(limits),
            store: TraceStore::new(),
            recorder: Recorder::enabled(),
            inflight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// The underlying registry (tests and embedding).
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// The shared-trace store (tests and embedding).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The server-scope recorder (disabled unless built by
    /// [`Server::with_metrics`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Whether a graceful drain has started ([`Command::Shutdown`]).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Bumps a server-scope counter when metrics are on.
    fn note(&self, counter: &str) {
        if self.recorder.is_enabled() {
            self.recorder.counter(counter).inc();
        }
    }

    /// The typed shed response: `overloaded` + back-off hint. Counted
    /// under `server.shed`; the work was never started.
    fn shed(&self, message: impl Into<String>) -> Response {
        self.note("server.shed");
        err(
            ErrorKind::Overloaded {
                retry_after_ms: self.registry.limits().overload_retry_after_ms,
            },
            message,
        )
    }

    /// The typed deadline-breach response. Counted under
    /// `server.deadline_exceeded`.
    fn deadline_exceeded(&self, what: &str, detail: &str) -> Response {
        self.note("server.deadline_exceeded");
        if self.recorder.is_enabled() {
            self.recorder.event("server.deadline_exceeded", what);
        }
        err(ErrorKind::DeadlineExceeded, format!("{what} exceeded its deadline budget: {detail}"))
    }

    /// The global admission gate: reserves one in-flight slot or sheds.
    fn admit(&self) -> Result<InflightPermit<'_>, Response> {
        let max = self.registry.limits().max_inflight_commands;
        let prev = self.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= max {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(self.shed(format!(
                "{prev} commands already in flight (limit {max}); retry later"
            )));
        }
        Ok(InflightPermit(&self.inflight))
    }

    /// The per-session admission gate: takes the session lock, but
    /// refuses to become more than the `max_session_waiters`-th waiter
    /// — a convoy behind one slow command on a hot session must not
    /// absorb every worker thread.
    fn lock_admitted<'a>(
        &self,
        slot: &'a Arc<SessionSlot>,
    ) -> Result<MutexGuard<'a, ServerSession>, Response> {
        if let Some(g) = slot.try_lock() {
            return Ok(g);
        }
        let max = self.registry.limits().max_session_waiters;
        let prev = slot.waiters().fetch_add(1, Ordering::SeqCst);
        if prev >= max {
            slot.waiters().fetch_sub(1, Ordering::SeqCst);
            return Err(self.shed(format!(
                "session busy with {prev} commands already waiting (limit {max}); retry later"
            )));
        }
        let g = slot.lock();
        slot.waiters().fetch_sub(1, Ordering::SeqCst);
        Ok(g)
    }

    /// Handles one raw request line. Returns `None` for blank lines
    /// (they produce no response), otherwise exactly one encoded
    /// response line (without trailing newline).
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return None;
        }
        if trimmed.len() > self.registry.limits().max_line_bytes {
            return Some(
                err(
                    ErrorKind::Protocol,
                    format!(
                        "request line of {} bytes exceeds the {}-byte limit",
                        trimmed.len(),
                        self.registry.limits().max_line_bytes
                    ),
                )
                .encode(),
            );
        }
        let encoded = match Command::decode(trimmed) {
            Ok(cmd) => {
                // Encode while the admission permit is still held:
                // serializing a megabyte frame is real CPU, and work
                // the gate does not cover would overlap admitted
                // commands and erode their latency under overload.
                let (response, permit) = self.execute_gated(cmd);
                let encoded = response.encode();
                drop(permit);
                encoded
            }
            Err(e) => {
                let kind = if e.message.starts_with("unknown command") {
                    ErrorKind::UnknownCommand
                } else if e.message.starts_with("bad theme") {
                    ErrorKind::BadTheme
                } else {
                    ErrorKind::Protocol
                };
                err(kind, e.message).encode()
            }
        };
        Some(encoded)
    }

    /// Executes one decoded command behind the resilience gates:
    /// drain refusal, then global admission, then the per-command
    /// deadline. Per-command counters and latency histograms are
    /// tallied when metrics are on (the span's wall-clock duration
    /// stays in the recorder — it never reaches a response). Shed
    /// commands are counted under `server.shed` only: no work of
    /// theirs ever started.
    pub fn execute(&self, cmd: Command) -> Response {
        self.execute_gated(cmd).0
    }

    /// [`Server::execute`], but the admission permit (when one was
    /// granted) is returned alive so [`Server::handle_line`] can keep
    /// the gate closed while it encodes the response.
    fn execute_gated(&self, cmd: Command) -> (Response, Option<InflightPermit<'_>>) {
        if self.is_draining() && !drain_exempt(&cmd) {
            let resp = self.shed(format!(
                "server is draining; command \"{}\" refused",
                cmd.name()
            ));
            return (resp, None);
        }
        // `shutdown` bypasses admission: a drain must be possible on an
        // overloaded server — that is when it is most needed.
        let permit = if matches!(cmd, Command::Shutdown) {
            None
        } else {
            match self.admit() {
                Ok(p) => Some(p),
                Err(resp) => return (resp, None),
            }
        };
        let _span = self.recorder.is_enabled().then(|| {
            let name = cmd.name();
            self.recorder.counter(&format!("server.cmd.{name}")).inc();
            self.recorder.span(&format!("server.cmd.{name}.seconds"))
        });
        let deadline = Deadline::start(self.registry.limits().deadlines.budget_for(cmd.class()));
        if deadline.expired() {
            // Only reachable with a zero budget: already out of time
            // before any work (the deterministic breach used by tests).
            return (self.deadline_exceeded(cmd.name(), "the budget is zero"), permit);
        }
        (self.dispatch(cmd, &deadline), permit)
    }

    fn dispatch(&self, cmd: Command, deadline: &Deadline) -> Response {
        match cmd {
            Command::Ping => Response::Pong,
            Command::Sessions => Response::SessionList { names: self.registry.names() },
            Command::CloseSession { session } => {
                if self.registry.close(&session) {
                    self.update_occupancy();
                    Response::Closed { session }
                } else {
                    err(ErrorKind::NoSession, format!("session {session:?} does not exist"))
                }
            }
            Command::LoadTrace { session, mode, text, trace } => {
                self.load_trace(session, mode, &text, trace, deadline)
            }
            Command::Attach { session, trace } => self.attach(session, &trace, deadline),
            Command::ListTraces => Response::TraceList { traces: self.store.list() },
            Command::DropTrace { trace } => {
                if self.store.remove(&trace) {
                    Response::TraceDropped { trace }
                } else {
                    err(ErrorKind::NoTrace, format!("trace {trace:?} is not loaded"))
                }
            }
            Command::Stats { session } => self.stats(session),
            Command::Restore { session, state } => {
                self.restore(session, state.map(|b| *b), deadline)
            }
            Command::Shutdown => self.shutdown(),
            cmd => self.with_session(cmd, deadline),
        }
    }

    /// Mirrors registry occupancy into the `server.sessions` gauge.
    fn update_occupancy(&self) {
        if self.recorder.is_enabled() {
            self.recorder.gauge("server.sessions").set(self.registry.len() as f64);
        }
    }

    /// Answers `stats`: the server's deterministic metric subset, plus
    /// one session's when named. Session lookup goes through
    /// [`SessionRegistry::peek`] so observing never perturbs LRU state.
    fn stats(&self, session: Option<String>) -> Response {
        let server = Box::new(StatsBlock::from_snapshot(&self.recorder.snapshot()));
        let session = match session {
            None => None,
            Some(name) => {
                let Some(handle) = self.registry.peek(&name) else {
                    return err(ErrorKind::NoSession, format!("session {name:?} does not exist"));
                };
                let s = SessionRegistry::lock_session(&handle);
                Some(Box::new(SessionStats {
                    name,
                    revision: s.analysis.revision(),
                    frozen: s.analysis.layout_freeze_reason().map(|r| r.token().to_owned()),
                    stats: StatsBlock::from_snapshot(&s.analysis.recorder().snapshot()),
                }))
            }
        };
        Response::Stats { sessions: self.registry.len() as u64, server, session }
    }

    /// The per-session recorder handed to every new session: enabled
    /// iff the server itself carries metrics.
    fn session_recorder(&self) -> Recorder {
        if self.recorder.is_enabled() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    fn load_trace(
        &self,
        session: String,
        mode: viva_trace::RecoveryMode,
        text: &str,
        trace_name: Option<String>,
        deadline: &Deadline,
    ) -> Response {
        // A metrics-on server gives each session its own recorder,
        // shared by the loader, index, layout, and frame-cache
        // counters — `stats` reads it back per session.
        let session_recorder = self.session_recorder();
        let loader = TraceLoader::new()
            .mode(mode)
            .budget(self.registry.limits().load_budget)
            .recorder(session_recorder.clone());
        let report = match loader.load_str(text) {
            Ok(report) => report,
            Err(TraceError::BudgetExceeded(breach)) => {
                return err(ErrorKind::BudgetExceeded, breach.to_string())
            }
            Err(e) => return err(ErrorKind::ParseTrace, e.to_string()),
        };
        // Parse and index are paid exactly once, here; the session and
        // every later `attach` share the results through `Arc`s.
        let trace = Arc::new(report.trace.clone());
        let index = Arc::new(AggIndex::build_observed(&trace, &session_recorder));
        let analysis = AnalysisSession::builder(Arc::clone(&trace))
            .shared_index(Arc::clone(&index))
            .recorder(session_recorder)
            .build();
        if deadline.expired() {
            // Checked before the registry insert so a breached load
            // leaves no half-made session behind.
            return self.deadline_exceeded("load_trace", "no session was created");
        }
        let containers = analysis.trace().containers().len() as u64;
        let (start, end) = (analysis.trace().start(), analysis.trace().end());
        // Eviction is deterministic for a given script; the victims'
        // owners find out through a typed `no_session` error on their
        // next command. With a checkpoint directory configured the
        // victims' state survives for `restore`.
        let evicted = self.registry.create(&session, analysis);
        self.checkpoint_evicted(evicted);
        self.update_occupancy();
        // Register into the store (under the explicit name, or the
        // session's) so `attach` and hash re-links can find it.
        let store_name = trace_name.unwrap_or_else(|| session.clone());
        let hash = content_hash(viva_trace::export::to_csv(&trace).as_bytes());
        self.store.insert(
            &store_name,
            StoredTrace {
                trace,
                index: Some(index),
                hash,
                events: report.events as u64,
            },
        );
        Response::Loaded {
            session,
            containers,
            events: report.events as u64,
            dropped: report.dropped as u64,
            quarantined: report.quarantined as u64,
            start,
            end,
            breach: report.breach.map(|b| b.to_string()),
        }
    }

    /// Creates (or replaces) `session` over a stored trace: two `Arc`
    /// clones instead of a parse and an index build. This is what makes
    /// a thousand sessions over one trace cost one trace.
    fn attach(&self, session: String, trace_name: &str, deadline: &Deadline) -> Response {
        let Some(stored) = self.store.get(trace_name) else {
            return err(ErrorKind::NoTrace, format!("trace {trace_name:?} is not loaded"));
        };
        let mut builder = AnalysisSession::builder(Arc::clone(&stored.trace))
            .recorder(self.session_recorder());
        if let Some(index) = &stored.index {
            builder = builder.shared_index(Arc::clone(index));
        }
        let analysis = builder.build();
        if deadline.expired() {
            return self.deadline_exceeded("attach", "no session was created");
        }
        let containers = analysis.trace().containers().len() as u64;
        let (start, end) = (analysis.trace().start(), analysis.trace().end());
        let evicted = self.registry.create(&session, analysis);
        self.checkpoint_evicted(evicted);
        self.update_occupancy();
        self.note("server.attaches");
        Response::Attached {
            session,
            trace: trace_name.to_owned(),
            containers,
            events: stored.events,
            start,
            end,
        }
    }

    /// Rebuilds `session` from an inline checkpoint, or from the
    /// checkpoint directory when none is supplied.
    fn restore(
        &self,
        session: String,
        state: Option<SessionCheckpoint>,
        deadline: &Deadline,
    ) -> Response {
        let ckpt = match state {
            Some(c) => c,
            None => {
                let Some(dir) = &self.registry.limits().checkpoint_dir else {
                    return err(
                        ErrorKind::BadCheckpoint,
                        "no inline state, and the server has no checkpoint directory",
                    );
                };
                let Some(file) = checkpoint_file_name(&session) else {
                    return err(
                        ErrorKind::BadCheckpoint,
                        format!("session name {session:?} cannot name a checkpoint file"),
                    );
                };
                let text = match fs::read_to_string(dir.join(file)) {
                    Ok(t) => t,
                    Err(e) => {
                        return err(
                            ErrorKind::BadCheckpoint,
                            format!("no stored checkpoint for session {session:?}: {e}"),
                        )
                    }
                };
                match SessionCheckpoint::decode(text.trim_end()) {
                    Ok(c) => c,
                    Err(e) => {
                        return err(
                            ErrorKind::BadCheckpoint,
                            format!("stored checkpoint for session {session:?} is unreadable: {e}"),
                        )
                    }
                }
            }
        };
        let session_recorder = self.session_recorder();
        // Prefer re-linking to a stored trace with the same content
        // hash: the restored session then shares the `Arc<Trace>` and
        // index instead of re-parsing the embedded CSV. Only clean
        // checkpoints are eligible (quarantine counters are per-trace
        // state a shared trace cannot carry), and the checkpoint's
        // claimed hash must match its own CSV — a tampered checkpoint
        // must fail the same way on both paths.
        let shared = if ckpt.quarantined.is_empty() && ckpt.ingest_dropped == 0 {
            let found = content_hash(ckpt.trace_csv.as_bytes());
            if hash_token(found) == ckpt.trace_hash {
                self.store.find_by_hash(found)
            } else {
                None
            }
        } else {
            None
        };
        let relinked = shared.and_then(|stored| {
            ckpt.restore_shared(
                Arc::clone(&stored.trace),
                stored.index.clone(),
                session_recorder.clone(),
            )
            .ok()
        });
        let analysis = match relinked {
            Some(a) => {
                self.note("server.restore_relinks");
                a
            }
            None => match ckpt.restore(self.registry.limits().load_budget, session_recorder) {
                Ok(a) => a,
                Err(e) => return err(ErrorKind::BadCheckpoint, e.to_string()),
            },
        };
        if deadline.expired() {
            return self.deadline_exceeded("restore", "no session was created");
        }
        let revision = analysis.revision();
        let evicted = self.registry.create(&session, analysis);
        self.checkpoint_evicted(evicted);
        self.update_occupancy();
        self.note("server.restores");
        Response::Restored { session, revision }
    }

    /// Starts (or re-reports) a graceful drain: checkpoint every live
    /// session, then refuse new work. Idempotent — a second `shutdown`
    /// re-checkpoints and re-answers.
    fn shutdown(&self) -> Response {
        if !self.draining.swap(true, Ordering::SeqCst) {
            self.note("server.drains");
            if self.recorder.is_enabled() {
                self.recorder.event("server.drain", "begin");
            }
        }
        let names = self.registry.names();
        let sessions = names.len() as u64;
        let mut checkpointed = 0u64;
        if self.registry.limits().checkpoint_dir.is_some() {
            for name in names {
                let Some(slot) = self.registry.peek(&name) else { continue };
                let ckpt = {
                    let s = slot.lock();
                    SessionCheckpoint::capture(&name, &s.analysis)
                };
                self.note("server.checkpoints");
                if self.persist_checkpoint(&ckpt) {
                    checkpointed += 1;
                }
            }
        }
        Response::ShutdownStarted { sessions, checkpointed }
    }

    /// Checkpoints LRU-eviction victims to the checkpoint directory
    /// (when configured) before their last handle drops.
    fn checkpoint_evicted(&self, evicted: Vec<(String, Arc<SessionSlot>)>) {
        for (name, slot) in evicted {
            self.note("server.evictions");
            if self.registry.limits().checkpoint_dir.is_some() {
                let ckpt = {
                    let s = slot.lock();
                    SessionCheckpoint::capture(&name, &s.analysis)
                };
                self.note("server.checkpoints");
                self.persist_checkpoint(&ckpt);
            }
        }
    }

    /// Writes a checkpoint to the checkpoint directory. Returns whether
    /// a file was written; persistence failures are observable (counter
    /// and event) but never fail the command — the inline checkpoint in
    /// the response is still good.
    fn persist_checkpoint(&self, ckpt: &SessionCheckpoint) -> bool {
        let Some(dir) = &self.registry.limits().checkpoint_dir else {
            return false;
        };
        let Some(file) = checkpoint_file_name(&ckpt.session) else {
            if self.recorder.is_enabled() {
                self.recorder.event("server.checkpoint_skipped", &ckpt.session);
            }
            return false;
        };
        let written = fs::create_dir_all(dir)
            .and_then(|()| fs::write(dir.join(file), format!("{}\n", ckpt.encode())))
            .is_ok();
        if !written {
            self.note("server.checkpoint_io_errors");
            if self.recorder.is_enabled() {
                self.recorder.event("server.checkpoint_io_error", &ckpt.session);
            }
        }
        written
    }

    /// Dispatches the commands that operate on an existing session.
    fn with_session(&self, cmd: Command, deadline: &Deadline) -> Response {
        let name = match session_name(&cmd) {
            Some(n) => n.to_owned(),
            None => return err(ErrorKind::Protocol, "command carries no session"),
        };
        let Some(handle) = self.registry.get(&name) else {
            return err(ErrorKind::NoSession, format!("session {name:?} does not exist"));
        };
        // Cached-render fast path: answered from the slot's frame
        // cache and revision mirror without ever taking the session
        // lock, so repeat renders on a hot session never queue behind
        // a slow command (and the registry lock was only held for the
        // name lookup above). A stale mirror can only cause a cache
        // miss — the locked path below re-checks authoritatively.
        if let Command::Render { width, height, theme, labels, .. } = &cmd {
            if let Ok(vp) = Viewport::try_new(*width, *height) {
                let viewport = vp.with_theme(*theme).with_labels(*labels);
                let revision = handle.revision();
                let key = crate::cache::FrameKey::new(revision, &viewport);
                if let Some(svg) = handle.frames().lookup(&key) {
                    if handle.recorder().is_enabled() {
                        handle.recorder().counter("cache.hits").inc();
                    }
                    return Response::Frame { revision, cached: true, svg };
                }
            }
        }
        let mut s = match self.lock_admitted(&handle) {
            Ok(g) => g,
            Err(resp) => return resp,
        };
        let response = self.session_command(&name, &handle, &mut s, cmd, deadline);
        // Publish the (possibly bumped) revision for lock-free readers
        // while the session lock is still held, so a fast-path reader
        // never sees a mirror *ahead* of the frames the cache holds.
        handle.publish_revision(s.analysis.revision());
        response
    }

    /// One session-scoped command, run under the session lock.
    fn session_command(
        &self,
        name: &str,
        handle: &Arc<SessionSlot>,
        s: &mut ServerSession,
        cmd: Command,
        deadline: &Deadline,
    ) -> Response {
        match cmd {
            Command::SetTimeSlice { start, end, .. } => {
                match s.analysis.try_set_time_slice(start, end) {
                    Ok(slice) => Response::Slice { start: slice.start(), end: slice.end() },
                    Err(e) => session_error(e),
                }
            }
            Command::Collapse { container, .. } => match container_id(s, &container) {
                Ok(id) => match s.analysis.collapse(id) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Expand { container, .. } => match container_id(s, &container) {
                Ok(id) => match s.analysis.expand(id) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::CollapseAtDepth { depth, .. } => {
                s.analysis.collapse_at_depth(depth);
                Response::Done { revision: s.analysis.revision() }
            }
            Command::ExpandAll { .. } => {
                s.analysis.expand_all();
                Response::Done { revision: s.analysis.revision() }
            }
            Command::SetForces { repulsion, spring, damping, .. } => {
                let cfg = s.analysis.layout_config_mut();
                if let Some(r) = repulsion {
                    cfg.repulsion = r;
                }
                if let Some(k) = spring {
                    cfg.spring = k;
                }
                if let Some(d) = damping {
                    cfg.damping = d;
                }
                // The slider trust boundary: hostile values are
                // repaired, not rejected, and the effective
                // configuration is echoed back.
                *cfg = cfg.sanitized();
                Response::Forces {
                    repulsion: cfg.repulsion,
                    spring: cfg.spring,
                    damping: cfg.damping,
                }
            }
            Command::SetScaling { group, factor, .. } => {
                if !(factor.is_finite() && factor >= 0.0) {
                    return err(
                        ErrorKind::BadArgument,
                        format!("scaling factor {factor} must be finite and non-negative"),
                    );
                }
                s.analysis.scaling_mut().set_slider(group, factor);
                Response::Done { revision: s.analysis.revision() }
            }
            Command::Drag { container, x, y, .. } => match container_id(s, &container) {
                Ok(id) => match s.analysis.drag(id, Vec2::new(x, y)) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Release { container, .. } => match container_id(s, &container) {
                Ok(id) => match s.analysis.release(id) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Relax { steps, .. } => {
                let budget = self.registry.limits().max_relax_steps;
                let want = steps.min(budget) as usize;
                let executed = if self.registry.limits().deadlines.relax_ms.is_some() {
                    // Chunked so the deadline is checked between
                    // batches. A breach abandons the *remaining* steps:
                    // completed chunks are ordinary relax progress and
                    // the session stays at its last consistent
                    // revision. (Chunking bumps the revision once per
                    // chunk instead of once per command, which is why
                    // it only runs when a relax deadline is opted in.)
                    let mut done = 0usize;
                    loop {
                        let left = want - done;
                        if left == 0 {
                            break;
                        }
                        if deadline.expired() {
                            return self.deadline_exceeded(
                                "relax",
                                &format!(
                                    "stopped after {done} of {want} steps; the session is at \
                                     its last consistent revision"
                                ),
                            );
                        }
                        let chunk = left.min(RELAX_DEADLINE_CHUNK);
                        let ran = s.analysis.relax(chunk);
                        done += ran;
                        if ran < chunk {
                            break; // converged or frozen
                        }
                    }
                    done
                } else {
                    s.analysis.relax(want)
                } as u64;
                Response::Relaxed {
                    steps: executed,
                    frozen: s.analysis.layout_freeze_reason().map(|r| r.to_string()),
                }
            }
            Command::Aggregate { metric, group, .. } => match container_id(s, &group) {
                Ok(id) => match s.analysis.aggregate(&metric, id) {
                    Ok(agg) => Response::Aggregated {
                        members: agg.members as u64,
                        integral: agg.integral,
                        mean: agg.summary.mean,
                        min: agg.summary.min,
                        max: agg.summary.max,
                        median: agg.summary.median,
                        quarantined: agg.quarantined,
                        empty: agg.is_empty(),
                    },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Render { width, height, theme, labels, .. } => {
                let viewport = match Viewport::try_new(width, height) {
                    Ok(vp) => vp.with_theme(theme).with_labels(labels),
                    Err(e) => return err(ErrorKind::BadViewport, e.to_string()),
                };
                let revision = s.analysis.revision();
                let key = crate::cache::FrameKey::new(revision, &viewport);
                let obs = s.analysis.recorder().is_enabled().then(|| s.analysis.recorder().clone());
                // Authoritative re-check: the lock-free probe in
                // `with_session` may have missed on a stale revision.
                if let Some(svg) = handle.frames().get(&key) {
                    if let Some(rec) = &obs {
                        rec.counter("cache.hits").inc();
                    }
                    return Response::Frame { revision, cached: true, svg };
                }
                let svg = s.analysis.render(&viewport);
                if deadline.expired() {
                    // Too late to be useful: the frame is abandoned and
                    // stays out of the cache (a cached frame must mean
                    // "served within budget").
                    return self.deadline_exceeded("render", "the frame was abandoned");
                }
                let evicted = {
                    let mut frames = handle.frames();
                    let before = frames.evictions();
                    frames.insert(key, svg.clone());
                    frames.evictions() - before
                };
                if let Some(rec) = &obs {
                    rec.counter("cache.misses").inc();
                    rec.counter("cache.evictions").add(evicted);
                }
                Response::Frame { revision, cached: false, svg }
            }
            Command::Checkpoint { .. } => {
                let ckpt = SessionCheckpoint::capture(name, &s.analysis);
                self.note("server.checkpoints");
                self.persist_checkpoint(&ckpt);
                Response::Checkpointed { session: name.to_owned(), state: Box::new(ckpt) }
            }
            // Session-free commands are handled by `dispatch`.
            Command::Ping
            | Command::Sessions
            | Command::CloseSession { .. }
            | Command::LoadTrace { .. }
            | Command::Attach { .. }
            | Command::ListTraces
            | Command::DropTrace { .. }
            | Command::Stats { .. }
            | Command::Restore { .. }
            | Command::Shutdown => unreachable!("handled by dispatch"),
        }
    }

    /// Pumps `reader` to `writer`: one response line per request line,
    /// until EOF. I/O errors end the loop (the connection is gone);
    /// content never does. Two hardening behaviours:
    ///
    /// * a **torn frame** — bytes that end without a newline (a client
    ///   that died mid-command, or trickled half a frame until the
    ///   read timeout) — is *never* executed; the connection ends and
    ///   the fragment is dropped (`server.torn_frames`);
    /// * once a **drain** starts, the loop finishes the in-flight
    ///   command, writes its response, and ends the connection.
    pub fn serve<R: BufRead, W: Write>(&self, mut reader: R, mut writer: W) -> io::Result<()> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = match reader.read_line(&mut line) {
                Ok(n) => n,
                Err(e) => {
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                        // The read timeout fired: a slow-loris peer (or
                        // a stalled one) loses its connection, not a
                        // worker thread.
                        self.note("server.io_timeouts");
                    }
                    return Err(e);
                }
            };
            if n == 0 {
                return Ok(()); // clean EOF between frames
            }
            if !line.ends_with('\n') {
                self.note("server.torn_frames");
                if self.recorder.is_enabled() {
                    self.recorder.event("server.torn_frame", "dropped");
                }
                return Ok(());
            }
            if let Some(response) = self.handle_line(&line) {
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            if self.is_draining() {
                return Ok(());
            }
        }
    }

    /// Serves a single analyst over stdin/stdout until EOF.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.serve(stdin.lock(), stdout.lock())
    }
}

/// The session name a command addresses, if any.
fn session_name(cmd: &Command) -> Option<&str> {
    match cmd {
        Command::Ping
        | Command::Sessions
        | Command::Stats { .. }
        | Command::ListTraces
        | Command::DropTrace { .. }
        | Command::Shutdown => None,
        Command::CloseSession { session }
        | Command::LoadTrace { session, .. }
        | Command::Attach { session, .. }
        | Command::SetTimeSlice { session, .. }
        | Command::Collapse { session, .. }
        | Command::Expand { session, .. }
        | Command::CollapseAtDepth { session, .. }
        | Command::ExpandAll { session }
        | Command::SetForces { session, .. }
        | Command::SetScaling { session, .. }
        | Command::Drag { session, .. }
        | Command::Release { session, .. }
        | Command::Relax { session, .. }
        | Command::Aggregate { session, .. }
        | Command::Render { session, .. }
        | Command::Checkpoint { session }
        | Command::Restore { session, .. } => Some(session),
    }
}

/// Commands still answered during a drain: liveness, observability,
/// state export, and the drain itself. Everything else is shed.
fn drain_exempt(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Ping
            | Command::Stats { .. }
            | Command::ListTraces
            | Command::Checkpoint { .. }
            | Command::Shutdown
    )
}

/// Connections one shard accepts per loop tick. Bounded so draining a
/// deep accept backlog cannot starve the shard's live connections.
const ACCEPT_BURST: usize = 64;

/// Bytes a connection's write buffer may hold before the shard stops
/// reading new requests from it — natural pipelining backpressure. A
/// peer that never reads its responses eventually trips the io
/// timeout instead of growing the buffer without bound.
const WRITE_HIGH_WATER: usize = 8 << 20;

/// One client connection owned by a shard: the non-blocking socket
/// plus its buffers and activity clock. Requests accumulate in
/// `read_buf` until a newline completes a frame; responses accumulate
/// in `write_buf` and drain as the socket accepts them — neither side
/// ever blocks the shard.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// How far `read_buf` has been scanned without finding a newline,
    /// so a large frame arriving in many chunks is scanned once.
    scan_from: usize,
    /// Last byte received (io-timeout bookkeeping).
    last_activity: Instant,
    /// Flush what we owe, then close: EOF seen, protocol violation,
    /// or drain.
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            scan_from: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
        }
    }
}

/// Serves `listener` with an event-driven readiness loop across
/// `workers` shard threads. Each shard owns a set of connections and
/// multiplexes all of them: per tick it accepts a bounded burst of new
/// sockets, flushes pending responses, drains readable sockets, and
/// executes **every complete NDJSON frame** the reads produced — so a
/// pipelining client gets many commands answered per syscall round.
/// All shards share the server (and thus its sessions and traces):
/// two analysts can connect separately and collaborate in one named
/// session.
///
/// Sockets are non-blocking throughout; readiness is emulated with a
/// short sleep when a full tick makes no progress (a std-only poll
/// shim — no external event API, same observable semantics). Once
/// [`Command::Shutdown`] runs, each shard flushes what it owes,
/// closes its connections, answers any backlog with one `overloaded`
/// line each, and exits. Joining the returned handles is therefore a
/// complete graceful shutdown.
pub fn serve_tcp(
    listener: TcpListener,
    workers: usize,
    server: Arc<Server>,
) -> Vec<JoinHandle<()>> {
    let _ = listener.set_nonblocking(true);
    let listener = Arc::new(listener);
    (0..workers.max(1))
        .map(|i| {
            let listener = Arc::clone(&listener);
            let server = Arc::clone(&server);
            thread::Builder::new()
                .name(format!("viva-server-shard-{i}"))
                .spawn(move || shard_loop(&listener, &server))
                .expect("spawn shard thread")
        })
        .collect()
}

/// One shard's readiness loop: accept, flush, read, execute — until
/// the listener dies or a drain completes.
fn shard_loop(listener: &TcpListener, server: &Server) {
    let io_timeout = server
        .registry()
        .limits()
        .io_timeout_ms
        .map(|ms| Duration::from_millis(ms.max(1)));
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    loop {
        if server.is_draining() {
            drain_shard(server, listener, &mut conns);
            return;
        }
        let mut progressed = false;
        for _ in 0..ACCEPT_BURST {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        conns.push(Conn::new(stream));
                        progressed = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // The listener is gone; drop the shard's connections.
                Err(_) => return,
            }
        }
        let mut idx = 0;
        while idx < conns.len() {
            match pump_conn(server, &mut conns[idx], &mut scratch, io_timeout) {
                (true, worked) => {
                    progressed |= worked;
                    idx += 1;
                }
                (false, worked) => {
                    progressed |= worked;
                    conns.swap_remove(idx);
                }
            }
            if server.is_draining() {
                break; // handled at the top of the loop
            }
        }
        if !progressed {
            // The poll shim: nothing readable, writable, or acceptable
            // this tick — yield the CPU briefly instead of spinning.
            thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Winds one shard down: flush every connection's pending responses
/// (briefly, best-effort — a peer that stopped reading cannot hold
/// the drain hostage), then answer the accept backlog with one typed
/// refusal each.
fn drain_shard(server: &Server, listener: &TcpListener, conns: &mut Vec<Conn>) {
    for mut conn in conns.drain(..) {
        let give_up = Instant::now() + Duration::from_millis(250);
        while !conn.write_buf.is_empty() && Instant::now() < give_up {
            match conn.stream.write(&conn.write_buf) {
                Ok(0) => break,
                Ok(n) => {
                    conn.write_buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }
    while let Ok((mut stream, _addr)) = listener.accept() {
        // Accepted after the drain began: one typed refusal, then
        // close — the client's retry logic takes it from here.
        let resp = server.shed("server is draining; connection refused");
        let _ = stream.set_nonblocking(false);
        let _ = stream.write_all(format!("{}\n", resp.encode()).as_bytes());
    }
}

/// One tick of one connection. Returns `(keep, made_progress)`.
fn pump_conn(
    server: &Server,
    conn: &mut Conn,
    scratch: &mut [u8],
    io_timeout: Option<Duration>,
) -> (bool, bool) {
    let mut worked = false;
    // Flush first: pipelined clients read while we keep working, and
    // a response from a previous tick must not wait behind new reads.
    if !flush_write(conn, &mut worked) {
        return (false, worked);
    }
    // Read until the socket runs dry — unless the peer owes us reads
    // (write high-water backpressure) or is already closing.
    let mut eof = false;
    if !conn.close_after_flush && conn.write_buf.len() < WRITE_HIGH_WATER {
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    eof = true;
                    worked = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = Instant::now();
                    worked = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return (false, true),
            }
        }
    }
    // Slow-loris defence: a peer that trickles half a frame (or stops
    // reading its responses) loses the connection, not a shard.
    if let Some(t) = io_timeout {
        if !conn.close_after_flush && !eof && conn.last_activity.elapsed() >= t {
            server.note("server.io_timeouts");
            return (false, worked);
        }
    }
    worked |= process_frames(server, conn);
    if eof && !conn.close_after_flush {
        if !conn.read_buf.is_empty() {
            // Bytes that end without a newline are a torn frame:
            // never executed, observably dropped.
            server.note("server.torn_frames");
            if server.recorder().is_enabled() {
                server.recorder().event("server.torn_frame", "dropped");
            }
            conn.read_buf.clear();
            conn.scan_from = 0;
        }
        conn.close_after_flush = true;
    }
    if !flush_write(conn, &mut worked) {
        return (false, worked);
    }
    if conn.close_after_flush && conn.write_buf.is_empty() {
        return (false, worked);
    }
    (true, worked)
}

/// Executes every complete frame batched in `read_buf` — the
/// pipelining payoff: one read syscall round, many commands answered.
fn process_frames(server: &Server, conn: &mut Conn) -> bool {
    let mut worked = false;
    let mut consumed = 0usize;
    let mut rest_has_no_newline = false;
    loop {
        let search_from = consumed.max(conn.scan_from);
        let Some(rel) = conn.read_buf[search_from..].iter().position(|&b| b == b'\n') else {
            rest_has_no_newline = true;
            break;
        };
        let end = search_from + rel;
        worked = true;
        match std::str::from_utf8(&conn.read_buf[consumed..=end]) {
            Ok(text) => {
                if let Some(response) = server.handle_line(text) {
                    conn.write_buf.extend_from_slice(response.as_bytes());
                    conn.write_buf.push(b'\n');
                }
            }
            Err(_) => {
                // Invalid UTF-8 cannot carry a protocol command; end
                // the connection (the blocking transport's read_line
                // failed the same way).
                conn.close_after_flush = true;
                consumed = end + 1;
                break;
            }
        }
        consumed = end + 1;
        if server.is_draining() {
            // The drain response is owed; the rest of the batch is
            // refused by closing, exactly like the blocking loop.
            conn.close_after_flush = true;
            break;
        }
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
    }
    conn.scan_from = if rest_has_no_newline { conn.read_buf.len() } else { 0 };
    // An unterminated fragment larger than any legal frame can never
    // complete: answer the protocol error once and close.
    let max_line = server.registry().limits().max_line_bytes;
    if rest_has_no_newline && !conn.close_after_flush && conn.read_buf.len() > max_line {
        let resp = err(
            ErrorKind::Protocol,
            format!(
                "request line of {} bytes exceeds the {}-byte limit",
                conn.read_buf.len(),
                max_line
            ),
        );
        conn.write_buf.extend_from_slice(resp.encode().as_bytes());
        conn.write_buf.push(b'\n');
        conn.read_buf.clear();
        conn.scan_from = 0;
        conn.close_after_flush = true;
        worked = true;
    }
    worked
}

/// Drains `write_buf` into the socket as far as it will go without
/// blocking. Returns `false` when the connection is dead.
fn flush_write(conn: &mut Conn, worked: &mut bool) -> bool {
    while !conn.write_buf.is_empty() {
        match conn.stream.write(&conn.write_buf) {
            Ok(0) => return false,
            Ok(n) => {
                conn.write_buf.drain(..n);
                *worked = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    /// The canonical two-cluster test trace, as CSV for `load_trace`.
    fn trace_csv() -> String {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        let bw = b.metric("bandwidth", "Mbit/s");
        for cn in ["c1", "c2"] {
            let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
            for i in 0..2 {
                let h = b
                    .new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host)
                    .unwrap();
                b.set_variable(0.0, h, power, 100.0).unwrap();
                b.set_variable(0.0, h, used, 60.0).unwrap();
            }
        }
        let bb = b.new_container(b.root(), "bb", ContainerKind::Link).unwrap();
        b.set_variable(0.0, bb, bw, 1000.0).unwrap();
        viva_trace::export::to_csv(&b.finish(10.0))
    }

    fn server() -> Server {
        Server::new(ServerLimits::default())
    }

    fn load(s: &Server, session: &str) {
        let r = s.execute(Command::LoadTrace {
            session: session.into(),
            mode: viva_trace::RecoveryMode::Strict,
            text: trace_csv(),
            trace: None,
        });
        assert!(matches!(r, Response::Loaded { .. }), "{r:?}");
    }

    #[test]
    fn full_interactive_loop_over_the_protocol() {
        let s = server();
        load(&s, "a");
        // Slice (clamped to the trace extent).
        let r = s.execute(Command::SetTimeSlice { session: "a".into(), start: 2.0, end: 99.0 });
        assert_eq!(r, Response::Slice { start: 2.0, end: 10.0 });
        // Collapse + aggregate.
        let r = s.execute(Command::Collapse { session: "a".into(), container: "c1".into() });
        assert!(matches!(r, Response::Done { .. }));
        let r = s.execute(Command::Aggregate {
            session: "a".into(),
            metric: "power_used".into(),
            group: "c1".into(),
        });
        match r {
            Response::Aggregated { members, integral, empty, .. } => {
                assert_eq!(members, 2);
                assert_eq!(integral, 2.0 * 60.0 * 8.0);
                assert!(!empty);
            }
            other => panic!("{other:?}"),
        }
        // Sliders sanitize.
        let r = s.execute(Command::SetForces {
            session: "a".into(),
            repulsion: Some(f64::NAN),
            spring: Some(-5.0),
            damping: Some(7.0),
        });
        assert_eq!(r, Response::Forces { repulsion: 100.0, spring: 0.0, damping: 1.0 });
        // Drag visible, drag hidden.
        let r = s.execute(Command::Drag {
            session: "a".into(),
            container: "c1".into(),
            x: 5.0,
            y: 5.0,
        });
        assert!(matches!(r, Response::Done { .. }));
        let r = s.execute(Command::Drag {
            session: "a".into(),
            container: "c1-h0".into(),
            x: 1.0,
            y: 1.0,
        });
        assert!(
            matches!(r, Response::Error { kind: ErrorKind::HiddenContainer, .. }),
            "{r:?}"
        );
        // Relax, then render.
        let r = s.execute(Command::Relax { session: "a".into(), steps: 50 });
        match r {
            Response::Relaxed { steps, frozen } => {
                assert!(steps > 0);
                assert_eq!(frozen, None);
            }
            other => panic!("{other:?}"),
        }
        let r = s.execute(Command::Render {
            session: "a".into(),
            width: 640.0,
            height: 480.0,
            theme: viva::Theme::Dark,
            labels: true,
        });
        match r {
            Response::Frame { cached, svg, .. } => {
                assert!(!cached);
                assert!(svg.starts_with("<svg"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_cache_serves_repeat_renders_and_invalidates_on_change() {
        let s = server();
        load(&s, "a");
        let render = |w: f64| {
            s.execute(Command::Render {
                session: "a".into(),
                width: w,
                height: 480.0,
                theme: viva::Theme::Light,
                labels: false,
            })
        };
        let (first, second) = (render(640.0), render(640.0));
        match (&first, &second) {
            (
                Response::Frame { cached: c1, svg: s1, revision: r1 },
                Response::Frame { cached: c2, svg: s2, revision: r2 },
            ) => {
                assert!(!c1 && *c2, "second render is a cache hit");
                assert_eq!(s1, s2);
                assert_eq!(r1, r2);
            }
            other => panic!("{other:?}"),
        }
        // A different viewport misses; the original still hits.
        assert!(matches!(render(800.0), Response::Frame { cached: false, .. }));
        assert!(matches!(render(640.0), Response::Frame { cached: true, .. }));
        // A state change invalidates (new revision, fresh render); the
        // session's aggregation cache makes this cheap, not free.
        s.execute(Command::SetForces {
            session: "a".into(),
            repulsion: Some(150.0),
            spring: None,
            damping: None,
        });
        assert!(matches!(render(640.0), Response::Frame { cached: false, .. }));
    }

    fn counter(block: &StatsBlock, name: &str) -> Option<u64> {
        block.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    #[test]
    fn stats_surfaces_command_counts_and_cache_behaviour() {
        let s = Server::with_metrics(ServerLimits::default());
        load(&s, "a");
        let render = |w: f64| {
            s.execute(Command::Render {
                session: "a".into(),
                width: w,
                height: 480.0,
                theme: viva::Theme::Light,
                labels: false,
            })
        };
        assert!(matches!(render(640.0), Response::Frame { cached: false, .. }));
        assert!(matches!(render(640.0), Response::Frame { cached: true, .. }));
        // A viewport-only change misses; the original still hits.
        assert!(matches!(render(800.0), Response::Frame { cached: false, .. }));
        assert!(matches!(render(640.0), Response::Frame { cached: true, .. }));
        match s.execute(Command::Stats { session: Some("a".into()) }) {
            Response::Stats { sessions, server, session } => {
                assert_eq!(sessions, 1);
                assert_eq!(counter(&server, "server.cmd.render"), Some(4));
                assert_eq!(counter(&server, "server.cmd.load_trace"), Some(1));
                assert_eq!(counter(&server, "server.cmd.stats"), Some(1), "counts itself");
                assert_eq!(
                    server.gauges.iter().find(|(n, _)| n == "server.sessions").map(|(_, v)| *v),
                    Some(1.0)
                );
                // Per-command latency histograms carry one sample per
                // completed command (the in-flight stats span is open).
                assert_eq!(
                    server.histograms.iter().find(|(n, _)| n == "server.cmd.render.seconds"),
                    Some(&("server.cmd.render.seconds".to_owned(), 4))
                );
                let sess = session.expect("session stats");
                assert_eq!((sess.name.as_str(), sess.frozen), ("a", None));
                assert_eq!(counter(&sess.stats, "cache.hits"), Some(2));
                assert_eq!(counter(&sess.stats, "cache.misses"), Some(2));
                // The loader reported into the same session recorder.
                assert_eq!(counter(&sess.stats, "trace.loads"), Some(1));
            }
            other => panic!("{other:?}"),
        }
        // Unknown session name is the usual typed error.
        assert!(matches!(
            s.execute(Command::Stats { session: Some("ghost".into()) }),
            Response::Error { kind: ErrorKind::NoSession, .. }
        ));
        // A metrics-off server answers stats too — with empty blocks.
        let off = server();
        match off.execute(Command::Stats { session: None }) {
            Response::Stats { sessions: 0, server, session: None } => {
                assert!(server.counters.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_cache_evictions_surface_in_session_stats() {
        let s = Server::with_metrics(ServerLimits {
            frame_cache_frames: 2,
            ..ServerLimits::default()
        });
        load(&s, "a");
        for w in [100.0, 200.0, 300.0] {
            let r = s.execute(Command::Render {
                session: "a".into(),
                width: w,
                height: 480.0,
                theme: viva::Theme::Light,
                labels: false,
            });
            assert!(matches!(r, Response::Frame { cached: false, .. }));
        }
        match s.execute(Command::Stats { session: Some("a".into()) }) {
            Response::Stats { session: Some(sess), .. } => {
                assert_eq!(counter(&sess.stats, "cache.misses"), Some(3));
                assert_eq!(counter(&sess.stats, "cache.evictions"), Some(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_do_not_change_any_response_byte() {
        let script: Vec<Command> = vec![
            Command::LoadTrace {
                session: "a".into(),
                mode: viva_trace::RecoveryMode::Strict,
                text: trace_csv(),
                trace: None,
            },
            Command::SetTimeSlice { session: "a".into(), start: 1.0, end: 9.0 },
            Command::Collapse { session: "a".into(), container: "c1".into() },
            Command::Relax { session: "a".into(), steps: 30 },
            Command::Render {
                session: "a".into(),
                width: 640.0,
                height: 480.0,
                theme: viva::Theme::Dark,
                labels: true,
            },
            Command::Render {
                session: "a".into(),
                width: 640.0,
                height: 480.0,
                theme: viva::Theme::Dark,
                labels: true,
            },
            Command::Sessions,
        ];
        let plain = server();
        let observed = Server::with_metrics(ServerLimits::default());
        for cmd in script {
            let a = plain.execute(cmd.clone()).encode();
            let b = observed.execute(cmd).encode();
            assert_eq!(a, b, "metrics perturbed a response");
        }
    }

    #[test]
    fn typed_errors_for_every_failure_shape() {
        let s = server();
        // No session yet.
        let r = s.execute(Command::Relax { session: "nope".into(), steps: 1 });
        assert!(matches!(r, Response::Error { kind: ErrorKind::NoSession, .. }));
        load(&s, "a");
        let cases: Vec<(Command, ErrorKind)> = vec![
            (
                Command::Collapse { session: "a".into(), container: "ghost".into() },
                ErrorKind::UnknownContainer,
            ),
            (
                Command::Aggregate {
                    session: "a".into(),
                    metric: "no_such".into(),
                    group: "c1".into(),
                },
                ErrorKind::UnknownMetric,
            ),
            (
                Command::SetTimeSlice { session: "a".into(), start: f64::NAN, end: 1.0 },
                ErrorKind::InvalidTimeSlice,
            ),
            (
                Command::Drag {
                    session: "a".into(),
                    container: "c1-h0".into(),
                    x: f64::INFINITY,
                    y: 0.0,
                },
                ErrorKind::NonFinitePosition,
            ),
            (
                Command::Render {
                    session: "a".into(),
                    width: -1.0,
                    height: 480.0,
                    theme: viva::Theme::Light,
                    labels: false,
                },
                ErrorKind::BadViewport,
            ),
            (
                Command::SetScaling {
                    session: "a".into(),
                    group: "power".into(),
                    factor: f64::NAN,
                },
                ErrorKind::BadArgument,
            ),
            (
                Command::CloseSession { session: "ghost".into() },
                ErrorKind::NoSession,
            ),
        ];
        for (cmd, want) in cases {
            match s.execute(cmd.clone()) {
                Response::Error { kind, .. } => assert_eq!(kind, want, "{cmd:?}"),
                other => panic!("{cmd:?} -> {other:?}"),
            }
        }
        // Wire-level failures that never reach `execute` are typed too.
        let bad_theme = s
            .handle_line(r#"{"cmd":"render","session":"a","width":8,"height":6,"theme":"mauve","labels":false}"#)
            .expect("a response");
        assert!(bad_theme.starts_with(r#"{"err":"bad_theme""#), "{bad_theme}");
        // The session survived all of it.
        assert!(matches!(
            s.execute(Command::Relax { session: "a".into(), steps: 1 }),
            Response::Relaxed { .. }
        ));
    }

    #[test]
    fn lenient_upload_of_damaged_trace_degrades() {
        let s = server();
        let text = format!("{}garbage line\nvar,3.0,1,0,NaN\n", trace_csv());
        let r = s.execute(Command::LoadTrace {
            session: "dmg".into(),
            mode: viva_trace::RecoveryMode::Lenient,
            text,
            trace: None,
        });
        match r {
            Response::Loaded { dropped, quarantined, .. } => {
                assert!(dropped >= 2, "garbage + NaN dropped, got {dropped}");
                assert_eq!(quarantined, 1);
            }
            other => panic!("{other:?}"),
        }
        // Strict mode refuses the same upload with a typed error.
        let text = format!("{}garbage line\n", trace_csv());
        let r = s.execute(Command::LoadTrace {
            session: "dmg2".into(),
            mode: viva_trace::RecoveryMode::Strict,
            text,
            trace: None,
        });
        assert!(
            matches!(r, Response::Error { kind: ErrorKind::ParseTrace, .. }),
            "{r:?}"
        );
        assert!(s.registry().get("dmg2").is_none(), "failed load creates no session");
    }

    #[test]
    fn handle_line_one_response_per_request() {
        let s = server();
        assert_eq!(s.handle_line(""), None);
        assert_eq!(s.handle_line("   "), None);
        assert_eq!(s.handle_line(r#"{"cmd":"ping"}"#), Some(r#"{"ok":"pong"}"#.to_owned()));
        let bad = s.handle_line("not json").unwrap();
        assert!(bad.starts_with(r#"{"err":"protocol""#), "{bad}");
        let unknown = s.handle_line(r#"{"cmd":"frobnicate"}"#).unwrap();
        assert!(unknown.starts_with(r#"{"err":"unknown_command""#), "{unknown}");
    }

    #[test]
    fn oversized_request_line_is_rejected_not_processed() {
        let s = Server::new(ServerLimits { max_line_bytes: 64, ..ServerLimits::default() });
        let huge = format!(r#"{{"cmd":"ping","pad":"{}"}}"#, "x".repeat(1000));
        let r = s.handle_line(&huge).unwrap();
        assert!(r.starts_with(r#"{"err":"protocol""#), "{r}");
    }

    #[test]
    fn checkpoint_restore_round_trips_over_the_protocol() {
        let s = server();
        load(&s, "a");
        s.execute(Command::SetTimeSlice { session: "a".into(), start: 1.0, end: 9.0 });
        s.execute(Command::Collapse { session: "a".into(), container: "c1".into() });
        s.execute(Command::Relax { session: "a".into(), steps: 40 });
        s.execute(Command::Drag { session: "a".into(), container: "c1".into(), x: 3.0, y: -2.0 });
        let render = |srv: &Server, session: &str| {
            match srv.execute(Command::Render {
                session: session.into(),
                width: 640.0,
                height: 480.0,
                theme: viva::Theme::Dark,
                labels: true,
            }) {
                Response::Frame { svg, revision, .. } => (svg, revision),
                other => panic!("{other:?}"),
            }
        };
        let (live_svg, live_rev) = render(&s, "a");
        let state = match s.execute(Command::Checkpoint { session: "a".into() }) {
            Response::Checkpointed { session, state } => {
                assert_eq!(session, "a");
                state
            }
            other => panic!("{other:?}"),
        };
        // Restore into a *fresh* server (a process restart, in effect).
        let fresh = server();
        match fresh.execute(Command::Restore { session: "a".into(), state: Some(state.clone()) }) {
            Response::Restored { session, revision } => {
                assert_eq!(session, "a");
                assert_eq!(revision, live_rev);
            }
            other => panic!("{other:?}"),
        }
        let (restored_svg, restored_rev) = render(&fresh, "a");
        assert_eq!(restored_svg, live_svg, "restored render must be byte-identical");
        assert_eq!(restored_rev, live_rev);
        // Fixed point: checkpointing the restored session reproduces
        // the checkpoint byte for byte.
        match fresh.execute(Command::Checkpoint { session: "a".into() }) {
            Response::Checkpointed { state: again, .. } => {
                assert_eq!(again.encode(), state.encode());
            }
            other => panic!("{other:?}"),
        }
        // Checkpointing an unknown session is the usual typed error.
        assert!(matches!(
            s.execute(Command::Checkpoint { session: "ghost".into() }),
            Response::Error { kind: ErrorKind::NoSession, .. }
        ));
        // Restoring garbage is typed, and creates no session.
        let mut broken = (*state).clone();
        broken.version = 99;
        assert!(matches!(
            fresh.execute(Command::Restore { session: "b".into(), state: Some(Box::new(broken)) }),
            Response::Error { kind: ErrorKind::BadCheckpoint, .. }
        ));
        assert!(fresh.registry().get("b").is_none());
    }

    #[test]
    fn admission_control_sheds_deterministically() {
        let s = Server::new(ServerLimits {
            max_inflight_commands: 0,
            overload_retry_after_ms: 25,
            ..ServerLimits::default()
        });
        match s.execute(Command::Ping) {
            Response::Error { kind: ErrorKind::Overloaded { retry_after_ms }, .. } => {
                assert_eq!(retry_after_ms, 25, "the configured hint rides the error");
            }
            other => panic!("{other:?}"),
        }
        // `shutdown` bypasses admission: draining an overloaded server
        // must always be possible.
        assert!(matches!(
            s.execute(Command::Shutdown),
            Response::ShutdownStarted { sessions: 0, checkpointed: 0 }
        ));
    }

    #[test]
    fn zero_deadline_budget_breaches_deterministically() {
        let s = Server::new(ServerLimits {
            deadlines: crate::registry::DeadlineBudgets {
                relax_ms: Some(0),
                ..Default::default()
            },
            ..ServerLimits::default()
        });
        load(&s, "a");
        let r = s.execute(Command::Relax { session: "a".into(), steps: 100 });
        assert!(
            matches!(r, Response::Error { kind: ErrorKind::DeadlineExceeded, .. }),
            "{r:?}"
        );
        // Other classes have no budget and are untouched; the session
        // is still at its last consistent revision.
        assert!(matches!(
            s.execute(Command::SetTimeSlice { session: "a".into(), start: 1.0, end: 5.0 }),
            Response::Slice { .. }
        ));
    }

    #[test]
    fn drain_refuses_new_state_changes_but_answers_observability() {
        let s = server();
        load(&s, "a");
        assert!(!s.is_draining());
        match s.execute(Command::Shutdown) {
            Response::ShutdownStarted { sessions, checkpointed } => {
                assert_eq!(sessions, 1);
                assert_eq!(checkpointed, 0, "no checkpoint dir configured");
            }
            other => panic!("{other:?}"),
        }
        assert!(s.is_draining());
        // State changes are shed…
        assert!(matches!(
            s.execute(Command::Relax { session: "a".into(), steps: 1 }),
            Response::Error { kind: ErrorKind::Overloaded { .. }, .. }
        ));
        assert!(matches!(
            s.execute(Command::LoadTrace {
                session: "b".into(),
                mode: viva_trace::RecoveryMode::Strict,
                text: trace_csv(),
                trace: None,
            }),
            Response::Error { kind: ErrorKind::Overloaded { .. }, .. }
        ));
        // …while liveness, stats, and state export still answer.
        assert!(matches!(s.execute(Command::Ping), Response::Pong));
        assert!(matches!(s.execute(Command::Stats { session: None }), Response::Stats { .. }));
        assert!(matches!(
            s.execute(Command::Checkpoint { session: "a".into() }),
            Response::Checkpointed { .. }
        ));
        // Shutdown is idempotent.
        assert!(matches!(s.execute(Command::Shutdown), Response::ShutdownStarted { .. }));
    }

    #[test]
    fn tcp_round_trip_with_worker_pool() {
        use std::io::{BufRead, BufReader, Write};
        let server = Arc::new(server());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _workers = serve_tcp(listener, 2, Arc::clone(&server));
        // Two concurrent connections, each its own session.
        let clients: Vec<_> = (0..2)
            .map(|i| {
                let csv = trace_csv();
                thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut send = |cmd: &Command| {
                        stream
                            .write_all(format!("{}\n", cmd.encode()).as_bytes())
                            .unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        Response::decode(line.trim_end()).unwrap()
                    };
                    let session = format!("tcp-{i}");
                    let r = send(&Command::LoadTrace {
                        session: session.clone(),
                        mode: viva_trace::RecoveryMode::Strict,
                        text: csv,
                        trace: None,
                    });
                    assert!(matches!(r, Response::Loaded { .. }));
                    let r = send(&Command::Render {
                        session,
                        width: 320.0,
                        height: 240.0,
                        theme: viva::Theme::Light,
                        labels: false,
                    });
                    assert!(matches!(r, Response::Frame { .. }));
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.registry().len(), 2);
    }

    #[test]
    fn attach_shares_one_trace_among_sessions() {
        let s = Server::new(ServerLimits { max_sessions: 64, ..ServerLimits::default() });
        let (loaded_containers, loaded_events) = match s.execute(Command::LoadTrace {
            session: "a".into(),
            mode: viva_trace::RecoveryMode::Strict,
            text: trace_csv(),
            trace: Some("shared".into()),
        }) {
            Response::Loaded { containers, events, .. } => (containers, events),
            other => panic!("{other:?}"),
        };
        for i in 0..10 {
            let r = s.execute(Command::Attach {
                session: format!("att-{i}"),
                trace: "shared".into(),
            });
            match r {
                Response::Attached { trace, containers, events, .. } => {
                    assert_eq!(trace, "shared");
                    assert_eq!(containers, loaded_containers);
                    assert_eq!(events, loaded_events);
                }
                other => panic!("{other:?}"),
            }
        }
        // The store sees one trace shared by eleven sessions (loader's
        // plus ten attached): one Arc strong count per session, plus
        // the store's own reference.
        match s.execute(Command::ListTraces) {
            Response::TraceList { traces } => {
                assert_eq!(traces.len(), 1);
                assert_eq!(traces[0].name, "shared");
                assert_eq!(traces[0].sessions, 11);
            }
            other => panic!("{other:?}"),
        }
        // Attached sessions truly share: same allocation, not a copy.
        let a = s.registry().get("a").unwrap().lock().analysis.shared_trace();
        let b = s.registry().get("att-0").unwrap().lock().analysis.shared_trace();
        assert!(Arc::ptr_eq(&a, &b));
        // The shared index was built once and is shared too.
        let ia = s.registry().get("a").unwrap().lock().analysis.shared_index().unwrap();
        let ib = s.registry().get("att-9").unwrap().lock().analysis.shared_index().unwrap();
        assert!(Arc::ptr_eq(&ia, &ib));
        // Attached sessions render identically to the loaded one.
        let render = |session: &str| match s.execute(Command::Render {
            session: session.into(),
            width: 320.0,
            height: 240.0,
            theme: viva::Theme::Light,
            labels: false,
        }) {
            Response::Frame { svg, .. } => svg,
            other => panic!("{other:?}"),
        };
        assert_eq!(render("a"), render("att-5"));
        // Dropping the trace stops new attaches; live sessions keep
        // working.
        assert!(matches!(
            s.execute(Command::DropTrace { trace: "shared".into() }),
            Response::TraceDropped { .. }
        ));
        assert!(matches!(
            s.execute(Command::Attach { session: "late".into(), trace: "shared".into() }),
            Response::Error { kind: ErrorKind::NoTrace, .. }
        ));
        assert!(matches!(
            s.execute(Command::DropTrace { trace: "shared".into() }),
            Response::Error { kind: ErrorKind::NoTrace, .. }
        ));
        assert!(matches!(
            s.execute(Command::Relax { session: "att-3".into(), steps: 5 }),
            Response::Relaxed { .. }
        ));
    }

    #[test]
    fn attach_to_missing_trace_is_typed() {
        let s = server();
        assert!(matches!(
            s.execute(Command::Attach { session: "x".into(), trace: "ghost".into() }),
            Response::Error { kind: ErrorKind::NoTrace, .. }
        ));
        assert!(s.registry().is_empty());
    }

    #[test]
    fn restore_relinks_to_stored_trace_by_content_hash() {
        let s = server();
        let r = s.execute(Command::LoadTrace {
            session: "a".into(),
            mode: viva_trace::RecoveryMode::Strict,
            text: trace_csv(),
            trace: Some("shared".into()),
        });
        assert!(matches!(r, Response::Loaded { .. }));
        s.execute(Command::Collapse { session: "a".into(), container: "c1".into() });
        s.execute(Command::Relax { session: "a".into(), steps: 25 });
        let state = match s.execute(Command::Checkpoint { session: "a".into() }) {
            Response::Checkpointed { state, .. } => state,
            other => panic!("{other:?}"),
        };
        // Restore into a *different* session on the same server: the
        // checkpoint's content hash matches the stored trace, so the
        // restored session shares it instead of re-parsing.
        assert!(matches!(
            s.execute(Command::Restore { session: "b".into(), state: Some(state) }),
            Response::Restored { .. }
        ));
        let restored = s.registry().get("b").unwrap().lock().analysis.shared_trace();
        let stored = s.store().get("shared").unwrap().trace;
        assert!(Arc::ptr_eq(&restored, &stored), "restore re-linked to the shared trace");
        // And it renders byte-identically to the original session.
        let render = |session: &str| match s.execute(Command::Render {
            session: session.into(),
            width: 640.0,
            height: 480.0,
            theme: viva::Theme::Dark,
            labels: true,
        }) {
            Response::Frame { svg, .. } => svg,
            other => panic!("{other:?}"),
        };
        assert_eq!(render("a"), render("b"));
    }
}
