//! The serving loop: NDJSON over stdio or TCP.
//!
//! A [`Server`] owns a [`SessionRegistry`] and turns request lines
//! into response lines — one in, one out, in order. The same
//! [`Server::handle_line`] drives every transport:
//!
//! * [`Server::serve`] pumps any `BufRead`/`Write` pair — the stdio
//!   single-analyst mode;
//! * [`serve_tcp`] runs an **event-driven readiness loop** over
//!   non-blocking sockets (std-only — `set_nonblocking` plus a
//!   sleep-backed poll shim, no external dependencies): `workers`
//!   shard threads each own a set of connections with per-connection
//!   read/write buffers, so one shard multiplexes hundreds of
//!   connections and one syscall round drains every complete NDJSON
//!   frame a pipelining client has batched.
//!
//! Responses are deterministic: a fresh server given the same command
//! script produces byte-identical output, including the `cached`
//! flags of frame responses (the caches run on logical clocks).
//! The transport never changes a byte — stdio and TCP replay the
//! same golden transcripts.
//!
//! # Resilience
//!
//! The serving layer is **crash-only** (DESIGN.md §14): it prefers a
//! deterministic refusal now over an unbounded queue later, and it can
//! rebuild any session from a checkpoint.
//!
//! * **Admission control** — at most
//!   [`ServerLimits::max_inflight_commands`] commands run at once and
//!   at most [`ServerLimits::max_session_waiters`] connections wait on
//!   one session's lock; beyond either, commands are *shed* with the
//!   typed `overloaded` error (and a `retry_after_ms` hint) before any
//!   work starts.
//! * **Deadlines** — each command class can carry a wall-clock budget
//!   ([`crate::registry::DeadlineBudgets`], opt-in); a breach returns
//!   the typed `deadline_exceeded` error and leaves the session at its
//!   last consistent revision.
//! * **Checkpoint/restore** — `checkpoint` snapshots a session
//!   ([`SessionCheckpoint`]); `restore` rebuilds one with
//!   byte-identical renders. LRU victims and drains are checkpointed
//!   to [`ServerLimits::checkpoint_dir`] when configured.
//! * **Drain** — `shutdown` checkpoints live sessions, refuses new
//!   connections and state-changing commands with `overloaded`, lets
//!   in-flight commands finish, and winds the accept loops down.

use std::collections::HashMap;
use std::fs;
use std::io::{self, BufRead, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use viva::{AnalysisSession, Camera, GraphView, SessionError, Theme, ViewNode, Viewport};
use viva_agg::AggIndex;
use viva_layout::Vec2;
use viva_obs::{Recorder, SpanGuard, SpanId, Tracer};
use viva_trace::{
    live, ContainerId, JournalConfig, JournalWriter, LiveLine, RecoveryMode, ResourceBudget,
    TraceError, TraceLoader,
};

use crate::checkpoint::{checkpoint_file_name, SessionCheckpoint};
use crate::protocol::{Command, DeltaNode, ErrorKind, Push, Response, SessionStats, StatsBlock};
use crate::registry::{LiveStream, ServerLimits, ServerSession, SessionRegistry, SessionSlot};
use crate::store::{content_hash, hash_token, StoredTrace, TraceStore};

/// Layout iterations run between deadline checks when a `relax` budget
/// is configured. Small enough to bound overshoot, large enough that
/// the `Instant` read stays off the per-step hot path.
const RELAX_DEADLINE_CHUNK: usize = 64;

/// A protocol server over a session registry. Cheap to share:
/// transports hold it behind an [`Arc`].
///
/// With [`Server::with_metrics`] the server carries an enabled
/// [`Recorder`] of its own (per-command counters and latency
/// histograms, registry occupancy) and hands every new session an
/// enabled recorder of *its* own, threaded through the trace loader,
/// aggregation index, layout engine, and frame cache. [`Server::new`]
/// leaves both disabled — the metrics-off hot path is the original
/// uninstrumented code.
#[derive(Debug)]
pub struct Server {
    registry: SessionRegistry,
    /// Named, content-hashed shared traces: `load_trace` registers,
    /// `attach` shares, `restore` re-links by hash.
    store: TraceStore,
    recorder: Recorder,
    /// Commands currently executing (admission-control gauge).
    inflight: AtomicUsize,
    /// Set once by `shutdown`; never cleared. Everything that checks it
    /// degrades to refusal, so a draining server quiesces instead of
    /// wedging.
    draining: AtomicBool,
    /// Per-connection push queues and per-session subscriber lists —
    /// the delivery half of `subscribe`.
    conns: Mutex<ConnTable>,
    /// Total push lines queued across every connection. Lets the
    /// transport tick skip the table lock when nothing is pending —
    /// the common case for servers nobody subscribes to.
    queued_pushes: AtomicUsize,
}

/// One registered subscriber of a live session.
#[derive(Debug)]
struct SubEntry {
    /// The subscribed connection.
    conn: u64,
    /// Oldest sequence number queued for this subscriber and not yet
    /// drained by its transport — the resume point if it is shed.
    /// `None` means the subscriber is fully caught up.
    low_seq: Option<u64>,
}

/// Connection-scoped push state, shared by every transport. Lock
/// order: the session lock (when held) is always taken *before* this
/// table's lock, never after.
#[derive(Debug, Default)]
struct ConnTable {
    next_id: u64,
    /// Encoded push lines queued per connection, drained by the
    /// transport between request/response pairs.
    queues: HashMap<u64, Vec<String>>,
    /// Session name → subscribers.
    subs: HashMap<String, Vec<SubEntry>>,
}

/// Sheds one connection's push backlog: its queue is dropped and
/// replaced with one `lagging` line per subscription that had
/// undelivered pushes (now lost), and those subscriptions are removed.
/// `active` names the session whose publish tripped the shed — its
/// subscription always goes, with `seq` as the fallback resume point.
/// Subscriptions with nothing queued lost nothing and stay. Returns
/// `(net change to the queued-push count, subscriptions shed)`.
fn shed_conn(tbl: &mut ConnTable, conn: u64, active: &str, seq: u64) -> (isize, u64) {
    let ConnTable { queues, subs, .. } = tbl;
    let Some(q) = queues.get_mut(&conn) else { return (0, 0) };
    let mut delta = -(q.len() as isize);
    q.clear();
    let mut shed = 0u64;
    // Deterministic lagging order for multi-session subscribers.
    let mut names: Vec<String> = subs.keys().cloned().collect();
    names.sort();
    for name in names {
        let Some(entries) = subs.get_mut(&name) else { continue };
        let Some(pos) = entries.iter().position(|e| e.conn == conn) else { continue };
        let resume_seq = match entries[pos].low_seq {
            Some(low) => low,
            None if name == active => seq,
            None => continue,
        };
        entries.remove(pos);
        q.push(Push::Lagging { session: name, resume_seq }.encode());
        delta += 1;
        shed += 1;
    }
    subs.retain(|_, v| !v.is_empty());
    (delta, shed)
}

/// Projects one view node onto the wire delta row.
fn delta_node(n: &ViewNode) -> DeltaNode {
    DeltaNode {
        container: n.container.index() as u64,
        label: n.label.clone(),
        fill: n.fill_value,
        size: n.size_value,
        members: n.members as u64,
    }
}

/// Diffs two views into the wire delta: nodes whose view row changed
/// (or appeared), plus the container ids that vanished, ascending.
/// `None` as the base means everything is new — the subscribe-time
/// snapshot.
fn diff_views(old: Option<&GraphView>, new: &GraphView) -> (Vec<DeltaNode>, Vec<u64>) {
    let changed = new
        .nodes
        .iter()
        .filter(|n| old.and_then(|o| o.node(n.container)).is_none_or(|prev| prev != *n))
        .map(delta_node)
        .collect();
    let mut removed: Vec<u64> = old
        .map(|o| {
            o.nodes
                .iter()
                .filter(|n| new.node(n.container).is_none())
                .map(|n| n.container.index() as u64)
                .collect()
        })
        .unwrap_or_default();
    removed.sort_unstable();
    (changed, removed)
}

/// Captures a checkpoint of a server session, including the journal
/// link for live streaming sessions — what lets a restore re-attach
/// the journal and replay the suffix the checkpoint has not seen.
fn capture_session(name: &str, s: &ServerSession) -> SessionCheckpoint {
    let mut ckpt = SessionCheckpoint::capture(name, &s.analysis);
    if let Some(live) = &s.live {
        ckpt.journal = live.journal.as_ref().map(|j| (j.id().to_owned(), live.last_seq));
    }
    ckpt
}

/// One command's wall-clock budget. With no budget the deadline never
/// reads the clock and never expires — the default configuration stays
/// wall-clock-free, which is what keeps golden transcripts exact. A
/// zero budget is expired *a priori* (also without a clock read), the
/// deterministic breach tests rely on.
struct Deadline {
    budget_ms: Option<u64>,
    started: Option<Instant>,
}

impl Deadline {
    fn start(budget_ms: Option<u64>) -> Deadline {
        let started = match budget_ms {
            Some(ms) if ms > 0 => Some(Instant::now()),
            _ => None,
        };
        Deadline { budget_ms, started }
    }

    fn expired(&self) -> bool {
        match (self.budget_ms, self.started) {
            (None, _) => false,
            (Some(0), _) => true,
            (Some(ms), Some(t0)) => t0.elapsed() >= Duration::from_millis(ms),
            (Some(_), None) => true,
        }
    }
}

/// RAII admission permit: holds one in-flight slot for the duration of
/// a command, released even when the handler panics.
struct InflightPermit<'a>(&'a AtomicUsize);

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error { kind, message: message.into() }
}

/// Maps a session-layer failure onto the wire.
fn session_error(e: SessionError) -> Response {
    let kind = match &e {
        SessionError::UnknownContainer(_) => ErrorKind::UnknownContainer,
        SessionError::HiddenContainer(_) => ErrorKind::HiddenContainer,
        SessionError::UnknownMetric(_) => ErrorKind::UnknownMetric,
        SessionError::InvalidTimeSlice(_) => ErrorKind::InvalidTimeSlice,
        SessionError::NonFinitePosition { .. } => ErrorKind::NonFinitePosition,
    };
    err(kind, e.to_string())
}

/// Builds the viewport for a `render` command. A level-of-detail
/// camera is attached only when at least one camera field was present
/// on the wire — absent fields default to the identity component, and
/// a fully absent camera takes the classic camera-less render path
/// (byte-identical to pre-LoD servers, and keyed separately in the
/// frame cache).
fn render_viewport(
    width: f64,
    height: f64,
    theme: Theme,
    labels: bool,
    zoom: Option<f64>,
    pan_x: Option<f64>,
    pan_y: Option<f64>,
) -> Result<Viewport, Response> {
    let vp = match Viewport::try_new(width, height) {
        Ok(vp) => vp.with_theme(theme).with_labels(labels),
        Err(e) => return Err(err(ErrorKind::BadViewport, e.to_string())),
    };
    if zoom.is_none() && pan_x.is_none() && pan_y.is_none() {
        return Ok(vp);
    }
    match Camera::try_new(zoom.unwrap_or(1.0), pan_x.unwrap_or(0.0), pan_y.unwrap_or(0.0)) {
        Ok(cam) => Ok(vp.with_camera(cam)),
        Err(e) => Err(err(ErrorKind::BadViewport, e.to_string())),
    }
}

/// Resolves a container *name* against the session's trace. Names are
/// the protocol's container handle; ids are an in-process detail.
fn container_id(s: &ServerSession, name: &str) -> Result<ContainerId, Response> {
    s.analysis
        .trace()
        .containers()
        .by_name(name)
        .map(|c| c.id())
        .ok_or_else(|| {
            err(ErrorKind::UnknownContainer, format!("container {name:?} does not exist"))
        })
}

thread_local! {
    /// The shard worker index of the current thread: stamped onto the
    /// root span of every command the thread executes. Stdio serving,
    /// tests, and direct `execute` calls run as shard 0.
    static SHARD: std::cell::Cell<u16> = const { std::cell::Cell::new(0) };
}

fn current_shard() -> u16 {
    SHARD.get()
}

impl Server {
    /// A server with the given limits, no sessions, and metrics off.
    pub fn new(limits: ServerLimits) -> Server {
        Server::with_observability(limits, Recorder::disabled())
    }

    /// A server with observability on: server-scope command metrics,
    /// plus a per-session recorder wired through every layer of each
    /// session created from here on. Metrics never reach a response
    /// except through the `stats` command's deterministic subset, so
    /// transcripts stay byte-identical to a metrics-off server's.
    pub fn with_metrics(limits: ServerLimits) -> Server {
        Server::with_observability(limits, Recorder::enabled())
    }

    /// A server carrying the exact recorder (and through it, tracer)
    /// the caller built — how `viva-server --self-trace` wires a
    /// sampling [`Tracer`] through every layer. Sessions inherit the
    /// tracer (every session recorder is minted with it), so phase
    /// spans from
    /// the loader, index, layout, LoD cut, and SVG encoder all land in
    /// the same per-shard rings as the command roots.
    pub fn with_observability(limits: ServerLimits, recorder: Recorder) -> Server {
        Server {
            registry: SessionRegistry::new(limits),
            store: TraceStore::new(),
            recorder,
            inflight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            conns: Mutex::new(ConnTable::default()),
            queued_pushes: AtomicUsize::new(0),
        }
    }

    /// The server's span tracer (disabled unless an enabled one was
    /// wired via [`Server::with_observability`]).
    pub fn tracer(&self) -> &Tracer {
        self.recorder.tracer()
    }

    /// The underlying registry (tests and embedding).
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// The shared-trace store (tests and embedding).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The server-scope recorder (disabled unless built by
    /// [`Server::with_metrics`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Whether a graceful drain has started ([`Command::Shutdown`]).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Bumps a server-scope counter when metrics are on.
    fn note(&self, counter: &str) {
        if self.recorder.is_enabled() {
            self.recorder.counter(counter).inc();
        }
    }

    /// The typed shed response: `overloaded` + back-off hint. Counted
    /// under `server.shed`; the work was never started.
    fn shed(&self, message: impl Into<String>) -> Response {
        self.note("server.shed");
        err(
            ErrorKind::Overloaded {
                retry_after_ms: self.registry.limits().overload_retry_after_ms,
            },
            message,
        )
    }

    /// The typed deadline-breach response. Counted under
    /// `server.deadline_exceeded`.
    fn deadline_exceeded(&self, what: &str, detail: &str) -> Response {
        self.note("server.deadline_exceeded");
        if self.recorder.is_enabled() {
            self.recorder.event("server.deadline_exceeded", what);
        }
        err(ErrorKind::DeadlineExceeded, format!("{what} exceeded its deadline budget: {detail}"))
    }

    /// The global admission gate: reserves one in-flight slot or sheds.
    fn admit(&self) -> Result<InflightPermit<'_>, Response> {
        let max = self.registry.limits().max_inflight_commands;
        let prev = self.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= max {
            self.inflight.fetch_sub(1, Ordering::SeqCst);
            return Err(self.shed(format!(
                "{prev} commands already in flight (limit {max}); retry later"
            )));
        }
        Ok(InflightPermit(&self.inflight))
    }

    /// The per-session admission gate: takes the session lock, but
    /// refuses to become more than the `max_session_waiters`-th waiter
    /// — a convoy behind one slow command on a hot session must not
    /// absorb every worker thread.
    fn lock_admitted<'a>(
        &self,
        slot: &'a Arc<SessionSlot>,
    ) -> Result<MutexGuard<'a, ServerSession>, Response> {
        if let Some(g) = slot.try_lock() {
            return Ok(g);
        }
        let max = self.registry.limits().max_session_waiters;
        let prev = slot.waiters().fetch_add(1, Ordering::SeqCst);
        if prev >= max {
            slot.waiters().fetch_sub(1, Ordering::SeqCst);
            return Err(self.shed(format!(
                "session busy with {prev} commands already waiting (limit {max}); retry later"
            )));
        }
        let g = slot.lock();
        slot.waiters().fetch_sub(1, Ordering::SeqCst);
        Ok(g)
    }

    /// Locks the connection table, recovering from poisoning.
    fn conns(&self) -> MutexGuard<'_, ConnTable> {
        self.conns.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Applies a net change to the queued-push gauge the transports
    /// poll before taking the table lock.
    fn adjust_queued(&self, delta: isize) {
        match delta.cmp(&0) {
            std::cmp::Ordering::Greater => {
                self.queued_pushes.fetch_add(delta as usize, Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                self.queued_pushes.fetch_sub(delta.unsigned_abs(), Ordering::Relaxed);
            }
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Publishes the streaming observability pair: the shed counter
    /// and the deepest subscriber queue seen by this publish.
    fn push_metrics(&self, shed: u64, depth: usize) {
        if !self.recorder.is_enabled() {
            return;
        }
        if shed > 0 {
            self.recorder.counter("server.subscriber_sheds").add(shed);
        }
        self.recorder.gauge("server.subscriber_queue").set(depth as f64);
    }

    /// Registers a transport connection for push delivery, returning
    /// its id. Every transport that can carry pushes calls this once
    /// per connection, pairs request lines with it through
    /// [`Server::handle_line_on`], drains [`Server::take_pushes`], and
    /// calls [`Server::close_conn`] when the connection ends.
    pub fn open_conn(&self) -> u64 {
        let mut tbl = self.conns();
        tbl.next_id += 1;
        let id = tbl.next_id;
        tbl.queues.insert(id, Vec::new());
        id
    }

    /// Unregisters a connection: its queue and subscriptions go with
    /// it. Idempotent.
    pub fn close_conn(&self, conn: u64) {
        let mut tbl = self.conns();
        let dropped = tbl.queues.remove(&conn).map_or(0, |q| q.len());
        self.adjust_queued(-(dropped as isize));
        for entries in tbl.subs.values_mut() {
            entries.retain(|e| e.conn != conn);
        }
        tbl.subs.retain(|_, v| !v.is_empty());
    }

    /// Drains the push lines owed to `conn` (encoded, no trailing
    /// newline). Transports write them after the response to the
    /// command currently in flight — pushes interleave *between*
    /// request/response pairs, never inside one.
    pub fn take_pushes(&self, conn: u64) -> Vec<String> {
        if self.queued_pushes.load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        let mut tbl = self.conns();
        let Some(q) = tbl.queues.get_mut(&conn) else { return Vec::new() };
        let drained = std::mem::take(q);
        if drained.is_empty() {
            return drained;
        }
        self.adjust_queued(-(drained.len() as isize));
        // The subscriber is caught up: its next undelivered push (if
        // it is ever shed) starts from whatever gets queued next.
        for entries in tbl.subs.values_mut() {
            for e in entries.iter_mut().filter(|e| e.conn == conn) {
                e.low_seq = None;
            }
        }
        drained
    }

    /// Queues one push line on every subscriber of `session`, shedding
    /// subscribers whose queues are full — an append never blocks on
    /// (or waits for) a slow subscriber.
    fn enqueue_push(&self, session: &str, seq: u64, line: &str) {
        let cap = self.registry.limits().subscriber_queue.max(1);
        let mut tbl = self.conns();
        let mut delta = 0isize;
        let mut shed_conns: Vec<u64> = Vec::new();
        let mut depth = 0usize;
        {
            let ConnTable { queues, subs, .. } = &mut *tbl;
            let Some(entries) = subs.get_mut(session) else { return };
            for e in entries.iter_mut() {
                let Some(q) = queues.get_mut(&e.conn) else { continue };
                if q.len() >= cap {
                    shed_conns.push(e.conn);
                    continue;
                }
                q.push(line.to_owned());
                delta += 1;
                if e.low_seq.is_none() {
                    e.low_seq = Some(seq);
                }
                depth = depth.max(q.len());
            }
        }
        let mut shed = 0u64;
        for conn in shed_conns {
            let (d, n) = shed_conn(&mut tbl, conn, session, seq);
            delta += d;
            shed += n;
        }
        self.adjust_queued(delta);
        drop(tbl);
        self.push_metrics(shed, depth);
    }

    /// Queues one push line for a single connection (the subscribe-
    /// time snapshot), under the same bound/shed discipline as a
    /// broadcast.
    fn enqueue_push_for(&self, conn: u64, session: &str, seq: u64, line: String) {
        let cap = self.registry.limits().subscriber_queue.max(1);
        let mut tbl = self.conns();
        let mut delta = 0isize;
        let mut shed = 0u64;
        let mut depth = 0usize;
        let full = tbl.queues.get(&conn).is_some_and(|q| q.len() >= cap);
        if full {
            let (d, n) = shed_conn(&mut tbl, conn, session, seq);
            delta += d;
            shed += n;
        } else if let Some(q) = tbl.queues.get_mut(&conn) {
            q.push(line);
            delta += 1;
            depth = q.len();
            if let Some(e) = tbl
                .subs
                .get_mut(session)
                .and_then(|entries| entries.iter_mut().find(|e| e.conn == conn))
            {
                if e.low_seq.is_none() {
                    e.low_seq = Some(seq);
                }
            }
        }
        self.adjust_queued(delta);
        drop(tbl);
        self.push_metrics(shed, depth);
    }

    /// Handles one raw request line. Returns `None` for blank lines
    /// (they produce no response), otherwise exactly one encoded
    /// response line (without trailing newline). Connection-free:
    /// `subscribe` through this entry point is refused (there is no
    /// queue to deliver pushes to) — transports use
    /// [`Server::handle_line_on`].
    pub fn handle_line(&self, line: &str) -> Option<String> {
        self.handle_line_on(None, line)
    }

    /// [`Server::handle_line`] on behalf of a registered transport
    /// connection, which is what entitles the line to `subscribe`.
    pub fn handle_line_on(&self, conn: Option<u64>, line: &str) -> Option<String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return None;
        }
        if trimmed.len() > self.registry.limits().max_line_bytes {
            return Some(
                err(
                    ErrorKind::Protocol,
                    format!(
                        "request line of {} bytes exceeds the {}-byte limit",
                        trimmed.len(),
                        self.registry.limits().max_line_bytes
                    ),
                )
                .encode(),
            );
        }
        // Decode is timed only when tracing is on: the duration becomes
        // the root span's back-dated `frame.decode` child (the root
        // cannot exist yet — its name *is* the decode's output).
        let decode_started = self.recorder.tracer().is_enabled().then(Instant::now);
        let decoded = Command::decode(trimmed);
        let decode_cost = decode_started.map(|t| t.elapsed());
        let encoded = match decoded {
            Ok(cmd) => {
                // Encode while the admission permit is still held:
                // serializing a megabyte frame is real CPU, and work
                // the gate does not cover would overlap admitted
                // commands and erode their latency under overload.
                let (response, permit, root) = self.execute_gated(conn, cmd, decode_cost);
                let encoded = {
                    let _enc = self.recorder.tracer().phase("response.encode");
                    response.encode()
                };
                drop(root);
                drop(permit);
                encoded
            }
            Err(e) => {
                let kind = if e.message.starts_with("unknown command") {
                    ErrorKind::UnknownCommand
                } else if e.message.starts_with("bad theme") {
                    ErrorKind::BadTheme
                } else {
                    ErrorKind::Protocol
                };
                err(kind, e.message).encode()
            }
        };
        Some(encoded)
    }

    /// Executes one decoded command behind the resilience gates:
    /// drain refusal, then global admission, then the per-command
    /// deadline. Per-command counters and latency histograms are
    /// tallied when metrics are on (the span's wall-clock duration
    /// stays in the recorder — it never reaches a response). Shed
    /// commands are counted under `server.shed` only: no work of
    /// theirs ever started.
    pub fn execute(&self, cmd: Command) -> Response {
        self.execute_gated(None, cmd, None).0
    }

    /// [`Server::execute`], but the admission permit (when one was
    /// granted) and the command's root span are returned alive so
    /// [`Server::handle_line`] can keep the gate closed — and the span
    /// tree open — while it encodes the response.
    fn execute_gated(
        &self,
        conn: Option<u64>,
        cmd: Command,
        decode_cost: Option<Duration>,
    ) -> (Response, Option<InflightPermit<'_>>, SpanGuard) {
        if self.is_draining() && !drain_exempt(&cmd) {
            let resp = self.shed(format!(
                "server is draining; command \"{}\" refused",
                cmd.name()
            ));
            return (resp, None, SpanGuard::noop());
        }
        // The causal root: one tree per command, named after the
        // command, annotated with its session, stamped with the shard
        // worker running it. Created before admission so the wait
        // itself is a phase in the tree; the sampling decision happens
        // inside `root`, and an unsampled root makes every descendant
        // free.
        let tracer = self.recorder.tracer();
        let root = if tracer.is_enabled() {
            let root =
                tracer.root(current_shard(), cmd.name(), session_name(&cmd).unwrap_or(""));
            if let Some(d) = decode_cost {
                tracer.phase_completed("frame.decode", d);
            }
            root
        } else {
            SpanGuard::noop()
        };
        // `shutdown` bypasses admission: a drain must be possible on an
        // overloaded server — that is when it is most needed.
        let permit = if matches!(cmd, Command::Shutdown) {
            None
        } else {
            let admitted = {
                let _wait = tracer.phase("admission.wait");
                self.admit()
            };
            match admitted {
                Ok(p) => Some(p),
                Err(resp) => return (resp, None, root),
            }
        };
        let _span = self.recorder.is_enabled().then(|| {
            let name = cmd.name();
            self.recorder.counter(&format!("server.cmd.{name}")).inc();
            self.recorder.span(&format!("server.cmd.{name}.seconds"))
        });
        let deadline = Deadline::start(self.registry.limits().deadlines.budget_for(cmd.class()));
        if deadline.expired() {
            // Only reachable with a zero budget: already out of time
            // before any work (the deterministic breach used by tests).
            return (self.deadline_exceeded(cmd.name(), "the budget is zero"), permit, root);
        }
        (self.dispatch(conn, cmd, &deadline), permit, root)
    }

    fn dispatch(&self, conn: Option<u64>, cmd: Command, deadline: &Deadline) -> Response {
        match cmd {
            Command::Ping => Response::Pong,
            Command::Sessions => Response::SessionList { names: self.registry.names() },
            Command::CloseSession { session } => {
                if self.registry.close(&session) {
                    self.update_occupancy();
                    Response::Closed { session }
                } else {
                    err(ErrorKind::NoSession, format!("session {session:?} does not exist"))
                }
            }
            Command::LoadTrace { session, mode, text, trace } => {
                self.load_trace(session, mode, &text, trace, deadline)
            }
            Command::Attach { session, trace } => self.attach(session, &trace, deadline),
            Command::ListTraces => Response::TraceList { traces: self.store.list() },
            Command::DropTrace { trace } => {
                if self.store.remove(&trace) {
                    Response::TraceDropped { trace }
                } else {
                    err(ErrorKind::NoTrace, format!("trace {trace:?} is not loaded"))
                }
            }
            Command::Stats { session, reset } => self.stats(session, reset),
            Command::Spans { session, limit } => self.spans(session.as_deref(), limit),
            Command::Restore { session, state } => {
                self.restore(session, state.map(|b| *b), deadline)
            }
            Command::Shutdown => self.shutdown(),
            // `append` creates the session on its first event, so it
            // cannot go through the existing-session path unconditionally.
            Command::Append { session, seq, text } => self.append(session, seq, &text),
            cmd => self.with_session(conn, cmd, deadline),
        }
    }

    /// Mirrors registry occupancy into the `server.sessions` gauge.
    fn update_occupancy(&self) {
        if self.recorder.is_enabled() {
            self.recorder.gauge("server.sessions").set(self.registry.len() as f64);
        }
    }

    /// Answers `stats`: the server's deterministic metric subset, plus
    /// one session's when named. Session lookup goes through
    /// [`SessionRegistry::peek`] so observing never perturbs LRU state.
    /// With `reset`, every snapshot is the atomic snapshot-and-zero of
    /// [`Recorder::snapshot_and_reset`] — the response carries the
    /// final pre-reset values, counters and histograms restart at
    /// zero, gauges keep stating what *is*.
    fn stats(&self, session: Option<String>, reset: bool) -> Response {
        let snap = |r: &Recorder| if reset { r.snapshot_and_reset() } else { r.snapshot() };
        let server = Box::new(StatsBlock::from_snapshot(&snap(&self.recorder)));
        let session = match session {
            None => None,
            Some(name) => {
                let Some(handle) = self.registry.peek(&name) else {
                    return err(ErrorKind::NoSession, format!("session {name:?} does not exist"));
                };
                let s = SessionRegistry::lock_session(&handle);
                Some(Box::new(SessionStats {
                    name,
                    revision: s.analysis.revision(),
                    frozen: s.analysis.layout_freeze_reason().map(|r| r.token().to_owned()),
                    stats: StatsBlock::from_snapshot(&snap(s.analysis.recorder())),
                }))
            }
        };
        Response::Stats { sessions: self.registry.len() as u64, server, session }
    }

    /// Answers `spans`: a deterministic subset of recently finished
    /// span trees — the newest `limit` sampled command roots (default
    /// 16; optionally only one session's), each with every descendant
    /// the rings still hold, sorted by `(trace, id)`. Two reads of a
    /// quiet tracer answer identically; wall-clock durations ride
    /// along for profiling but never order anything.
    fn spans(&self, session: Option<&str>, limit: Option<u64>) -> Response {
        let tracer = self.recorder.tracer();
        if !tracer.is_enabled() {
            return err(
                ErrorKind::BadArgument,
                "tracing is off: start the server with an enabled tracer (viva-server \
                 --self-trace) to record spans",
            );
        }
        let (records, dropped) = tracer.finished_spans();
        let limit = limit.unwrap_or(16).max(1) as usize;
        let mut root_traces: Vec<u64> = records
            .iter()
            .filter(|r| r.parent == SpanId::NONE)
            .filter(|r| session.is_none_or(|s| r.detail == s))
            .map(|r| r.trace_id)
            .collect();
        root_traces.sort_unstable();
        let keep: std::collections::HashSet<u64> =
            root_traces.iter().rev().take(limit).copied().collect();
        let mut kept: Vec<_> = records.iter().filter(|r| keep.contains(&r.trace_id)).collect();
        kept.sort_by_key(|r| (r.trace_id, r.id));
        let spans = kept
            .into_iter()
            .map(|r| crate::protocol::SpanNode {
                trace: r.trace_id,
                id: r.id.0,
                parent: r.parent.0,
                name: r.name.to_owned(),
                detail: r.detail.clone(),
                shard: r.shard as u64,
                start_tick: r.start_tick,
                end_tick: r.end_tick,
                duration_ns: r.duration_ns(),
            })
            .collect();
        Response::Spans { dropped, spans }
    }

    /// The per-session recorder handed to every new session: enabled
    /// iff the server itself carries metrics, and always sharing the
    /// server's tracer — a session's deep phases (parse, index build,
    /// layout, LoD, SVG) join the command trees of the server that
    /// drove them.
    fn session_recorder(&self) -> Recorder {
        let recorder = if self.recorder.is_enabled() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        };
        recorder.with_tracer(self.recorder.tracer().clone())
    }

    fn load_trace(
        &self,
        session: String,
        mode: viva_trace::RecoveryMode,
        text: &str,
        trace_name: Option<String>,
        deadline: &Deadline,
    ) -> Response {
        // A metrics-on server gives each session its own recorder,
        // shared by the loader, index, layout, and frame-cache
        // counters — `stats` reads it back per session.
        let session_recorder = self.session_recorder();
        let loader = TraceLoader::new()
            .mode(mode)
            .budget(self.registry.limits().load_budget)
            .recorder(session_recorder.clone());
        let report = match loader.load_str(text) {
            Ok(report) => report,
            Err(TraceError::BudgetExceeded(breach)) => {
                return err(ErrorKind::BudgetExceeded, breach.to_string())
            }
            Err(e) => return err(ErrorKind::ParseTrace, e.to_string()),
        };
        // Parse and index are paid exactly once, here; the session and
        // every later `attach` share the results through `Arc`s.
        let trace = Arc::new(report.trace.clone());
        let index = Arc::new(AggIndex::build_observed(&trace, &session_recorder));
        let analysis = AnalysisSession::builder(Arc::clone(&trace))
            .shared_index(Arc::clone(&index))
            .recorder(session_recorder)
            .build();
        if deadline.expired() {
            // Checked before the registry insert so a breached load
            // leaves no half-made session behind.
            return self.deadline_exceeded("load_trace", "no session was created");
        }
        let containers = analysis.trace().containers().len() as u64;
        let (start, end) = (analysis.trace().start(), analysis.trace().end());
        // Eviction is deterministic for a given script; the victims'
        // owners find out through a typed `no_session` error on their
        // next command. With a checkpoint directory configured the
        // victims' state survives for `restore`.
        let evicted = self.registry.create(&session, analysis);
        self.checkpoint_evicted(evicted);
        self.update_occupancy();
        // Register into the store (under the explicit name, or the
        // session's) so `attach` and hash re-links can find it.
        let store_name = trace_name.unwrap_or_else(|| session.clone());
        let hash = content_hash(viva_trace::export::to_csv(&trace).as_bytes());
        self.store.insert(
            &store_name,
            StoredTrace {
                trace,
                index: Some(index),
                hash,
                events: report.events as u64,
            },
        );
        Response::Loaded {
            session,
            containers,
            events: report.events as u64,
            dropped: report.dropped as u64,
            quarantined: report.quarantined as u64,
            start,
            end,
            breach: report.breach.map(|b| b.to_string()),
        }
    }

    /// Creates (or replaces) `session` over a stored trace: two `Arc`
    /// clones instead of a parse and an index build. This is what makes
    /// a thousand sessions over one trace cost one trace.
    fn attach(&self, session: String, trace_name: &str, deadline: &Deadline) -> Response {
        let Some(stored) = self.store.get(trace_name) else {
            return err(ErrorKind::NoTrace, format!("trace {trace_name:?} is not loaded"));
        };
        let mut builder = AnalysisSession::builder(Arc::clone(&stored.trace))
            .recorder(self.session_recorder());
        if let Some(index) = &stored.index {
            builder = builder.shared_index(Arc::clone(index));
        }
        let analysis = builder.build();
        if deadline.expired() {
            return self.deadline_exceeded("attach", "no session was created");
        }
        let containers = analysis.trace().containers().len() as u64;
        let (start, end) = (analysis.trace().start(), analysis.trace().end());
        let evicted = self.registry.create(&session, analysis);
        self.checkpoint_evicted(evicted);
        self.update_occupancy();
        self.note("server.attaches");
        Response::Attached {
            session,
            trace: trace_name.to_owned(),
            containers,
            events: stored.events,
            start,
            end,
        }
    }

    /// Rebuilds `session` from an inline checkpoint, or from the
    /// checkpoint directory when none is supplied.
    fn restore(
        &self,
        session: String,
        state: Option<SessionCheckpoint>,
        deadline: &Deadline,
    ) -> Response {
        let ckpt = match state {
            Some(c) => c,
            None => {
                let Some(dir) = &self.registry.limits().checkpoint_dir else {
                    return err(
                        ErrorKind::BadCheckpoint,
                        "no inline state, and the server has no checkpoint directory",
                    );
                };
                let Some(file) = checkpoint_file_name(&session) else {
                    return err(
                        ErrorKind::BadCheckpoint,
                        format!("session name {session:?} cannot name a checkpoint file"),
                    );
                };
                let text = match fs::read_to_string(dir.join(file)) {
                    Ok(t) => t,
                    Err(e) => {
                        return err(
                            ErrorKind::BadCheckpoint,
                            format!("no stored checkpoint for session {session:?}: {e}"),
                        )
                    }
                };
                match SessionCheckpoint::decode(text.trim_end()) {
                    Ok(c) => c,
                    Err(e) => {
                        return err(
                            ErrorKind::BadCheckpoint,
                            format!("stored checkpoint for session {session:?} is unreadable: {e}"),
                        )
                    }
                }
            }
        };
        let session_recorder = self.session_recorder();
        // Prefer re-linking to a stored trace with the same content
        // hash: the restored session then shares the `Arc<Trace>` and
        // index instead of re-parsing the embedded CSV. Only clean
        // checkpoints are eligible (quarantine counters are per-trace
        // state a shared trace cannot carry), and the checkpoint's
        // claimed hash must match its own CSV — a tampered checkpoint
        // must fail the same way on both paths.
        let shared = if ckpt.quarantined.is_empty() && ckpt.ingest_dropped == 0 {
            let found = content_hash(ckpt.trace_csv.as_bytes());
            if hash_token(found) == ckpt.trace_hash {
                self.store.find_by_hash(found)
            } else {
                None
            }
        } else {
            None
        };
        let relinked = shared.and_then(|stored| {
            ckpt.restore_shared(
                Arc::clone(&stored.trace),
                stored.index.clone(),
                session_recorder.clone(),
            )
            .ok()
        });
        let analysis = match relinked {
            Some(a) => {
                self.note("server.restore_relinks");
                a
            }
            None => match ckpt.restore(self.registry.limits().load_budget, session_recorder) {
                Ok(a) => a,
                Err(e) => return err(ErrorKind::BadCheckpoint, e.to_string()),
            },
        };
        if deadline.expired() {
            return self.deadline_exceeded("restore", "no session was created");
        }
        let mut server_session = ServerSession { analysis, live: None };
        // A v3 checkpoint of a live session names its journal: re-link
        // and replay the suffix so streaming picks up where it left
        // off. If the journal is gone or mismatched the session still
        // restores — as a plain batch session — and says why.
        if let Some((journal_id, ckpt_seq)) = &ckpt.journal {
            if let Err(detail) = self.relink_journal(&session, journal_id, *ckpt_seq, &mut server_session)
            {
                self.note("server.journal_relink_misses");
                if self.recorder.is_enabled() {
                    self.recorder.event("server.journal_relink_miss", &format!("{session}: {detail}"));
                }
                server_session.live = None;
            }
        }
        let revision = server_session.analysis.revision();
        let evicted = self.registry.create_session(&session, server_session);
        self.checkpoint_evicted(evicted);
        self.update_occupancy();
        self.note("server.restores");
        Response::Restored { session, revision }
    }

    /// Starts (or re-reports) a graceful drain: checkpoint every live
    /// session, then refuse new work. Idempotent — a second `shutdown`
    /// re-checkpoints and re-answers.
    fn shutdown(&self) -> Response {
        if !self.draining.swap(true, Ordering::SeqCst) {
            self.note("server.drains");
            if self.recorder.is_enabled() {
                self.recorder.event("server.drain", "begin");
            }
        }
        let names = self.registry.names();
        let sessions = names.len() as u64;
        let mut checkpointed = 0u64;
        if self.registry.limits().checkpoint_dir.is_some() {
            for name in names {
                let Some(slot) = self.registry.peek(&name) else { continue };
                let ckpt = {
                    let s = slot.lock();
                    capture_session(&name, &s)
                };
                self.note("server.checkpoints");
                if self.persist_checkpoint(&ckpt) {
                    checkpointed += 1;
                }
            }
        }
        Response::ShutdownStarted { sessions, checkpointed }
    }

    /// Checkpoints LRU-eviction victims to the checkpoint directory
    /// (when configured) before their last handle drops.
    fn checkpoint_evicted(&self, evicted: Vec<(String, Arc<SessionSlot>)>) {
        for (name, slot) in evicted {
            self.note("server.evictions");
            if self.registry.limits().checkpoint_dir.is_some() {
                let ckpt = {
                    let s = slot.lock();
                    capture_session(&name, &s)
                };
                self.note("server.checkpoints");
                self.persist_checkpoint(&ckpt);
            }
        }
    }

    /// Writes a checkpoint to the checkpoint directory. Returns whether
    /// a file was written; persistence failures are observable (counter
    /// and event) but never fail the command — the inline checkpoint in
    /// the response is still good.
    fn persist_checkpoint(&self, ckpt: &SessionCheckpoint) -> bool {
        let Some(dir) = &self.registry.limits().checkpoint_dir else {
            return false;
        };
        let Some(file) = checkpoint_file_name(&ckpt.session) else {
            if self.recorder.is_enabled() {
                self.recorder.event("server.checkpoint_skipped", &ckpt.session);
            }
            return false;
        };
        let written = fs::create_dir_all(dir)
            .and_then(|()| fs::write(dir.join(file), format!("{}\n", ckpt.encode())))
            .is_ok();
        if !written {
            self.note("server.checkpoint_io_errors");
            if self.recorder.is_enabled() {
                self.recorder.event("server.checkpoint_io_error", &ckpt.session);
            }
        }
        written
    }

    /// Handles `append`: the durable streaming ingest path.
    ///
    /// Ordering contract (at-least-once): validate, **journal**, then
    /// apply, then acknowledge. A crash after the journal write but
    /// before the ack costs the client one resend, which the duplicate
    /// check acknowledges harmlessly — an acked event is never lost,
    /// and recovery replays exactly what the journal holds.
    fn append(&self, name: String, seq: u64, text: &str) -> Response {
        if let Some(handle) = self.registry.get(&name) {
            let mut s = match self.lock_admitted(&handle) {
                Ok(g) => g,
                Err(resp) => return resp,
            };
            let response = self.append_existing(&name, &mut s, seq, text);
            handle.publish_revision(s.analysis.revision());
            return response;
        }
        if seq != 1 {
            return err(
                ErrorKind::NoSession,
                format!("session {name:?} does not exist; a new stream starts at seq 1"),
            );
        }
        self.append_first(name, text)
    }

    /// `append` seq 1 for an unknown session: creates the live
    /// session — and its journal — from the first event text.
    fn append_first(&self, name: String, text: &str) -> Response {
        let session_recorder = self.session_recorder();
        let analysis = self.build_live_analysis(text, &session_recorder);
        let mut journal = match self.create_journal(&name) {
            Ok(j) => j,
            Err(resp) => return resp,
        };
        // Journal before ack: the record is durable before any state
        // exists that could acknowledge it.
        if let Some(j) = &mut journal {
            if let Err(e) = j.append(1, text) {
                return err(ErrorKind::JournalIo, format!("journal append failed: {e}"));
            }
        }
        let live = LiveStream {
            journal,
            last_seq: 1,
            text: text.to_owned(),
            span: live::span_after(text),
            sealed: false,
            last_view: None,
        };
        let revision = analysis.revision();
        let evicted =
            self.registry.create_session(&name, ServerSession { analysis, live: Some(live) });
        self.checkpoint_evicted(evicted);
        self.update_occupancy();
        self.note("server.appends");
        Response::Appended { session: name, seq: 1, revision, duplicate: false }
    }

    /// `append` on an existing session: idempotent by sequence number,
    /// contiguous, journaled before acknowledgement.
    fn append_existing(&self, name: &str, s: &mut ServerSession, seq: u64, text: &str) -> Response {
        {
            let Some(live) = s.live.as_mut() else {
                return err(
                    ErrorKind::NotLive,
                    format!("session {name:?} was not created by append; it cannot stream"),
                );
            };
            if seq == 0 {
                return err(ErrorKind::BadArgument, "sequence numbers start at 1");
            }
            if seq <= live.last_seq {
                // At-least-once delivery: a resend of an acked event
                // is acknowledged again and not re-applied. Checked
                // before the seal so retries of a sealed stream's
                // final events stay idempotent.
                self.note("server.append_duplicates");
                return Response::Appended {
                    session: name.to_owned(),
                    seq,
                    revision: s.analysis.revision(),
                    duplicate: true,
                };
            }
            if live.sealed {
                return err(
                    ErrorKind::SessionSealed,
                    format!("session {name:?} is sealed; the stream has ended"),
                );
            }
            if seq != live.last_seq + 1 {
                let expected = live.last_seq + 1;
                return err(
                    ErrorKind::SeqGap { expected },
                    format!("append skipped ahead: got seq {seq}, expected {expected}"),
                );
            }
            if let Some(j) = &mut live.journal {
                // Covers the write *and* any `sync_every` fsync — the
                // durability cost an append profile must show.
                let _j = self.recorder.tracer().phase("journal.append");
                if let Err(e) = j.append(seq, text) {
                    return err(ErrorKind::JournalIo, format!("journal append failed: {e}"));
                }
            }
        }
        self.apply_live_text(s, text);
        s.live.as_mut().expect("checked live above").last_seq = seq;
        self.note("server.appends");
        let revision = s.analysis.revision();
        self.publish_delta(name, s, seq);
        Response::Appended { session: name.to_owned(), seq, revision, duplicate: false }
    }

    /// Loads live-stream text into a fresh analysis session. Live
    /// content is *defined* as the lenient, unbudgeted load of the
    /// acked texts in sequence order — the rebuild path and crash
    /// recovery agree with the incremental path because all three are
    /// this function (or the classifier that mirrors it line-exactly).
    fn build_live_analysis(&self, text: &str, recorder: &Recorder) -> AnalysisSession {
        let loader = TraceLoader::new()
            .mode(RecoveryMode::Lenient)
            .budget(ResourceBudget::unlimited())
            .recorder(recorder.clone());
        let report = loader
            .load_str(text)
            .expect("a lenient load with an unlimited budget recovers from anything");
        let trace = Arc::new(report.trace.clone());
        let index = Arc::new(AggIndex::build_observed(&trace, recorder));
        AnalysisSession::builder(Arc::clone(&trace))
            .shared_index(index)
            .recorder(recorder.clone())
            .build()
    }

    /// Opens the journal for a new live session, or `None` when the
    /// server has no journal directory. Session names that cannot
    /// safely name a file are refused outright — silently dropping
    /// durability would betray the ack contract.
    fn create_journal(&self, name: &str) -> Result<Option<JournalWriter>, Response> {
        let Some(dir) = &self.registry.limits().journal_dir else { return Ok(None) };
        if checkpoint_file_name(name).is_none() {
            return Err(err(
                ErrorKind::BadArgument,
                format!("session name {name:?} cannot name a journal file"),
            ));
        }
        if let Err(e) = fs::create_dir_all(dir) {
            return Err(err(
                ErrorKind::JournalIo,
                format!("cannot create journal directory {}: {e}", dir.display()),
            ));
        }
        let config = JournalConfig { sync_every: self.registry.limits().journal_sync_every };
        match JournalWriter::create(&dir.join(format!("{name}.journal")), name, config) {
            Ok(w) => Ok(Some(w.with_recorder(self.recorder.clone()))),
            Err(e) => Err(err(ErrorKind::JournalIo, format!("cannot create journal: {e}"))),
        }
    }

    /// Applies one event text to a live session: each line is
    /// classified against the current trace and applied incrementally;
    /// the first structural record (new container, metric, span, ...)
    /// escalates to a rebuild from the accumulated text, which is the
    /// authoritative definition of live content. Extends the
    /// accumulated text first so the rebuild sees the whole stream.
    fn apply_live_text(&self, s: &mut ServerSession, text: &str) {
        {
            let live = s.live.as_mut().expect("live session");
            if !live.text.is_empty() && !live.text.ends_with('\n') {
                live.text.push('\n');
            }
            live.text.push_str(text);
        }
        let mut structural = false;
        for raw in text.lines() {
            let span = s.live.as_ref().expect("live session").span;
            match live::classify(s.analysis.trace(), span, raw) {
                LiveLine::Skip => {}
                LiveLine::Sample { container, metric, t, v } => {
                    if s.analysis.live_apply_sample(container, metric, t, v).is_err() {
                        // `classify` mirrors the loader's checks, so a
                        // failure here is a record the lenient loader
                        // would have dropped too.
                        s.analysis.live_note_dropped();
                    }
                }
                LiveLine::Quarantine { container, metric } => {
                    s.analysis.live_quarantine_sample(container, metric);
                }
                LiveLine::Drop => s.analysis.live_note_dropped(),
                LiveLine::Structural => {
                    structural = true;
                    break;
                }
            }
        }
        if structural {
            self.rebuild_live(s);
        }
    }

    /// Rebuilds a live session from its accumulated text — the
    /// structural-record slow path. The analyst's interaction state
    /// (collapse set, pins, sliders, slice) survives via
    /// [`AnalysisSession::rebase`].
    fn rebuild_live(&self, s: &mut ServerSession) {
        self.note("server.live_rebuilds");
        let recorder = s.analysis.recorder().clone();
        let loader = TraceLoader::new()
            .mode(RecoveryMode::Lenient)
            .budget(ResourceBudget::unlimited())
            .recorder(recorder.clone());
        let live = s.live.as_mut().expect("live session");
        let report = loader
            .load_str(&live.text)
            .expect("a lenient load with an unlimited budget recovers from anything");
        let trace = Arc::new(report.trace.clone());
        let index = Arc::new(AggIndex::build_observed(&trace, &recorder));
        live.span = live::span_after(&live.text);
        s.analysis.rebase(trace, Some(index));
    }

    /// Publishes one applied append to the session's subscribers:
    /// computes the view delta against the stream's last published
    /// view and enqueues it on every subscriber queue. Runs under the
    /// session lock so the delta corresponds to exactly this sequence
    /// number; sessions without subscribers skip the view extraction
    /// entirely (the no-subscriber append fast path).
    fn publish_delta(&self, name: &str, s: &mut ServerSession, seq: u64) {
        {
            let tbl = self.conns();
            if tbl.subs.get(name).is_none_or(|v| v.is_empty()) {
                return;
            }
        }
        let _push = self.recorder.tracer().phase("subscriber.push");
        let view = s.analysis.view();
        let revision = s.analysis.revision();
        let live = s.live.as_mut().expect("publish_delta is only called on live sessions");
        let (changed, removed) = diff_views(live.last_view.as_ref(), &view);
        let push = Push::Delta { session: name.to_owned(), seq, revision, changed, removed };
        live.last_view = Some(view);
        self.enqueue_push(name, seq, &push.encode());
    }

    /// Handles `subscribe` under the session lock, so the catch-up
    /// snapshot corresponds exactly to the stream's `last_seq`.
    fn subscribe(
        &self,
        conn: Option<u64>,
        name: &str,
        s: &mut ServerSession,
        from_seq: Option<u64>,
    ) -> Response {
        let Some(conn) = conn else {
            return err(
                ErrorKind::Protocol,
                "subscribe requires a transport connection that can carry pushes",
            );
        };
        let Some(live) = s.live.as_ref() else {
            return err(
                ErrorKind::NotLive,
                format!("session {name:?} was not created by append; it cannot stream"),
            );
        };
        let last_seq = live.last_seq;
        {
            let mut tbl = self.conns();
            if !tbl.queues.contains_key(&conn) {
                return err(ErrorKind::Protocol, "subscribe on an unregistered connection");
            }
            let entries = tbl.subs.entry(name.to_owned()).or_default();
            if !entries.iter().any(|e| e.conn == conn) {
                entries.push(SubEntry { conn, low_seq: None });
            }
        }
        // Catch-up snapshot: everything at or before `last_seq` the
        // subscriber has not seen is covered by one full-view delta.
        // A subscriber that is already current (`from_seq ==
        // last_seq + 1`) skips it and just receives future deltas.
        let wants_snapshot = from_seq.is_none_or(|f| f <= last_seq);
        let view = s.analysis.view();
        let revision = s.analysis.revision();
        if wants_snapshot {
            let (changed, removed) = diff_views(None, &view);
            let push = Push::Delta {
                session: name.to_owned(),
                seq: last_seq,
                revision,
                changed,
                removed,
            };
            self.enqueue_push_for(conn, name, last_seq, push.encode());
        }
        // Refresh the diff base: if appends ran while nobody was
        // subscribed, the stored view predates them.
        s.live.as_mut().expect("checked live above").last_view = Some(view);
        self.note("server.subscribes");
        Response::Subscribed { session: name.to_owned(), last_seq }
    }

    /// Scans the journal directory and rebuilds a live session from
    /// every journal found — the crash-recovery startup step. Each
    /// journal is recovered (truncating any torn tail), then its
    /// records are replayed through the ordinary live apply path, so a
    /// recovered session is indistinguishable — same revision, same
    /// renders — from one that took the same appends without a crash.
    /// Returns the recovered session names, sorted.
    pub fn recover_journals(&self) -> Vec<String> {
        let Some(dir) = self.registry.limits().journal_dir.clone() else {
            return Vec::new();
        };
        let Ok(entries) = fs::read_dir(&dir) else { return Vec::new() };
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "journal"))
            .collect();
        paths.sort();
        let config = JournalConfig { sync_every: self.registry.limits().journal_sync_every };
        let mut names = Vec::new();
        for path in paths {
            let (writer, recovered) = match JournalWriter::recover(&path, config) {
                Ok(r) => r,
                Err(e) => {
                    self.note("server.journal_recovery_errors");
                    if self.recorder.is_enabled() {
                        self.recorder
                            .event("server.journal_recovery_error", &format!("{}: {e}", path.display()));
                    }
                    continue;
                }
            };
            self.note("server.journal_recoveries");
            if recovered.truncated_bytes > 0 {
                self.note("journal.recovery_truncations");
            }
            let writer = writer.with_recorder(self.recorder.clone());
            let name = recovered.id.clone();
            let Some(first) = recovered.records.first() else {
                // Header-only journal: a stream that never acked an
                // event has no state to rebuild.
                continue;
            };
            let session_recorder = self.session_recorder();
            let analysis = self.build_live_analysis(&first.text, &session_recorder);
            let mut s = ServerSession {
                analysis,
                live: Some(LiveStream {
                    journal: Some(writer),
                    last_seq: first.seq,
                    text: first.text.clone(),
                    span: live::span_after(&first.text),
                    sealed: false,
                    last_view: None,
                }),
            };
            for rec in &recovered.records[1..] {
                self.apply_live_text(&mut s, &rec.text);
                s.live.as_mut().expect("live").last_seq = rec.seq;
            }
            if recovered.sealed {
                s.live.as_mut().expect("live").sealed = true;
            }
            let evicted = self.registry.create_session(&name, s);
            self.checkpoint_evicted(evicted);
            names.push(name);
        }
        self.update_occupancy();
        names.sort();
        names
    }

    /// Re-attaches a restored session to its journal: recover the
    /// file, replay every record after the checkpoint's `last_seq`
    /// through the ordinary live apply path, and install the live
    /// stream. On any failure the caller restores a plain batch
    /// session instead — the view state is intact, only streaming
    /// continuity is lost.
    fn relink_journal(
        &self,
        session: &str,
        journal_id: &str,
        ckpt_seq: u64,
        s: &mut ServerSession,
    ) -> Result<(), String> {
        let Some(dir) = &self.registry.limits().journal_dir else {
            return Err("the server has no journal directory".into());
        };
        if checkpoint_file_name(session).is_none() {
            return Err(format!("session name {session:?} cannot name a journal file"));
        }
        let path = dir.join(format!("{session}.journal"));
        let config = JournalConfig { sync_every: self.registry.limits().journal_sync_every };
        let (writer, recovered) = JournalWriter::recover(&path, config)
            .map_err(|e| format!("journal recovery failed: {e}"))?;
        if recovered.id != journal_id {
            return Err(format!(
                "journal id {:?} does not match the checkpoint's {journal_id:?}",
                recovered.id
            ));
        }
        if recovered.last_seq() < ckpt_seq {
            return Err(format!(
                "journal ends at seq {} but the checkpoint is at seq {ckpt_seq}",
                recovered.last_seq()
            ));
        }
        let writer = writer.with_recorder(self.recorder.clone());
        s.live = Some(LiveStream {
            journal: Some(writer),
            last_seq: ckpt_seq,
            text: String::new(),
            span: None,
            sealed: recovered.sealed,
            last_view: None,
        });
        // The accumulated text is rebuilt from the journal (the
        // checkpoint carries canonical CSV, not the original event
        // texts): records the checkpoint already covers only extend
        // the text; records after it are applied too.
        {
            let live = s.live.as_mut().expect("just installed");
            for rec in recovered.records.iter().filter(|r| r.seq <= ckpt_seq) {
                if !live.text.is_empty() && !live.text.ends_with('\n') {
                    live.text.push('\n');
                }
                live.text.push_str(&rec.text);
            }
            live.span = live::span_after(&live.text);
        }
        for rec in recovered.records.iter().filter(|r| r.seq > ckpt_seq) {
            self.apply_live_text(s, &rec.text);
            s.live.as_mut().expect("live").last_seq = rec.seq;
        }
        self.note("server.journal_relinks");
        Ok(())
    }

    /// Dispatches the commands that operate on an existing session.
    fn with_session(&self, conn: Option<u64>, cmd: Command, deadline: &Deadline) -> Response {
        let name = match session_name(&cmd) {
            Some(n) => n.to_owned(),
            None => return err(ErrorKind::Protocol, "command carries no session"),
        };
        let Some(handle) = self.registry.get(&name) else {
            return err(ErrorKind::NoSession, format!("session {name:?} does not exist"));
        };
        // Cached-render fast path: answered from the slot's frame
        // cache and revision mirror without ever taking the session
        // lock, so repeat renders on a hot session never queue behind
        // a slow command (and the registry lock was only held for the
        // name lookup above). A stale mirror can only cause a cache
        // miss — the locked path below re-checks authoritatively.
        if let Command::Render { width, height, theme, labels, zoom, pan_x, pan_y, .. } = &cmd {
            if let Ok(viewport) =
                render_viewport(*width, *height, *theme, *labels, *zoom, *pan_x, *pan_y)
            {
                let revision = handle.revision();
                let key = crate::cache::FrameKey::new(revision, &viewport);
                if let Some(svg) = handle.frames().lookup(&key) {
                    if handle.recorder().is_enabled() {
                        handle.recorder().counter("cache.hits").inc();
                    }
                    return Response::Frame { revision, cached: true, svg };
                }
            }
        }
        let mut s = {
            let _wait = self.recorder.tracer().phase("session.lock");
            match self.lock_admitted(&handle) {
                Ok(g) => g,
                Err(resp) => return resp,
            }
        };
        let response = self.session_command(conn, &name, &handle, &mut s, cmd, deadline);
        // Publish the (possibly bumped) revision for lock-free readers
        // while the session lock is still held, so a fast-path reader
        // never sees a mirror *ahead* of the frames the cache holds.
        handle.publish_revision(s.analysis.revision());
        response
    }

    /// One session-scoped command, run under the session lock. `conn`
    /// is the transport connection carrying the command, when there is
    /// one — `subscribe` needs it to know where pushes go.
    fn session_command(
        &self,
        conn: Option<u64>,
        name: &str,
        handle: &Arc<SessionSlot>,
        s: &mut ServerSession,
        cmd: Command,
        deadline: &Deadline,
    ) -> Response {
        match cmd {
            Command::SetTimeSlice { start, end, .. } => {
                match s.analysis.try_set_time_slice(start, end) {
                    Ok(slice) => Response::Slice { start: slice.start(), end: slice.end() },
                    Err(e) => session_error(e),
                }
            }
            Command::Collapse { container, .. } => match container_id(s, &container) {
                Ok(id) => match s.analysis.collapse(id) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Expand { container, .. } => match container_id(s, &container) {
                Ok(id) => match s.analysis.expand(id) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::CollapseAtDepth { depth, .. } => {
                s.analysis.collapse_at_depth(depth);
                Response::Done { revision: s.analysis.revision() }
            }
            Command::ExpandAll { .. } => {
                s.analysis.expand_all();
                Response::Done { revision: s.analysis.revision() }
            }
            Command::SetForces { repulsion, spring, damping, .. } => {
                let cfg = s.analysis.layout_config_mut();
                if let Some(r) = repulsion {
                    cfg.repulsion = r;
                }
                if let Some(k) = spring {
                    cfg.spring = k;
                }
                if let Some(d) = damping {
                    cfg.damping = d;
                }
                // The slider trust boundary: hostile values are
                // repaired, not rejected, and the effective
                // configuration is echoed back.
                *cfg = cfg.sanitized();
                Response::Forces {
                    repulsion: cfg.repulsion,
                    spring: cfg.spring,
                    damping: cfg.damping,
                }
            }
            Command::SetScaling { group, factor, .. } => {
                if !(factor.is_finite() && factor >= 0.0) {
                    return err(
                        ErrorKind::BadArgument,
                        format!("scaling factor {factor} must be finite and non-negative"),
                    );
                }
                s.analysis.scaling_mut().set_slider(group, factor);
                Response::Done { revision: s.analysis.revision() }
            }
            Command::Drag { container, x, y, .. } => match container_id(s, &container) {
                Ok(id) => match s.analysis.drag(id, Vec2::new(x, y)) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Release { container, .. } => match container_id(s, &container) {
                Ok(id) => match s.analysis.release(id) {
                    Ok(()) => Response::Done { revision: s.analysis.revision() },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Relax { steps, .. } => {
                let budget = self.registry.limits().max_relax_steps;
                let want = steps.min(budget) as usize;
                let executed = if self.registry.limits().deadlines.relax_ms.is_some() {
                    // Chunked so the deadline is checked between
                    // batches. A breach abandons the *remaining* steps:
                    // completed chunks are ordinary relax progress and
                    // the session stays at its last consistent
                    // revision. (Chunking bumps the revision once per
                    // chunk instead of once per command, which is why
                    // it only runs when a relax deadline is opted in.)
                    let mut done = 0usize;
                    loop {
                        let left = want - done;
                        if left == 0 {
                            break;
                        }
                        if deadline.expired() {
                            return self.deadline_exceeded(
                                "relax",
                                &format!(
                                    "stopped after {done} of {want} steps; the session is at \
                                     its last consistent revision"
                                ),
                            );
                        }
                        let chunk = left.min(RELAX_DEADLINE_CHUNK);
                        let ran = s.analysis.relax(chunk);
                        done += ran;
                        if ran < chunk {
                            break; // converged or frozen
                        }
                    }
                    done
                } else {
                    s.analysis.relax(want)
                } as u64;
                Response::Relaxed {
                    steps: executed,
                    frozen: s.analysis.layout_freeze_reason().map(|r| r.to_string()),
                }
            }
            Command::Aggregate { metric, group, .. } => match container_id(s, &group) {
                Ok(id) => match s.analysis.aggregate(&metric, id) {
                    Ok(agg) => Response::Aggregated {
                        members: agg.members as u64,
                        integral: agg.integral,
                        mean: agg.summary.mean,
                        min: agg.summary.min,
                        max: agg.summary.max,
                        median: agg.summary.median,
                        quarantined: agg.quarantined,
                        empty: agg.is_empty(),
                    },
                    Err(e) => session_error(e),
                },
                Err(resp) => resp,
            },
            Command::Render { width, height, theme, labels, zoom, pan_x, pan_y, .. } => {
                let viewport = match render_viewport(width, height, theme, labels, zoom, pan_x, pan_y)
                {
                    Ok(vp) => vp,
                    Err(resp) => return resp,
                };
                let revision = s.analysis.revision();
                let key = crate::cache::FrameKey::new(revision, &viewport);
                let obs = s.analysis.recorder().is_enabled().then(|| s.analysis.recorder().clone());
                // Authoritative re-check: the lock-free probe in
                // `with_session` may have missed on a stale revision.
                if let Some(svg) = handle.frames().get(&key) {
                    if let Some(rec) = &obs {
                        rec.counter("cache.hits").inc();
                    }
                    return Response::Frame { revision, cached: true, svg };
                }
                let svg = s.analysis.render(&viewport);
                if deadline.expired() {
                    // Too late to be useful: the frame is abandoned and
                    // stays out of the cache (a cached frame must mean
                    // "served within budget").
                    return self.deadline_exceeded("render", "the frame was abandoned");
                }
                let evicted = {
                    let mut frames = handle.frames();
                    let before = frames.evictions();
                    frames.insert(key, svg.clone());
                    frames.evictions() - before
                };
                if let Some(rec) = &obs {
                    rec.counter("cache.misses").inc();
                    rec.counter("cache.evictions").add(evicted);
                }
                Response::Frame { revision, cached: false, svg }
            }
            Command::Checkpoint { .. } => {
                let ckpt = capture_session(name, s);
                self.note("server.checkpoints");
                self.persist_checkpoint(&ckpt);
                Response::Checkpointed { session: name.to_owned(), state: Box::new(ckpt) }
            }
            Command::Seal { .. } => {
                let Some(live) = s.live.as_mut() else {
                    return err(
                        ErrorKind::NotLive,
                        format!("session {name:?} was not created by append; it cannot stream"),
                    );
                };
                if !live.sealed {
                    if let Some(j) = &mut live.journal {
                        if let Err(e) = j.seal() {
                            return err(ErrorKind::JournalIo, format!("journal seal failed: {e}"));
                        }
                    }
                    live.sealed = true;
                    self.note("server.seals");
                }
                // Idempotent: re-sealing re-answers with the same
                // final sequence number.
                Response::Sealed { session: name.to_owned(), last_seq: live.last_seq }
            }
            Command::Subscribe { from_seq, .. } => self.subscribe(conn, name, s, from_seq),
            // Session-free commands — and `append`, which must work
            // before the session exists — are handled by `dispatch`.
            Command::Ping
            | Command::Sessions
            | Command::CloseSession { .. }
            | Command::LoadTrace { .. }
            | Command::Attach { .. }
            | Command::ListTraces
            | Command::DropTrace { .. }
            | Command::Stats { .. }
            | Command::Spans { .. }
            | Command::Restore { .. }
            | Command::Append { .. }
            | Command::Shutdown => unreachable!("handled by dispatch"),
        }
    }

    /// Pumps `reader` to `writer`: one response line per request line,
    /// until EOF. I/O errors end the loop (the connection is gone);
    /// content never does. Two hardening behaviours:
    ///
    /// * a **torn frame** — bytes that end without a newline (a client
    ///   that died mid-command, or trickled half a frame until the
    ///   read timeout) — is *never* executed; the connection ends and
    ///   the fragment is dropped (`server.torn_frames`);
    /// * once a **drain** starts, the loop finishes the in-flight
    ///   command, writes its response, and ends the connection.
    pub fn serve<R: BufRead, W: Write>(&self, reader: R, writer: W) -> io::Result<()> {
        let conn = self.open_conn();
        let result = self.serve_conn(conn, reader, writer);
        self.close_conn(conn);
        result
    }

    /// [`serve`](Self::serve) on an already-registered connection —
    /// the caller owns `open_conn`/`close_conn`. Queued pushes
    /// (subscription deltas, lagging notices) drain after each
    /// response, so within one connection a push never lands between a
    /// request and its response.
    fn serve_conn<R: BufRead, W: Write>(
        &self,
        conn: u64,
        mut reader: R,
        mut writer: W,
    ) -> io::Result<()> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = match reader.read_line(&mut line) {
                Ok(n) => n,
                Err(e) => {
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
                        // The read timeout fired: a slow-loris peer (or
                        // a stalled one) loses its connection, not a
                        // worker thread.
                        self.note("server.io_timeouts");
                    }
                    return Err(e);
                }
            };
            if n == 0 {
                return Ok(()); // clean EOF between frames
            }
            if !line.ends_with('\n') {
                self.note("server.torn_frames");
                if self.recorder.is_enabled() {
                    self.recorder.event("server.torn_frame", "dropped");
                }
                return Ok(());
            }
            if let Some(response) = self.handle_line_on(Some(conn), &line) {
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            for push in self.take_pushes(conn) {
                writer.write_all(push.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            writer.flush()?;
            if self.is_draining() {
                return Ok(());
            }
        }
    }

    /// Serves a single analyst over stdin/stdout until EOF.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.serve(stdin.lock(), stdout.lock())
    }
}

/// The session name a command addresses, if any.
fn session_name(cmd: &Command) -> Option<&str> {
    match cmd {
        Command::Ping
        | Command::Sessions
        | Command::Stats { .. }
        | Command::Spans { .. }
        | Command::ListTraces
        | Command::DropTrace { .. }
        | Command::Shutdown => None,
        Command::CloseSession { session }
        | Command::LoadTrace { session, .. }
        | Command::Attach { session, .. }
        | Command::SetTimeSlice { session, .. }
        | Command::Collapse { session, .. }
        | Command::Expand { session, .. }
        | Command::CollapseAtDepth { session, .. }
        | Command::ExpandAll { session }
        | Command::SetForces { session, .. }
        | Command::SetScaling { session, .. }
        | Command::Drag { session, .. }
        | Command::Release { session, .. }
        | Command::Relax { session, .. }
        | Command::Aggregate { session, .. }
        | Command::Render { session, .. }
        | Command::Checkpoint { session }
        | Command::Restore { session, .. }
        | Command::Append { session, .. }
        | Command::Seal { session }
        | Command::Subscribe { session, .. } => Some(session),
    }
}

/// Commands still answered during a drain: liveness, observability,
/// state export, and the drain itself. Everything else is shed.
fn drain_exempt(cmd: &Command) -> bool {
    matches!(
        cmd,
        Command::Ping
            | Command::Stats { .. }
            | Command::Spans { .. }
            | Command::ListTraces
            | Command::Checkpoint { .. }
            | Command::Shutdown
    )
}

/// Connections one shard accepts per loop tick. Bounded so draining a
/// deep accept backlog cannot starve the shard's live connections.
const ACCEPT_BURST: usize = 64;

/// Bytes a connection's write buffer may hold before the shard stops
/// reading new requests from it — natural pipelining backpressure. A
/// peer that never reads its responses eventually trips the io
/// timeout instead of growing the buffer without bound.
const WRITE_HIGH_WATER: usize = 8 << 20;

/// One client connection owned by a shard: the non-blocking socket
/// plus its buffers and activity clock. Requests accumulate in
/// `read_buf` until a newline completes a frame; responses accumulate
/// in `write_buf` and drain as the socket accepts them — neither side
/// ever blocks the shard.
struct Conn {
    /// The server-side connection id ([`Server::open_conn`]) — the
    /// address subscription pushes are queued under.
    id: u64,
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// How far `read_buf` has been scanned without finding a newline,
    /// so a large frame arriving in many chunks is scanned once.
    scan_from: usize,
    /// Last byte received (io-timeout bookkeeping).
    last_activity: Instant,
    /// Flush what we owe, then close: EOF seen, protocol violation,
    /// or drain.
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream, id: u64) -> Conn {
        Conn {
            id,
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            scan_from: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
        }
    }
}

/// Serves `listener` with an event-driven readiness loop across
/// `workers` shard threads. Each shard owns a set of connections and
/// multiplexes all of them: per tick it accepts a bounded burst of new
/// sockets, flushes pending responses, drains readable sockets, and
/// executes **every complete NDJSON frame** the reads produced — so a
/// pipelining client gets many commands answered per syscall round.
/// All shards share the server (and thus its sessions and traces):
/// two analysts can connect separately and collaborate in one named
/// session.
///
/// Sockets are non-blocking throughout; readiness is emulated with a
/// short sleep when a full tick makes no progress (a std-only poll
/// shim — no external event API, same observable semantics). Once
/// [`Command::Shutdown`] runs, each shard flushes what it owes,
/// closes its connections, answers any backlog with one `overloaded`
/// line each, and exits. Joining the returned handles is therefore a
/// complete graceful shutdown.
pub fn serve_tcp(
    listener: TcpListener,
    workers: usize,
    server: Arc<Server>,
) -> Vec<JoinHandle<()>> {
    let _ = listener.set_nonblocking(true);
    let listener = Arc::new(listener);
    (0..workers.max(1))
        .map(|i| {
            let listener = Arc::clone(&listener);
            let server = Arc::clone(&server);
            thread::Builder::new()
                .name(format!("viva-server-shard-{i}"))
                .spawn(move || shard_loop(i as u16, &listener, &server))
                .expect("spawn shard thread")
        })
        .collect()
}

/// One shard's readiness loop: accept, flush, read, execute — until
/// the listener dies or a drain completes.
fn shard_loop(shard: u16, listener: &TcpListener, server: &Server) {
    // Root spans of commands this worker executes carry its index.
    SHARD.set(shard);
    let io_timeout = server
        .registry()
        .limits()
        .io_timeout_ms
        .map(|ms| Duration::from_millis(ms.max(1)));
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    loop {
        if server.is_draining() {
            drain_shard(server, listener, &mut conns);
            return;
        }
        let mut progressed = false;
        for _ in 0..ACCEPT_BURST {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if stream.set_nonblocking(true).is_ok() {
                        conns.push(Conn::new(stream, server.open_conn()));
                        progressed = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // The listener is gone; drop the shard's connections.
                Err(_) => return,
            }
        }
        let mut idx = 0;
        while idx < conns.len() {
            match pump_conn(server, &mut conns[idx], &mut scratch, io_timeout) {
                (true, worked) => {
                    progressed |= worked;
                    idx += 1;
                }
                (false, worked) => {
                    progressed |= worked;
                    server.close_conn(conns[idx].id);
                    conns.swap_remove(idx);
                }
            }
            if server.is_draining() {
                break; // handled at the top of the loop
            }
        }
        if !progressed {
            // The poll shim: nothing readable, writable, or acceptable
            // this tick — yield the CPU briefly instead of spinning.
            thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Winds one shard down: flush every connection's pending responses
/// (briefly, best-effort — a peer that stopped reading cannot hold
/// the drain hostage), then answer the accept backlog with one typed
/// refusal each.
fn drain_shard(server: &Server, listener: &TcpListener, conns: &mut Vec<Conn>) {
    for mut conn in conns.drain(..) {
        server.close_conn(conn.id);
        let give_up = Instant::now() + Duration::from_millis(250);
        while !conn.write_buf.is_empty() && Instant::now() < give_up {
            match conn.stream.write(&conn.write_buf) {
                Ok(0) => break,
                Ok(n) => {
                    conn.write_buf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }
    while let Ok((mut stream, _addr)) = listener.accept() {
        // Accepted after the drain began: one typed refusal, then
        // close — the client's retry logic takes it from here.
        let resp = server.shed("server is draining; connection refused");
        let _ = stream.set_nonblocking(false);
        let _ = stream.write_all(format!("{}\n", resp.encode()).as_bytes());
    }
}

/// One tick of one connection. Returns `(keep, made_progress)`.
fn pump_conn(
    server: &Server,
    conn: &mut Conn,
    scratch: &mut [u8],
    io_timeout: Option<Duration>,
) -> (bool, bool) {
    let mut worked = false;
    // Flush first: pipelined clients read while we keep working, and
    // a response from a previous tick must not wait behind new reads.
    if !flush_write(conn, &mut worked) {
        return (false, worked);
    }
    // Read until the socket runs dry — unless the peer owes us reads
    // (write high-water backpressure) or is already closing.
    let mut eof = false;
    if !conn.close_after_flush && conn.write_buf.len() < WRITE_HIGH_WATER {
        loop {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    eof = true;
                    worked = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = Instant::now();
                    worked = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return (false, true),
            }
        }
    }
    // Slow-loris defence: a peer that trickles half a frame (or stops
    // reading its responses) loses the connection, not a shard.
    if let Some(t) = io_timeout {
        if !conn.close_after_flush && !eof && conn.last_activity.elapsed() >= t {
            server.note("server.io_timeouts");
            return (false, worked);
        }
    }
    worked |= process_frames(server, conn);
    // Drain queued subscription pushes (deltas published by *other*
    // connections' appends included) into the write buffer — but only
    // below the high-water mark: a subscriber that stops reading keeps
    // its pushes in the bounded queue, overflows it, and is shed with
    // `lagging`. Memory stays bounded and appenders never block.
    if !conn.close_after_flush && conn.write_buf.len() < WRITE_HIGH_WATER {
        for push in server.take_pushes(conn.id) {
            conn.write_buf.extend_from_slice(push.as_bytes());
            conn.write_buf.push(b'\n');
            worked = true;
        }
    }
    if eof && !conn.close_after_flush {
        if !conn.read_buf.is_empty() {
            // Bytes that end without a newline are a torn frame:
            // never executed, observably dropped.
            server.note("server.torn_frames");
            if server.recorder().is_enabled() {
                server.recorder().event("server.torn_frame", "dropped");
            }
            conn.read_buf.clear();
            conn.scan_from = 0;
        }
        conn.close_after_flush = true;
    }
    if !flush_write(conn, &mut worked) {
        return (false, worked);
    }
    if conn.close_after_flush && conn.write_buf.is_empty() {
        return (false, worked);
    }
    (true, worked)
}

/// Executes every complete frame batched in `read_buf` — the
/// pipelining payoff: one read syscall round, many commands answered.
fn process_frames(server: &Server, conn: &mut Conn) -> bool {
    let mut worked = false;
    let mut consumed = 0usize;
    let mut rest_has_no_newline = false;
    loop {
        let search_from = consumed.max(conn.scan_from);
        let Some(rel) = conn.read_buf[search_from..].iter().position(|&b| b == b'\n') else {
            rest_has_no_newline = true;
            break;
        };
        let end = search_from + rel;
        worked = true;
        match std::str::from_utf8(&conn.read_buf[consumed..=end]) {
            Ok(text) => {
                if let Some(response) = server.handle_line_on(Some(conn.id), text) {
                    conn.write_buf.extend_from_slice(response.as_bytes());
                    conn.write_buf.push(b'\n');
                }
            }
            Err(_) => {
                // Invalid UTF-8 cannot carry a protocol command; end
                // the connection (the blocking transport's read_line
                // failed the same way).
                conn.close_after_flush = true;
                consumed = end + 1;
                break;
            }
        }
        consumed = end + 1;
        if server.is_draining() {
            // The drain response is owed; the rest of the batch is
            // refused by closing, exactly like the blocking loop.
            conn.close_after_flush = true;
            break;
        }
    }
    if consumed > 0 {
        conn.read_buf.drain(..consumed);
    }
    conn.scan_from = if rest_has_no_newline { conn.read_buf.len() } else { 0 };
    // An unterminated fragment larger than any legal frame can never
    // complete: answer the protocol error once and close.
    let max_line = server.registry().limits().max_line_bytes;
    if rest_has_no_newline && !conn.close_after_flush && conn.read_buf.len() > max_line {
        let resp = err(
            ErrorKind::Protocol,
            format!(
                "request line of {} bytes exceeds the {}-byte limit",
                conn.read_buf.len(),
                max_line
            ),
        );
        conn.write_buf.extend_from_slice(resp.encode().as_bytes());
        conn.write_buf.push(b'\n');
        conn.read_buf.clear();
        conn.scan_from = 0;
        conn.close_after_flush = true;
        worked = true;
    }
    worked
}

/// Drains `write_buf` into the socket as far as it will go without
/// blocking. Returns `false` when the connection is dead.
fn flush_write(conn: &mut Conn, worked: &mut bool) -> bool {
    while !conn.write_buf.is_empty() {
        match conn.stream.write(&conn.write_buf) {
            Ok(0) => return false,
            Ok(n) => {
                conn.write_buf.drain(..n);
                *worked = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    /// The canonical two-cluster test trace, as CSV for `load_trace`.
    fn trace_csv() -> String {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let used = b.metric("power_used", "MFlop/s");
        let bw = b.metric("bandwidth", "Mbit/s");
        for cn in ["c1", "c2"] {
            let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
            for i in 0..2 {
                let h = b
                    .new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host)
                    .unwrap();
                b.set_variable(0.0, h, power, 100.0).unwrap();
                b.set_variable(0.0, h, used, 60.0).unwrap();
            }
        }
        let bb = b.new_container(b.root(), "bb", ContainerKind::Link).unwrap();
        b.set_variable(0.0, bb, bw, 1000.0).unwrap();
        viva_trace::export::to_csv(&b.finish(10.0))
    }

    fn server() -> Server {
        Server::new(ServerLimits::default())
    }

    fn load(s: &Server, session: &str) {
        let r = s.execute(Command::LoadTrace {
            session: session.into(),
            mode: viva_trace::RecoveryMode::Strict,
            text: trace_csv(),
            trace: None,
        });
        assert!(matches!(r, Response::Loaded { .. }), "{r:?}");
    }

    #[test]
    fn full_interactive_loop_over_the_protocol() {
        let s = server();
        load(&s, "a");
        // Slice (clamped to the trace extent).
        let r = s.execute(Command::SetTimeSlice { session: "a".into(), start: 2.0, end: 99.0 });
        assert_eq!(r, Response::Slice { start: 2.0, end: 10.0 });
        // Collapse + aggregate.
        let r = s.execute(Command::Collapse { session: "a".into(), container: "c1".into() });
        assert!(matches!(r, Response::Done { .. }));
        let r = s.execute(Command::Aggregate {
            session: "a".into(),
            metric: "power_used".into(),
            group: "c1".into(),
        });
        match r {
            Response::Aggregated { members, integral, empty, .. } => {
                assert_eq!(members, 2);
                assert_eq!(integral, 2.0 * 60.0 * 8.0);
                assert!(!empty);
            }
            other => panic!("{other:?}"),
        }
        // Sliders sanitize.
        let r = s.execute(Command::SetForces {
            session: "a".into(),
            repulsion: Some(f64::NAN),
            spring: Some(-5.0),
            damping: Some(7.0),
        });
        assert_eq!(r, Response::Forces { repulsion: 100.0, spring: 0.0, damping: 1.0 });
        // Drag visible, drag hidden.
        let r = s.execute(Command::Drag {
            session: "a".into(),
            container: "c1".into(),
            x: 5.0,
            y: 5.0,
        });
        assert!(matches!(r, Response::Done { .. }));
        let r = s.execute(Command::Drag {
            session: "a".into(),
            container: "c1-h0".into(),
            x: 1.0,
            y: 1.0,
        });
        assert!(
            matches!(r, Response::Error { kind: ErrorKind::HiddenContainer, .. }),
            "{r:?}"
        );
        // Relax, then render.
        let r = s.execute(Command::Relax { session: "a".into(), steps: 50 });
        match r {
            Response::Relaxed { steps, frozen } => {
                assert!(steps > 0);
                assert_eq!(frozen, None);
            }
            other => panic!("{other:?}"),
        }
        let r = s.execute(Command::Render {
            session: "a".into(),
            width: 640.0,
            height: 480.0,
            theme: viva::Theme::Dark,
            labels: true,
            zoom: None,
            pan_x: None,
            pan_y: None,
        });
        match r {
            Response::Frame { cached, svg, .. } => {
                assert!(!cached);
                assert!(svg.starts_with("<svg"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_cache_serves_repeat_renders_and_invalidates_on_change() {
        let s = server();
        load(&s, "a");
        let render = |w: f64| {
            s.execute(Command::Render {
                session: "a".into(),
                width: w,
                height: 480.0,
                theme: viva::Theme::Light,
                labels: false,
                zoom: None,
                pan_x: None,
                pan_y: None,
            })
        };
        let (first, second) = (render(640.0), render(640.0));
        match (&first, &second) {
            (
                Response::Frame { cached: c1, svg: s1, revision: r1 },
                Response::Frame { cached: c2, svg: s2, revision: r2 },
            ) => {
                assert!(!c1 && *c2, "second render is a cache hit");
                assert_eq!(s1, s2);
                assert_eq!(r1, r2);
            }
            other => panic!("{other:?}"),
        }
        // A different viewport misses; the original still hits.
        assert!(matches!(render(800.0), Response::Frame { cached: false, .. }));
        assert!(matches!(render(640.0), Response::Frame { cached: true, .. }));
        // A state change invalidates (new revision, fresh render); the
        // session's aggregation cache makes this cheap, not free.
        s.execute(Command::SetForces {
            session: "a".into(),
            repulsion: Some(150.0),
            spring: None,
            damping: None,
        });
        assert!(matches!(render(640.0), Response::Frame { cached: false, .. }));
    }

    fn counter(block: &StatsBlock, name: &str) -> Option<u64> {
        block.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    #[test]
    fn stats_surfaces_command_counts_and_cache_behaviour() {
        let s = Server::with_metrics(ServerLimits::default());
        load(&s, "a");
        let render = |w: f64| {
            s.execute(Command::Render {
                session: "a".into(),
                width: w,
                height: 480.0,
                theme: viva::Theme::Light,
                labels: false,
                zoom: None,
                pan_x: None,
                pan_y: None,
            })
        };
        assert!(matches!(render(640.0), Response::Frame { cached: false, .. }));
        assert!(matches!(render(640.0), Response::Frame { cached: true, .. }));
        // A viewport-only change misses; the original still hits.
        assert!(matches!(render(800.0), Response::Frame { cached: false, .. }));
        assert!(matches!(render(640.0), Response::Frame { cached: true, .. }));
        match s.execute(Command::Stats { session: Some("a".into()), reset: false }) {
            Response::Stats { sessions, server, session } => {
                assert_eq!(sessions, 1);
                assert_eq!(counter(&server, "server.cmd.render"), Some(4));
                assert_eq!(counter(&server, "server.cmd.load_trace"), Some(1));
                assert_eq!(counter(&server, "server.cmd.stats"), Some(1), "counts itself");
                assert_eq!(
                    server.gauges.iter().find(|(n, _)| n == "server.sessions").map(|(_, v)| *v),
                    Some(1.0)
                );
                // Per-command latency histograms carry one sample per
                // completed command (the in-flight stats span is open).
                assert_eq!(
                    server.histograms.iter().find(|(n, _)| n == "server.cmd.render.seconds"),
                    Some(&("server.cmd.render.seconds".to_owned(), 4))
                );
                let sess = session.expect("session stats");
                assert_eq!((sess.name.as_str(), sess.frozen), ("a", None));
                assert_eq!(counter(&sess.stats, "cache.hits"), Some(2));
                assert_eq!(counter(&sess.stats, "cache.misses"), Some(2));
                // The loader reported into the same session recorder.
                assert_eq!(counter(&sess.stats, "trace.loads"), Some(1));
            }
            other => panic!("{other:?}"),
        }
        // Unknown session name is the usual typed error.
        assert!(matches!(
            s.execute(Command::Stats { session: Some("ghost".into()), reset: false }),
            Response::Error { kind: ErrorKind::NoSession, .. }
        ));
        // A metrics-off server answers stats too — with empty blocks.
        let off = server();
        match off.execute(Command::Stats { session: None, reset: false }) {
            Response::Stats { sessions: 0, server, session: None } => {
                assert!(server.counters.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frame_cache_evictions_surface_in_session_stats() {
        let s = Server::with_metrics(ServerLimits {
            frame_cache_frames: 2,
            ..ServerLimits::default()
        });
        load(&s, "a");
        for w in [100.0, 200.0, 300.0] {
            let r = s.execute(Command::Render {
                session: "a".into(),
                width: w,
                height: 480.0,
                theme: viva::Theme::Light,
                labels: false,
                zoom: None,
                pan_x: None,
                pan_y: None,
            });
            assert!(matches!(r, Response::Frame { cached: false, .. }));
        }
        match s.execute(Command::Stats { session: Some("a".into()), reset: false }) {
            Response::Stats { session: Some(sess), .. } => {
                assert_eq!(counter(&sess.stats, "cache.misses"), Some(3));
                assert_eq!(counter(&sess.stats, "cache.evictions"), Some(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metrics_do_not_change_any_response_byte() {
        let script: Vec<Command> = vec![
            Command::LoadTrace {
                session: "a".into(),
                mode: viva_trace::RecoveryMode::Strict,
                text: trace_csv(),
                trace: None,
            },
            Command::SetTimeSlice { session: "a".into(), start: 1.0, end: 9.0 },
            Command::Collapse { session: "a".into(), container: "c1".into() },
            Command::Relax { session: "a".into(), steps: 30 },
            Command::Render {
                session: "a".into(),
                width: 640.0,
                height: 480.0,
                theme: viva::Theme::Dark,
                labels: true,
                zoom: None,
                pan_x: None,
                pan_y: None,
            },
            Command::Render {
                session: "a".into(),
                width: 640.0,
                height: 480.0,
                theme: viva::Theme::Dark,
                labels: true,
                zoom: None,
                pan_x: None,
                pan_y: None,
            },
            Command::Sessions,
        ];
        let plain = server();
        let observed = Server::with_metrics(ServerLimits::default());
        for cmd in script {
            let a = plain.execute(cmd.clone()).encode();
            let b = observed.execute(cmd).encode();
            assert_eq!(a, b, "metrics perturbed a response");
        }
    }

    #[test]
    fn typed_errors_for_every_failure_shape() {
        let s = server();
        // No session yet.
        let r = s.execute(Command::Relax { session: "nope".into(), steps: 1 });
        assert!(matches!(r, Response::Error { kind: ErrorKind::NoSession, .. }));
        load(&s, "a");
        let cases: Vec<(Command, ErrorKind)> = vec![
            (
                Command::Collapse { session: "a".into(), container: "ghost".into() },
                ErrorKind::UnknownContainer,
            ),
            (
                Command::Aggregate {
                    session: "a".into(),
                    metric: "no_such".into(),
                    group: "c1".into(),
                },
                ErrorKind::UnknownMetric,
            ),
            (
                Command::SetTimeSlice { session: "a".into(), start: f64::NAN, end: 1.0 },
                ErrorKind::InvalidTimeSlice,
            ),
            (
                Command::Drag {
                    session: "a".into(),
                    container: "c1-h0".into(),
                    x: f64::INFINITY,
                    y: 0.0,
                },
                ErrorKind::NonFinitePosition,
            ),
            (
                Command::Render {
                    session: "a".into(),
                    width: -1.0,
                    height: 480.0,
                    theme: viva::Theme::Light,
                    labels: false,
                    zoom: None,
                    pan_x: None,
                    pan_y: None,
                },
                ErrorKind::BadViewport,
            ),
            (
                Command::SetScaling {
                    session: "a".into(),
                    group: "power".into(),
                    factor: f64::NAN,
                },
                ErrorKind::BadArgument,
            ),
            (
                Command::CloseSession { session: "ghost".into() },
                ErrorKind::NoSession,
            ),
        ];
        for (cmd, want) in cases {
            match s.execute(cmd.clone()) {
                Response::Error { kind, .. } => assert_eq!(kind, want, "{cmd:?}"),
                other => panic!("{cmd:?} -> {other:?}"),
            }
        }
        // Wire-level failures that never reach `execute` are typed too.
        let bad_theme = s
            .handle_line(r#"{"cmd":"render","session":"a","width":8,"height":6,"theme":"mauve","labels":false}"#)
            .expect("a response");
        assert!(bad_theme.starts_with(r#"{"err":"bad_theme""#), "{bad_theme}");
        // The session survived all of it.
        assert!(matches!(
            s.execute(Command::Relax { session: "a".into(), steps: 1 }),
            Response::Relaxed { .. }
        ));
    }

    #[test]
    fn lenient_upload_of_damaged_trace_degrades() {
        let s = server();
        let text = format!("{}garbage line\nvar,3.0,1,0,NaN\n", trace_csv());
        let r = s.execute(Command::LoadTrace {
            session: "dmg".into(),
            mode: viva_trace::RecoveryMode::Lenient,
            text,
            trace: None,
        });
        match r {
            Response::Loaded { dropped, quarantined, .. } => {
                assert!(dropped >= 2, "garbage + NaN dropped, got {dropped}");
                assert_eq!(quarantined, 1);
            }
            other => panic!("{other:?}"),
        }
        // Strict mode refuses the same upload with a typed error.
        let text = format!("{}garbage line\n", trace_csv());
        let r = s.execute(Command::LoadTrace {
            session: "dmg2".into(),
            mode: viva_trace::RecoveryMode::Strict,
            text,
            trace: None,
        });
        assert!(
            matches!(r, Response::Error { kind: ErrorKind::ParseTrace, .. }),
            "{r:?}"
        );
        assert!(s.registry().get("dmg2").is_none(), "failed load creates no session");
    }

    #[test]
    fn handle_line_one_response_per_request() {
        let s = server();
        assert_eq!(s.handle_line(""), None);
        assert_eq!(s.handle_line("   "), None);
        assert_eq!(s.handle_line(r#"{"cmd":"ping"}"#), Some(r#"{"ok":"pong"}"#.to_owned()));
        let bad = s.handle_line("not json").unwrap();
        assert!(bad.starts_with(r#"{"err":"protocol""#), "{bad}");
        let unknown = s.handle_line(r#"{"cmd":"frobnicate"}"#).unwrap();
        assert!(unknown.starts_with(r#"{"err":"unknown_command""#), "{unknown}");
    }

    #[test]
    fn oversized_request_line_is_rejected_not_processed() {
        let s = Server::new(ServerLimits { max_line_bytes: 64, ..ServerLimits::default() });
        let huge = format!(r#"{{"cmd":"ping","pad":"{}"}}"#, "x".repeat(1000));
        let r = s.handle_line(&huge).unwrap();
        assert!(r.starts_with(r#"{"err":"protocol""#), "{r}");
    }

    #[test]
    fn checkpoint_restore_round_trips_over_the_protocol() {
        let s = server();
        load(&s, "a");
        s.execute(Command::SetTimeSlice { session: "a".into(), start: 1.0, end: 9.0 });
        s.execute(Command::Collapse { session: "a".into(), container: "c1".into() });
        s.execute(Command::Relax { session: "a".into(), steps: 40 });
        s.execute(Command::Drag { session: "a".into(), container: "c1".into(), x: 3.0, y: -2.0 });
        let render = |srv: &Server, session: &str| {
            match srv.execute(Command::Render {
                session: session.into(),
                width: 640.0,
                height: 480.0,
                theme: viva::Theme::Dark,
                labels: true,
                zoom: None,
                pan_x: None,
                pan_y: None,
            }) {
                Response::Frame { svg, revision, .. } => (svg, revision),
                other => panic!("{other:?}"),
            }
        };
        let (live_svg, live_rev) = render(&s, "a");
        let state = match s.execute(Command::Checkpoint { session: "a".into() }) {
            Response::Checkpointed { session, state } => {
                assert_eq!(session, "a");
                state
            }
            other => panic!("{other:?}"),
        };
        // Restore into a *fresh* server (a process restart, in effect).
        let fresh = server();
        match fresh.execute(Command::Restore { session: "a".into(), state: Some(state.clone()) }) {
            Response::Restored { session, revision } => {
                assert_eq!(session, "a");
                assert_eq!(revision, live_rev);
            }
            other => panic!("{other:?}"),
        }
        let (restored_svg, restored_rev) = render(&fresh, "a");
        assert_eq!(restored_svg, live_svg, "restored render must be byte-identical");
        assert_eq!(restored_rev, live_rev);
        // Fixed point: checkpointing the restored session reproduces
        // the checkpoint byte for byte.
        match fresh.execute(Command::Checkpoint { session: "a".into() }) {
            Response::Checkpointed { state: again, .. } => {
                assert_eq!(again.encode(), state.encode());
            }
            other => panic!("{other:?}"),
        }
        // Checkpointing an unknown session is the usual typed error.
        assert!(matches!(
            s.execute(Command::Checkpoint { session: "ghost".into() }),
            Response::Error { kind: ErrorKind::NoSession, .. }
        ));
        // Restoring garbage is typed, and creates no session.
        let mut broken = (*state).clone();
        broken.version = 99;
        assert!(matches!(
            fresh.execute(Command::Restore { session: "b".into(), state: Some(Box::new(broken)) }),
            Response::Error { kind: ErrorKind::BadCheckpoint, .. }
        ));
        assert!(fresh.registry().get("b").is_none());
    }

    #[test]
    fn admission_control_sheds_deterministically() {
        let s = Server::new(ServerLimits {
            max_inflight_commands: 0,
            overload_retry_after_ms: 25,
            ..ServerLimits::default()
        });
        match s.execute(Command::Ping) {
            Response::Error { kind: ErrorKind::Overloaded { retry_after_ms }, .. } => {
                assert_eq!(retry_after_ms, 25, "the configured hint rides the error");
            }
            other => panic!("{other:?}"),
        }
        // `shutdown` bypasses admission: draining an overloaded server
        // must always be possible.
        assert!(matches!(
            s.execute(Command::Shutdown),
            Response::ShutdownStarted { sessions: 0, checkpointed: 0 }
        ));
    }

    #[test]
    fn zero_deadline_budget_breaches_deterministically() {
        let s = Server::new(ServerLimits {
            deadlines: crate::registry::DeadlineBudgets {
                relax_ms: Some(0),
                ..Default::default()
            },
            ..ServerLimits::default()
        });
        load(&s, "a");
        let r = s.execute(Command::Relax { session: "a".into(), steps: 100 });
        assert!(
            matches!(r, Response::Error { kind: ErrorKind::DeadlineExceeded, .. }),
            "{r:?}"
        );
        // Other classes have no budget and are untouched; the session
        // is still at its last consistent revision.
        assert!(matches!(
            s.execute(Command::SetTimeSlice { session: "a".into(), start: 1.0, end: 5.0 }),
            Response::Slice { .. }
        ));
    }

    #[test]
    fn drain_refuses_new_state_changes_but_answers_observability() {
        let s = server();
        load(&s, "a");
        assert!(!s.is_draining());
        match s.execute(Command::Shutdown) {
            Response::ShutdownStarted { sessions, checkpointed } => {
                assert_eq!(sessions, 1);
                assert_eq!(checkpointed, 0, "no checkpoint dir configured");
            }
            other => panic!("{other:?}"),
        }
        assert!(s.is_draining());
        // State changes are shed…
        assert!(matches!(
            s.execute(Command::Relax { session: "a".into(), steps: 1 }),
            Response::Error { kind: ErrorKind::Overloaded { .. }, .. }
        ));
        assert!(matches!(
            s.execute(Command::LoadTrace {
                session: "b".into(),
                mode: viva_trace::RecoveryMode::Strict,
                text: trace_csv(),
                trace: None,
            }),
            Response::Error { kind: ErrorKind::Overloaded { .. }, .. }
        ));
        // …while liveness, stats, and state export still answer.
        assert!(matches!(s.execute(Command::Ping), Response::Pong));
        assert!(matches!(s.execute(Command::Stats { session: None, reset: false }), Response::Stats { .. }));
        assert!(matches!(
            s.execute(Command::Checkpoint { session: "a".into() }),
            Response::Checkpointed { .. }
        ));
        // Shutdown is idempotent.
        assert!(matches!(s.execute(Command::Shutdown), Response::ShutdownStarted { .. }));
    }

    #[test]
    fn tcp_round_trip_with_worker_pool() {
        use std::io::{BufRead, BufReader, Write};
        let server = Arc::new(server());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _workers = serve_tcp(listener, 2, Arc::clone(&server));
        // Two concurrent connections, each its own session.
        let clients: Vec<_> = (0..2)
            .map(|i| {
                let csv = trace_csv();
                thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut send = |cmd: &Command| {
                        stream
                            .write_all(format!("{}\n", cmd.encode()).as_bytes())
                            .unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        Response::decode(line.trim_end()).unwrap()
                    };
                    let session = format!("tcp-{i}");
                    let r = send(&Command::LoadTrace {
                        session: session.clone(),
                        mode: viva_trace::RecoveryMode::Strict,
                        text: csv,
                        trace: None,
                    });
                    assert!(matches!(r, Response::Loaded { .. }));
                    let r = send(&Command::Render {
                        session,
                        width: 320.0,
                        height: 240.0,
                        theme: viva::Theme::Light,
                        labels: false,
                        zoom: None,
                        pan_x: None,
                        pan_y: None,
                    });
                    assert!(matches!(r, Response::Frame { .. }));
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.registry().len(), 2);
    }

    #[test]
    fn attach_shares_one_trace_among_sessions() {
        let s = Server::new(ServerLimits { max_sessions: 64, ..ServerLimits::default() });
        let (loaded_containers, loaded_events) = match s.execute(Command::LoadTrace {
            session: "a".into(),
            mode: viva_trace::RecoveryMode::Strict,
            text: trace_csv(),
            trace: Some("shared".into()),
        }) {
            Response::Loaded { containers, events, .. } => (containers, events),
            other => panic!("{other:?}"),
        };
        for i in 0..10 {
            let r = s.execute(Command::Attach {
                session: format!("att-{i}"),
                trace: "shared".into(),
            });
            match r {
                Response::Attached { trace, containers, events, .. } => {
                    assert_eq!(trace, "shared");
                    assert_eq!(containers, loaded_containers);
                    assert_eq!(events, loaded_events);
                }
                other => panic!("{other:?}"),
            }
        }
        // The store sees one trace shared by eleven sessions (loader's
        // plus ten attached): one Arc strong count per session, plus
        // the store's own reference.
        match s.execute(Command::ListTraces) {
            Response::TraceList { traces } => {
                assert_eq!(traces.len(), 1);
                assert_eq!(traces[0].name, "shared");
                assert_eq!(traces[0].sessions, 11);
            }
            other => panic!("{other:?}"),
        }
        // Attached sessions truly share: same allocation, not a copy.
        let a = s.registry().get("a").unwrap().lock().analysis.shared_trace();
        let b = s.registry().get("att-0").unwrap().lock().analysis.shared_trace();
        assert!(Arc::ptr_eq(&a, &b));
        // The shared index was built once and is shared too.
        let ia = s.registry().get("a").unwrap().lock().analysis.shared_index().unwrap();
        let ib = s.registry().get("att-9").unwrap().lock().analysis.shared_index().unwrap();
        assert!(Arc::ptr_eq(&ia, &ib));
        // Attached sessions render identically to the loaded one.
        let render = |session: &str| match s.execute(Command::Render {
            session: session.into(),
            width: 320.0,
            height: 240.0,
            theme: viva::Theme::Light,
            labels: false,
            zoom: None,
            pan_x: None,
            pan_y: None,
        }) {
            Response::Frame { svg, .. } => svg,
            other => panic!("{other:?}"),
        };
        assert_eq!(render("a"), render("att-5"));
        // Dropping the trace stops new attaches; live sessions keep
        // working.
        assert!(matches!(
            s.execute(Command::DropTrace { trace: "shared".into() }),
            Response::TraceDropped { .. }
        ));
        assert!(matches!(
            s.execute(Command::Attach { session: "late".into(), trace: "shared".into() }),
            Response::Error { kind: ErrorKind::NoTrace, .. }
        ));
        assert!(matches!(
            s.execute(Command::DropTrace { trace: "shared".into() }),
            Response::Error { kind: ErrorKind::NoTrace, .. }
        ));
        assert!(matches!(
            s.execute(Command::Relax { session: "att-3".into(), steps: 5 }),
            Response::Relaxed { .. }
        ));
    }

    #[test]
    fn attach_to_missing_trace_is_typed() {
        let s = server();
        assert!(matches!(
            s.execute(Command::Attach { session: "x".into(), trace: "ghost".into() }),
            Response::Error { kind: ErrorKind::NoTrace, .. }
        ));
        assert!(s.registry().is_empty());
    }

    #[test]
    fn restore_relinks_to_stored_trace_by_content_hash() {
        let s = server();
        let r = s.execute(Command::LoadTrace {
            session: "a".into(),
            mode: viva_trace::RecoveryMode::Strict,
            text: trace_csv(),
            trace: Some("shared".into()),
        });
        assert!(matches!(r, Response::Loaded { .. }));
        s.execute(Command::Collapse { session: "a".into(), container: "c1".into() });
        s.execute(Command::Relax { session: "a".into(), steps: 25 });
        let state = match s.execute(Command::Checkpoint { session: "a".into() }) {
            Response::Checkpointed { state, .. } => state,
            other => panic!("{other:?}"),
        };
        // Restore into a *different* session on the same server: the
        // checkpoint's content hash matches the stored trace, so the
        // restored session shares it instead of re-parsing.
        assert!(matches!(
            s.execute(Command::Restore { session: "b".into(), state: Some(state) }),
            Response::Restored { .. }
        ));
        let restored = s.registry().get("b").unwrap().lock().analysis.shared_trace();
        let stored = s.store().get("shared").unwrap().trace;
        assert!(Arc::ptr_eq(&restored, &stored), "restore re-linked to the shared trace");
        // And it renders byte-identically to the original session.
        let render = |session: &str| match s.execute(Command::Render {
            session: session.into(),
            width: 640.0,
            height: 480.0,
            theme: viva::Theme::Dark,
            labels: true,
            zoom: None,
            pan_x: None,
            pan_y: None,
        }) {
            Response::Frame { svg, .. } => svg,
            other => panic!("{other:?}"),
        };
        assert_eq!(render("a"), render("b"));
    }

    // ---- durable live streaming -------------------------------------

    /// Opening event of every streaming test: span + two hosts + one
    /// metric + one sample.
    const LIVE_BASE: &str = "span,0.0,10.0\ncontainer,1,0,host,h0\ncontainer,2,0,host,h1\n\
                             metric,0,MFlop/s,power\nvar,1.0,1,0,100.0";
    /// Pure-sample events (incremental fast path).
    const LIVE_EV2: &str = "var,2.0,1,0,50.0";
    const LIVE_EV3: &str = "var,3.0,2,0,75.5";
    /// A structural event (forces the rebuild slow path).
    const LIVE_EV4: &str = "container,3,0,host,h2\nvar,4.0,3,0,10.0";

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "viva_server_stream_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn stream_limits(dir: &std::path::Path) -> ServerLimits {
        ServerLimits {
            journal_dir: Some(dir.to_path_buf()),
            journal_sync_every: 1,
            ..ServerLimits::default()
        }
    }

    fn append(s: &Server, session: &str, seq: u64, text: &str) -> Response {
        s.execute(Command::Append { session: session.into(), seq, text: text.into() })
    }

    fn render_svg(s: &Server, session: &str) -> String {
        match s.execute(Command::Render {
            session: session.into(),
            width: 640.0,
            height: 480.0,
            theme: viva::Theme::Light,
            labels: false,
            zoom: None,
            pan_x: None,
            pan_y: None,
        }) {
            Response::Frame { svg, .. } => svg,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn append_round_trip_idempotency_and_gap_detection() {
        let s = server(); // no journal dir: streaming still works, just not durable
        // A stream must start at seq 1.
        assert!(matches!(
            append(&s, "s", 2, LIVE_BASE),
            Response::Error { kind: ErrorKind::NoSession, .. }
        ));
        assert!(matches!(
            append(&s, "s", 1, LIVE_BASE),
            Response::Appended { seq: 1, duplicate: false, .. }
        ));
        let r2 = append(&s, "s", 2, LIVE_EV2);
        let rev2 = match r2 {
            Response::Appended { seq: 2, duplicate: false, revision, .. } => revision,
            other => panic!("{other:?}"),
        };
        // Resend of an acked event: acknowledged again, not re-applied.
        match append(&s, "s", 2, LIVE_EV2) {
            Response::Appended { seq: 2, duplicate: true, revision, .. } => {
                assert_eq!(revision, rev2, "a duplicate does not change the session");
            }
            other => panic!("{other:?}"),
        }
        // Sequence numbers start at 1; skipping ahead is a typed gap
        // that names the expected seq (the client's resume point).
        assert!(matches!(
            append(&s, "s", 0, "x"),
            Response::Error { kind: ErrorKind::BadArgument, .. }
        ));
        match append(&s, "s", 5, LIVE_EV3) {
            Response::Error { kind: ErrorKind::SeqGap { expected }, .. } => {
                assert_eq!(expected, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incremental_appends_match_one_shot_load_of_the_same_text() {
        let s = server();
        // Session "inc" receives the stream event by event (exercising
        // both the sample fast path and the structural rebuild);
        // session "one" gets the identical concatenation as one event.
        for (seq, text) in [(1, LIVE_BASE), (2, LIVE_EV2), (3, LIVE_EV3), (4, LIVE_EV4)] {
            assert!(matches!(
                append(&s, "inc", seq, text),
                Response::Appended { duplicate: false, .. }
            ));
        }
        let all = format!("{LIVE_BASE}\n{LIVE_EV2}\n{LIVE_EV3}\n{LIVE_EV4}");
        assert!(matches!(append(&s, "one", 1, &all), Response::Appended { .. }));
        // Live content is defined as the lenient load of the
        // concatenated texts, so both sessions must hold the same
        // view values (geometry may differ — layout seeding is
        // path-dependent — so compare the data projection).
        let deltas = |name: &str| {
            let handle = s.registry().get(name).unwrap();
            let guard = handle.lock();
            diff_views(None, &guard.analysis.view())
        };
        assert_eq!(deltas("inc"), deltas("one"));
    }

    #[test]
    fn seal_ends_the_stream_idempotently() {
        let s = server();
        append(&s, "s", 1, LIVE_BASE);
        append(&s, "s", 2, LIVE_EV2);
        assert_eq!(
            s.execute(Command::Seal { session: "s".into() }),
            Response::Sealed { session: "s".into(), last_seq: 2 }
        );
        // Sealed: new events are refused, duplicates still ack.
        assert!(matches!(
            append(&s, "s", 3, LIVE_EV3),
            Response::Error { kind: ErrorKind::SessionSealed, .. }
        ));
        assert!(matches!(
            append(&s, "s", 2, LIVE_EV2),
            Response::Appended { duplicate: true, .. }
        ));
        // Re-sealing re-answers identically.
        assert_eq!(
            s.execute(Command::Seal { session: "s".into() }),
            Response::Sealed { session: "s".into(), last_seq: 2 }
        );
    }

    #[test]
    fn streaming_commands_are_typed_errors_on_batch_sessions() {
        let s = server();
        load(&s, "a");
        assert!(matches!(
            append(&s, "a", 1, LIVE_BASE),
            Response::Error { kind: ErrorKind::NotLive, .. }
        ));
        assert!(matches!(
            s.execute(Command::Seal { session: "a".into() }),
            Response::Error { kind: ErrorKind::NotLive, .. }
        ));
        // `subscribe` additionally needs a transport connection that
        // can carry pushes — `execute` has none.
        append(&s, "s", 1, LIVE_BASE);
        assert!(matches!(
            s.execute(Command::Subscribe { session: "s".into(), from_seq: None }),
            Response::Error { kind: ErrorKind::Protocol, .. }
        ));
    }

    #[test]
    fn restart_recovers_journals_into_identical_sessions() {
        let dir = tmpdir("recover");
        let s = Server::new(stream_limits(&dir));
        for (seq, text) in [(1, LIVE_BASE), (2, LIVE_EV2), (3, LIVE_EV3), (4, LIVE_EV4)] {
            assert!(matches!(append(&s, "s", seq, text), Response::Appended { .. }));
        }
        let rev_a = match append(&s, "s", 4, LIVE_EV4) {
            Response::Appended { duplicate: true, revision, .. } => revision,
            other => panic!("{other:?}"),
        };
        let svg_a = render_svg(&s, "s");
        drop(s); // crash: no seal, no checkpoint
        // A fresh server over the same journal directory rebuilds the
        // session — same revision, same bytes on screen.
        let t = Server::new(stream_limits(&dir));
        assert_eq!(t.recover_journals(), vec!["s".to_string()]);
        match append(&t, "s", 4, LIVE_EV4) {
            Response::Appended { duplicate: true, revision, .. } => {
                assert_eq!(revision, rev_a, "recovery replays to the identical revision");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(render_svg(&t, "s"), svg_a, "recovered render is byte-identical");
        // And the stream continues where it left off.
        assert!(matches!(
            append(&t, "s", 5, "var,5.0,1,0,25.0"),
            Response::Appended { seq: 5, duplicate: false, .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_recovers_the_acked_prefix() {
        use std::io::Write as _;
        let dir = tmpdir("torn");
        let s = Server::with_metrics(stream_limits(&dir));
        append(&s, "s", 1, LIVE_BASE);
        append(&s, "s", 2, LIVE_EV2);
        append(&s, "s", 3, LIVE_EV3);
        drop(s);
        // A torn tail: half a record that never finished hitting disk.
        let path = dir.join("s.journal");
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"v1,9,garbage-without-a-news").unwrap();
        drop(f);
        let t = Server::with_metrics(stream_limits(&dir));
        assert_eq!(t.recover_journals(), vec!["s".to_string()]);
        // The acked prefix survives; the torn record was never acked
        // and is physically gone.
        assert!(matches!(
            append(&t, "s", 3, LIVE_EV3),
            Response::Appended { duplicate: true, .. }
        ));
        match append(&t, "s", 5, "x") {
            Response::Error { kind: ErrorKind::SeqGap { expected }, .. } => {
                assert_eq!(expected, 4)
            }
            other => panic!("{other:?}"),
        }
        // The truncation is observable.
        let block = match t.execute(Command::Stats { session: None, reset: false }) {
            Response::Stats { server, .. } => server,
            other => panic!("{other:?}"),
        };
        assert_eq!(counter(&block, "journal.recovery_truncations"), Some(1));
        assert_eq!(counter(&block, "server.journal_recoveries"), Some(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_v3_links_the_journal_and_restore_relinks_it() {
        let dir = tmpdir("ckpt");
        let s = Server::new(stream_limits(&dir));
        append(&s, "s", 1, LIVE_BASE);
        append(&s, "s", 2, LIVE_EV2);
        let state = match s.execute(Command::Checkpoint { session: "s".into() }) {
            Response::Checkpointed { state, .. } => state,
            other => panic!("{other:?}"),
        };
        assert_eq!(state.journal, Some(("s".to_string(), 2)));
        drop(s);
        // Restore on a fresh server with the same journal directory:
        // the session is live again and the stream continues.
        let t = Server::new(stream_limits(&dir));
        assert!(matches!(
            t.execute(Command::Restore { session: "s".into(), state: Some(state.clone()) }),
            Response::Restored { .. }
        ));
        // Double-checkpoint byte fixed point: checkpointing the
        // restored (unchanged) session reproduces the same bytes.
        let state2 = match t.execute(Command::Checkpoint { session: "s".into() }) {
            Response::Checkpointed { state, .. } => state,
            other => panic!("{other:?}"),
        };
        assert_eq!(state.encode(), state2.encode());
        assert!(matches!(
            append(&t, "s", 3, LIVE_EV3),
            Response::Appended { seq: 3, duplicate: false, .. }
        ));
        drop(t);
        // Without the journal directory the restore still succeeds —
        // as a plain batch session that cannot stream.
        let u = Server::new(ServerLimits::default());
        assert!(matches!(
            u.execute(Command::Restore { session: "s".into(), state: Some(state) }),
            Response::Restored { .. }
        ));
        assert!(matches!(
            append(&u, "s", 3, LIVE_EV3),
            Response::Error { kind: ErrorKind::NotLive, .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_after_journal_truncation_replays_the_suffix() {
        let dir = tmpdir("suffix");
        let s = Server::new(stream_limits(&dir));
        append(&s, "s", 1, LIVE_BASE);
        append(&s, "s", 2, LIVE_EV2);
        let state = match s.execute(Command::Checkpoint { session: "s".into() }) {
            Response::Checkpointed { state, .. } => state,
            other => panic!("{other:?}"),
        };
        // Two more acked events after the checkpoint.
        append(&s, "s", 3, LIVE_EV3);
        append(&s, "s", 4, LIVE_EV4);
        let svg_live = render_svg(&s, "s");
        drop(s);
        // Restoring the *older* checkpoint replays the journal suffix
        // (seqs 3 and 4) — nothing acked is lost.
        let t = Server::new(stream_limits(&dir));
        assert!(matches!(
            t.execute(Command::Restore { session: "s".into(), state: Some(state) }),
            Response::Restored { .. }
        ));
        assert!(matches!(
            append(&t, "s", 4, LIVE_EV4),
            Response::Appended { duplicate: true, .. }
        ));
        assert_eq!(render_svg(&t, "s"), svg_live);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn subscribe_streams_snapshot_then_incremental_deltas_over_serve() {
        let s = server();
        let mut script = String::new();
        for line in [
            Command::Append { session: "s".into(), seq: 1, text: LIVE_BASE.into() }.encode(),
            Command::Subscribe { session: "s".into(), from_seq: None }.encode(),
            Command::Append { session: "s".into(), seq: 2, text: LIVE_EV2.into() }.encode(),
            // Already current: no snapshot owed.
            Command::Subscribe { session: "s".into(), from_seq: Some(3) }.encode(),
        ] {
            script.push_str(&line);
            script.push('\n');
        }
        let mut out = Vec::new();
        s.serve(io::Cursor::new(script.into_bytes()), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 6, "{lines:#?}");
        assert!(matches!(
            Response::decode(lines[0]),
            Ok(Response::Appended { seq: 1, .. })
        ));
        assert!(matches!(
            Response::decode(lines[1]),
            Ok(Response::Subscribed { last_seq: 1, .. })
        ));
        // The catch-up snapshot: one delta carrying every visible node.
        match Push::decode(lines[2]) {
            Ok(Push::Delta { seq, changed, removed, .. }) => {
                assert_eq!(seq, 1);
                assert_eq!(changed.len(), 2, "both hosts visible");
                assert!(removed.is_empty());
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            Response::decode(lines[3]),
            Ok(Response::Appended { seq: 2, .. })
        ));
        // The incremental delta: only the node the sample touched.
        match Push::decode(lines[4]) {
            Ok(Push::Delta { seq, changed, removed, .. }) => {
                assert_eq!(seq, 2);
                assert_eq!(changed.len(), 1, "only h0's aggregate moved: {changed:?}");
                assert_eq!(changed[0].container, 1);
                assert!(removed.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // The already-current re-subscribe answers without a snapshot.
        assert!(matches!(
            Response::decode(lines[5]),
            Ok(Response::Subscribed { last_seq: 2, .. })
        ));
    }

    #[test]
    fn slow_subscriber_sheds_to_lagging_and_never_blocks_append() {
        let limits = ServerLimits { subscriber_queue: 2, ..ServerLimits::default() };
        let s = Server::with_metrics(limits);
        let conn = s.open_conn();
        assert!(matches!(append(&s, "s", 1, LIVE_BASE), Response::Appended { .. }));
        let (r, ..) = s
            .execute_gated(Some(conn), Command::Subscribe { session: "s".into(), from_seq: None }, None);
        assert!(matches!(r, Response::Subscribed { last_seq: 1, .. }));
        // The subscriber never drains. Queue capacity is 2: the
        // snapshot plus one delta fit, the next delta overflows — the
        // queue is shed to a single `lagging`, and every append still
        // acks immediately.
        for seq in 2..=5u64 {
            let text = format!("var,{seq}.0,1,0,{}.0", 100 - seq);
            assert!(matches!(
                append(&s, "s", seq, &text),
                Response::Appended { duplicate: false, .. }
            ));
        }
        let pushes = s.take_pushes(conn);
        assert_eq!(pushes.len(), 1, "{pushes:#?}");
        match Push::decode(&pushes[0]) {
            // resume_seq = the snapshot's seq: nothing after it was
            // delivered, so the subscriber resumes from there.
            Ok(Push::Lagging { session, resume_seq }) => {
                assert_eq!(session, "s");
                assert_eq!(resume_seq, 1);
            }
            other => panic!("{other:?}"),
        }
        // The lagging notice also cancelled the subscription: further
        // appends push nothing.
        append(&s, "s", 6, "var,6.0,1,0,1.0");
        assert!(s.take_pushes(conn).is_empty());
        // Re-subscribing from the resume point resynchronizes with a
        // fresh snapshot.
        let (r, ..) = s.execute_gated(
            Some(conn),
            Command::Subscribe { session: "s".into(), from_seq: Some(1) },
            None,
        );
        assert!(matches!(r, Response::Subscribed { last_seq: 6, .. }));
        let pushes = s.take_pushes(conn);
        assert_eq!(pushes.len(), 1);
        assert!(matches!(Push::decode(&pushes[0]), Ok(Push::Delta { seq: 6, .. })));
        // The shed is observable.
        let block = match s.execute(Command::Stats { session: None, reset: false }) {
            Response::Stats { server, .. } => server,
            other => panic!("{other:?}"),
        };
        assert_eq!(counter(&block, "server.subscriber_sheds"), Some(1));
        s.close_conn(conn);
    }

    #[test]
    fn closing_a_connection_drops_its_subscriptions() {
        let s = server();
        append(&s, "s", 1, LIVE_BASE);
        let conn = s.open_conn();
        let (r, ..) = s
            .execute_gated(Some(conn), Command::Subscribe { session: "s".into(), from_seq: None }, None);
        assert!(matches!(r, Response::Subscribed { .. }));
        s.close_conn(conn);
        // Appends after the close publish to nobody — and don't leak
        // queue entries for the dead connection.
        assert!(matches!(append(&s, "s", 2, LIVE_EV2), Response::Appended { .. }));
        assert!(s.take_pushes(conn).is_empty());
        assert!(s.conns().subs.is_empty());
    }
}
