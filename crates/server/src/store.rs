//! The shared-trace store: named, content-hashed, refcounted traces.
//!
//! `load_trace` pays the full cost once — parse, validate, build the
//! aggregation index — and registers the result here. Every later
//! `attach` clones two `Arc`s and a session exists; a thousand analysts
//! over one trace hold **one** copy of the event data and **one**
//! index. The store never copies a trace: entries hold `Arc<Trace>`,
//! and the observable sharing degree is exactly
//! `Arc::strong_count - 1` (the store's own reference).
//!
//! Entries are keyed by analyst-chosen **name** and carry a
//! **content hash** (FNV-1a over the canonical CSV form), which is what
//! checkpoints record: a restore that finds a stored trace with the
//! same hash re-links to it instead of re-parsing the embedded CSV.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use viva_agg::AggIndex;
use viva_trace::Trace;

/// One stored trace: the shared data, its (optional) shared index, and
/// the identity facts `list_traces` reports.
#[derive(Debug, Clone)]
pub struct StoredTrace {
    /// The shared trace. Sessions attach by cloning this handle.
    pub trace: Arc<Trace>,
    /// The shared aggregation index built at load time.
    pub index: Option<Arc<AggIndex>>,
    /// Content hash of the canonical CSV form (FNV-1a 64).
    pub hash: u64,
    /// Event records in the trace (as counted at load).
    pub events: u64,
}

/// One row of the `list_traces` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The store name.
    pub name: String,
    /// Content hash, 16 lowercase hex digits.
    pub hash: String,
    /// Containers in the trace.
    pub containers: u64,
    /// Event records in the trace.
    pub events: u64,
    /// Sessions currently sharing the trace (`Arc` strong count minus
    /// the store's own reference).
    pub sessions: u64,
}

/// The server's registry of loaded traces. All methods take `&self`;
/// the store is shared across shard workers behind one short-lived
/// mutex (entries are a few `Arc` clones, never trace data).
#[derive(Debug, Default)]
pub struct TraceStore {
    inner: Mutex<HashMap<String, StoredTrace>>,
}

/// FNV-1a 64-bit over raw bytes: the store's content hash. Stable,
/// dependency-free, and fast enough to run once per trace load.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders a content hash the way it crosses the wire and lands in
/// checkpoints: 16 lowercase hex digits.
pub fn hash_token(hash: u64) -> String {
    format!("{hash:016x}")
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> TraceStore {
        TraceStore::default()
    }

    /// Registers (or replaces) a trace under `name`.
    pub fn insert(&self, name: &str, stored: StoredTrace) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).insert(name.to_owned(), stored);
    }

    /// The stored trace named `name`, if any.
    pub fn get(&self, name: &str) -> Option<StoredTrace> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).get(name).cloned()
    }

    /// Drops the entry named `name`; returns whether it existed. Live
    /// sessions attached to the trace keep their `Arc`s — dropping a
    /// store entry only stops *new* attaches.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).remove(name).is_some()
    }

    /// Any stored trace whose content hash is `hash` (restore re-link).
    pub fn find_by_hash(&self, hash: u64) -> Option<StoredTrace> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .find(|s| s.hash == hash)
            .cloned()
    }

    /// Name-sorted listing with live sharing degrees.
    pub fn list(&self) -> Vec<TraceEntry> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<TraceEntry> = inner
            .iter()
            .map(|(name, s)| TraceEntry {
                name: name.clone(),
                hash: hash_token(s.hash),
                containers: s.trace.containers().len() as u64,
                events: s.events,
                sessions: (Arc::strong_count(&s.trace) as u64).saturating_sub(1),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    fn tiny_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let power = b.metric("power", "MFlop/s");
        let h = b.new_container(b.root(), "h0", ContainerKind::Host).unwrap();
        b.set_variable(0.0, h, power, 100.0).unwrap();
        b.finish(10.0)
    }

    fn store_one(store: &TraceStore, name: &str) -> StoredTrace {
        let trace = Arc::new(tiny_trace());
        let csv = viva_trace::export::to_csv(&trace);
        let stored = StoredTrace {
            trace: Arc::clone(&trace),
            index: Some(Arc::new(AggIndex::build(&trace))),
            hash: content_hash(csv.as_bytes()),
            events: 1,
        };
        store.insert(name, stored.clone());
        stored
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        assert_eq!(content_hash(b""), 0xcbf29ce484222325);
        assert_eq!(content_hash(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(content_hash(b"span,0,10\n"), content_hash(b"span,0,11\n"));
        assert_eq!(hash_token(0xaf), "00000000000000af");
    }

    #[test]
    fn sharing_degree_tracks_live_arcs() {
        let store = TraceStore::new();
        store_one(&store, "t");
        assert_eq!(store.list()[0].sessions, 0, "no attachments yet");
        let a = store.get("t").unwrap().trace;
        let b = store.get("t").unwrap().trace;
        assert_eq!(store.list()[0].sessions, 2);
        drop(a);
        assert_eq!(store.list()[0].sessions, 1);
        drop(b);
        assert_eq!(store.list()[0].sessions, 0);
    }

    #[test]
    fn lookup_by_name_and_hash_and_removal() {
        let store = TraceStore::new();
        let stored = store_one(&store, "t");
        assert!(store.get("t").is_some());
        assert!(store.get("u").is_none());
        assert_eq!(store.find_by_hash(stored.hash).map(|s| s.hash), Some(stored.hash));
        assert!(store.find_by_hash(stored.hash ^ 1).is_none());
        assert!(store.remove("t"));
        assert!(!store.remove("t"));
        assert!(store.is_empty());
    }

    #[test]
    fn listing_is_name_sorted() {
        let store = TraceStore::new();
        store_one(&store, "zeta");
        store_one(&store, "alpha");
        let names: Vec<_> = store.list().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
