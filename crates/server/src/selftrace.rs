//! Viva observes viva: export the server's own span records as a viva
//! trace.
//!
//! The dogfooding loop closes here. A tracing server accumulates
//! [`SpanRecord`]s — one causal tree per command — and this module
//! folds them into the paper's own trace model:
//!
//! * **shards → containers** — a `viva-server` cluster holding one
//!   `Host` per shard worker, exactly like a cluster of compute hosts;
//! * **command classes → metrics** — one variable per
//!   [`CommandClass`] (`control`, `interact`, `load`, `relax`,
//!   `render`), unit `ticks`;
//! * **span durations → signal values** — each command root sets its
//!   class's variable on its shard's host to the root's logical
//!   duration at its logical start time;
//! * **spans → states** — every span becomes a state interval on its
//!   shard's host, so the nested phase structure (`render` ▸
//!   `session.lock` ▸ `svg.encode`) shows up as the same nested state
//!   blocks §3 draws for MPI call stacks;
//! * **cross-shard hops → links** — a child span recorded on a
//!   different shard than its parent becomes a communication arrow.
//!
//! Everything exported is derived from **logical ticks**, never wall
//! time, so two replays of the same script with the same sampling seed
//! export byte-identical CSV — which is exactly what lets a viva
//! session load, aggregate, and render its own server's behaviour
//! deterministically (`ci.sh obs-smoke` holds it to that).

use std::collections::HashMap;

use viva_obs::{SpanId, SpanRecord, Tracer};
use viva_trace::{ContainerKind, Trace, TraceBuilder};

use crate::protocol::CommandClass;

/// Snapshots `tracer`'s finished spans into viva's CSV trace format (the
/// same dialect [`viva_trace::export::to_csv`] writes and the strict
/// loader reads back). Returns the CSV text; an idle tracer yields a
/// valid empty trace.
pub fn export_csv(tracer: &Tracer) -> String {
    let (records, _dropped) = tracer.finished_spans();
    viva_trace::export::to_csv(&build_trace(&records, tracer.shard_count().max(1)))
}

/// Folds finished span records into a [`Trace`]: `shards` hosts under
/// one `viva-server` cluster, one metric per command class, states for
/// every span, links for cross-shard parent/child hops.
pub fn build_trace(records: &[SpanRecord], shards: usize) -> Trace {
    let shards = shards.max(1);
    let mut b = TraceBuilder::new();
    let cluster = b
        .new_container(b.root(), "viva-server", ContainerKind::Cluster)
        .expect("root exists");
    let hosts: Vec<_> = (0..shards)
        .map(|s| {
            b.new_container(cluster, format!("shard-{s}"), ContainerKind::Host)
                .expect("cluster exists")
        })
        .collect();
    let metrics: Vec<_> =
        CommandClass::ALL.iter().map(|c| b.metric(c.label(), "ticks")).collect();
    let host = |shard: u16| hosts[shard as usize % shards];

    // One deterministic order for everything: records sorted by start
    // tick (ticks are unique — the tracer clock is a shared counter).
    let mut ordered: Vec<&SpanRecord> = records.iter().collect();
    ordered.sort_by_key(|r| (r.start_tick, r.id));

    // Command roots bill their logical duration to their class metric.
    // Global start-tick order makes each per-host signal monotone.
    for r in ordered.iter().filter(|r| r.parent == SpanId::NONE) {
        if let Some(class) = CommandClass::of_name(r.name) {
            let metric = metrics[CommandClass::ALL.iter().position(|c| *c == class).unwrap()];
            let _ = b.set_variable(
                r.start_tick as f64,
                host(r.shard),
                metric,
                r.duration_ticks() as f64,
            );
        }
    }

    // Spans as state intervals. Within one shard, spans nest strictly
    // (one worker thread per shard), so replaying push/pop events in
    // tick order reconstructs the stack exactly; a record that still
    // manages to violate nesting is skipped, not fatal.
    let mut events: Vec<(u64, bool, usize)> = Vec::with_capacity(ordered.len() * 2);
    for (i, r) in ordered.iter().enumerate() {
        events.push((r.start_tick, true, i));
        events.push((r.end_tick, false, i));
    }
    events.sort_unstable();
    for (tick, is_push, i) in events {
        let r = ordered[i];
        if is_push {
            let _ = b.push_state(tick as f64, host(r.shard), r.name);
        } else {
            let _ = b.pop_state(tick as f64, host(r.shard));
        }
    }

    // A child recorded on another shard than its parent is a hop.
    let shard_of: HashMap<SpanId, u16> = ordered.iter().map(|r| (r.id, r.shard)).collect();
    for r in &ordered {
        if let Some(&from) = shard_of.get(&r.parent) {
            if from != r.shard {
                let _ = b.link(
                    r.start_tick as f64,
                    r.end_tick as f64,
                    host(from),
                    host(r.shard),
                    1.0,
                );
            }
        }
    }

    let end = ordered.iter().map(|r| r.end_tick).max().map_or(1.0, |t| (t + 1) as f64);
    b.finish(end)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a sample-everything tracer through two shards' worth of
    /// command trees and checks every leg of the mapping.
    fn traced() -> Tracer {
        let t = Tracer::enabled(2, 7, 1);
        {
            let _root = t.root(0, "render", "demo");
            let _lock = t.phase("session.lock");
            drop(t.phase("svg.encode"));
        }
        {
            let root = t.root(1, "relax", "demo");
            // A child hopping to the other shard becomes a link.
            drop(t.child_of(root.ctx(), 0, "subscriber.push"));
        }
        drop(t.root(0, "stats", ""));
        t
    }

    #[test]
    fn shards_become_hosts_and_classes_become_metrics() {
        let (records, _) = traced().finished_spans();
        let trace = build_trace(&records, 2);
        let names: Vec<_> =
            trace.containers().iter().map(|c| c.name().to_owned()).collect();
        assert!(names.contains(&"viva-server".to_owned()));
        assert!(names.contains(&"shard-0".to_owned()));
        assert!(names.contains(&"shard-1".to_owned()));
        for class in CommandClass::ALL {
            assert!(
                trace.metric_id(class.label()).is_some(),
                "metric {} missing",
                class.label()
            );
        }
        assert_eq!(trace.links().len(), 1, "one cross-shard hop, one link");
    }

    #[test]
    fn export_round_trips_through_the_strict_loader() {
        let csv = export_csv(&traced());
        let trace = viva_trace::export::from_csv(&csv).expect("strict parse");
        let csv2 = viva_trace::export::to_csv(&trace);
        assert_eq!(csv, csv2, "export is a fixed point of parse∘export");
    }

    #[test]
    fn same_script_same_seed_exports_identically() {
        let a = export_csv(&traced());
        let b = export_csv(&traced());
        assert_eq!(a, b, "ticks, not wall time, order the export");
    }

    #[test]
    fn empty_tracer_exports_a_loadable_trace() {
        let t = Tracer::enabled(1, 0, 1);
        let csv = export_csv(&t);
        assert!(viva_trace::export::from_csv(&csv).is_ok());
    }
}
