//! The per-session frame cache.
//!
//! A rendered frame is a pure function of `(view revision, viewport,
//! theme)`: the session's [`revision`](viva::AnalysisSession::revision)
//! advances on every state change that could alter a render, and the
//! viewport/theme carry every presentation parameter. That triple is
//! therefore a sound cache key — a hit can be served without touching
//! the session's aggregation pipeline at all, and a slider-only change
//! (which bumps the revision but leaves per-node aggregates cached
//! inside the session) re-renders without re-aggregating.
//!
//! Eviction is LRU over a **logical** clock, so cache behaviour — and
//! with it the `cached` flag in [`crate::protocol::Response::Frame`] —
//! is deterministic for a given command script.

use std::collections::HashMap;

use viva::{Theme, Viewport};

/// Everything a frame depends on, hashed by exact bit patterns (two
/// viewports that differ by any representable amount are different
/// frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameKey {
    /// Session view revision the frame was rendered at.
    pub revision: u64,
    width_bits: u64,
    height_bits: u64,
    padding_bits: u64,
    theme: Theme,
    labels: bool,
    /// Level-of-detail camera as exact bit patterns
    /// `(zoom, pan_x, pan_y, detail_px)`; `None` is the classic
    /// camera-less render and never collides with any camera value —
    /// including the identity camera, which renders the same bytes but
    /// is still keyed separately (a cache key must never *assume* two
    /// paths agree).
    camera_bits: Option<(u64, u64, u64, u64)>,
}

impl FrameKey {
    /// The key for rendering `viewport` at session revision `revision`.
    pub fn new(revision: u64, viewport: &Viewport) -> FrameKey {
        FrameKey {
            revision,
            width_bits: viewport.width.to_bits(),
            height_bits: viewport.height.to_bits(),
            padding_bits: viewport.padding.to_bits(),
            theme: viewport.theme,
            labels: viewport.labels,
            camera_bits: viewport.camera.map(|c| {
                (c.zoom.to_bits(), c.pan_x.to_bits(), c.pan_y.to_bits(), c.detail_px.to_bits())
            }),
        }
    }
}

/// A bounded LRU cache of rendered SVG frames.
#[derive(Debug)]
pub struct FrameCache {
    capacity: usize,
    clock: u64,
    /// key → (last-used tick, rendered SVG).
    frames: HashMap<FrameKey, (u64, String)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FrameCache {
    /// An empty cache holding at most `capacity` frames (`0` disables
    /// caching entirely).
    pub fn new(capacity: usize) -> FrameCache {
        FrameCache { capacity, clock: 0, frames: HashMap::new(), hits: 0, misses: 0, evictions: 0 }
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Frames evicted so far — LRU victims plus stale-revision drops.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a frame, refreshing its recency on a hit.
    pub fn get(&mut self, key: &FrameKey) -> Option<String> {
        self.clock += 1;
        match self.frames.get_mut(key) {
            Some((used, svg)) => {
                *used = self.clock;
                self.hits += 1;
                Some(svg.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a frame, refreshing its recency and counting the hit —
    /// but **not** counting a miss. The lock-free render fast path
    /// probes with a possibly-stale revision mirror; a miss there is
    /// re-checked under the session lock via [`FrameCache::get`], which
    /// is where the authoritative miss is recorded. Counting here too
    /// would double-bill every real miss.
    pub fn lookup(&mut self, key: &FrameKey) -> Option<String> {
        match self.frames.get_mut(key) {
            Some((used, svg)) => {
                self.clock += 1;
                *used = self.clock;
                self.hits += 1;
                Some(svg.clone())
            }
            None => None,
        }
    }

    /// Inserts a freshly rendered frame, evicting the least recently
    /// used entry when full. Frames at an older revision than `key`
    /// are dropped eagerly — the session can never render them again,
    /// so they are dead weight, and dropping them keeps the LRU scan
    /// honest about what is actually reusable.
    pub fn insert(&mut self, key: FrameKey, svg: String) {
        if self.capacity == 0 {
            return;
        }
        let before = self.frames.len();
        self.frames.retain(|k, _| k.revision >= key.revision);
        self.evictions += (before - self.frames.len()) as u64;
        if self.frames.len() >= self.capacity {
            // Deterministic LRU victim: smallest tick (ticks are
            // unique, so no tie-break is needed).
            if let Some(victim) =
                self.frames.iter().min_by_key(|(_, (used, _))| *used).map(|(k, _)| *k)
            {
                self.frames.remove(&victim);
                self.evictions += 1;
            }
        }
        self.clock += 1;
        self.frames.insert(key, (self.clock, svg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(revision: u64, w: f64) -> FrameKey {
        FrameKey::new(revision, &Viewport::new(w, 600.0))
    }

    #[test]
    fn hit_after_insert_miss_after_revision_change() {
        let mut c = FrameCache::new(4);
        assert_eq!(c.get(&key(1, 800.0)), None);
        c.insert(key(1, 800.0), "<svg1>".into());
        assert_eq!(c.get(&key(1, 800.0)), Some("<svg1>".into()));
        assert_eq!(c.get(&key(2, 800.0)), None, "new revision misses");
        assert_eq!((c.hits(), c.misses()), (1, 2));
    }

    #[test]
    fn distinct_presentation_is_distinct_keys() {
        let vp = Viewport::new(800.0, 600.0);
        let dark = vp.clone().with_theme(Theme::Dark);
        let labelled = vp.clone().with_labels(true);
        let padded = vp.clone().with_padding(10.0);
        let keys = [
            FrameKey::new(1, &vp),
            FrameKey::new(1, &dark),
            FrameKey::new(1, &labelled),
            FrameKey::new(1, &padded),
        ];
        for (i, a) in keys.iter().enumerate() {
            for (j, b) in keys.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }

    #[test]
    fn lru_evicts_oldest_and_stale_revisions_drop() {
        let mut c = FrameCache::new(2);
        c.insert(key(1, 100.0), "a".into());
        c.insert(key(1, 200.0), "b".into());
        assert_eq!(c.get(&key(1, 100.0)), Some("a".into())); // refresh a
        c.insert(key(1, 300.0), "c".into()); // evicts b (LRU)
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(&key(1, 200.0)), None);
        assert_eq!(c.get(&key(1, 100.0)), Some("a".into()));
        // A newer revision flushes everything older.
        c.insert(key(5, 100.0), "new".into());
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 3, "both rev-1 frames count as evicted");
        assert_eq!(c.get(&key(5, 100.0)), Some("new".into()));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = FrameCache::new(0);
        c.insert(key(1, 800.0), "a".into());
        assert!(c.is_empty());
        assert_eq!(c.get(&key(1, 800.0)), None);
    }
}
