//! Minimal, dependency-free JSON with **deterministic** serialization.
//!
//! The wire protocol promises byte-identical transcripts for identical
//! command scripts, so the serializer must be a pure function of the
//! value: object members keep their insertion order, numbers render
//! through Rust's shortest-round-trip float formatting, and string
//! escapes are canonical (two-character escapes where JSON defines
//! them, `\u00XX` for the remaining control characters). The parser
//! accepts general JSON (any member order, `\uXXXX` escapes including
//! surrogate pairs, scientific notation) because request lines come
//! from foreign clients.
//!
//! Parsing is hardened for the trust boundary it sits on: input depth
//! is capped so a `[[[[…`-bomb cannot overflow the stack, and every
//! error carries the byte offset where parsing stopped.

use std::fmt;

/// Maximum nesting depth the parser accepts. Deep enough for any real
/// protocol message (ours nest two levels), shallow enough that a
/// hostile `[[[[…` line fails fast instead of exhausting the stack.
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects preserve insertion order — serialization is
/// deterministic by construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; always finite (JSON has no NaN/∞).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer: present, finite,
    /// integral and in `[0, 2^53]` (exactly representable).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// Serializes deterministically (no whitespace, insertion-ordered
    /// members, shortest-round-trip numbers).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (a request line is exactly one value).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Writes `n`, which must be finite, as a JSON number. Rust's `Display`
/// for `f64` produces the shortest string that round-trips, so integral
/// values render without a fractional part (`5`, not `5.0`) and the
/// output is stable across platforms.
fn write_number(n: f64, out: &mut String) {
    debug_assert!(n.is_finite(), "JSON cannot carry {n}");
    if n == 0.0 {
        // Collapse -0.0: "-0" and "0" decode equal but compare unequal
        // as transcript bytes.
        out.push('0');
    } else {
        use fmt::Write;
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable reason.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { message: message.into(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the
    /// `u`), combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_structures_preserving_member_order() {
        let v = Json::parse(r#"{"b":1,"a":[true,null,"x"]}"#).unwrap();
        assert_eq!(
            v,
            Json::Obj(vec![
                ("b".into(), Json::Num(1.0)),
                (
                    "a".into(),
                    Json::Arr(vec![Json::Bool(true), Json::Null, Json::Str("x".into())])
                ),
            ])
        );
        assert_eq!(v.get("b"), Some(&Json::Num(1.0)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn encode_is_deterministic_and_reparses() {
        let v = Json::Obj(vec![
            ("cmd".into(), Json::Str("render".into())),
            ("w".into(), Json::Num(800.0)),
            ("f".into(), Json::Num(0.5)),
            ("nested".into(), Json::Arr(vec![Json::Num(-0.0), Json::Str("a\"b\\c\nd".into())])),
        ]);
        let text = v.encode();
        assert_eq!(text, r#"{"cmd":"render","w":800,"f":0.5,"nested":[0,"a\"b\\c\nd"]}"#);
        let mut expected = v.clone();
        // -0.0 canonicalizes to 0 on the wire.
        if let Json::Obj(m) = &mut expected {
            m[3].1 = Json::Arr(vec![Json::Num(0.0), Json::Str("a\"b\\c\nd".into())]);
        }
        assert_eq!(Json::parse(&text).unwrap(), expected);
        assert_eq!(text, Json::parse(&text).unwrap().encode(), "fixed point");
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = Json::parse(r#""\u00e9\ud83d\ude00\u0007""#).unwrap();
        assert_eq!(v, Json::Str("é😀\u{7}".into()));
        // Canonical re-encode: printable stays literal, control escapes.
        assert_eq!(v.encode(), "\"é😀\\u0007\"");
    }

    #[test]
    fn hostile_inputs_error_instead_of_crashing() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "01x",
            "1e400",
            "nulll",
            "{\"a\":1} extra",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn as_u64_accepts_exact_integers_only() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }
}
