//! Resource records: hosts, routers, links, clusters, sites.

use std::fmt;

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the dense index backing this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index previously obtained via
            /// `index` on the same platform.
            pub fn from_index(index: usize) -> $name {
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

dense_id!(
    /// Identifier of a [`Host`] within one [`crate::Platform`].
    HostId, "h"
);
dense_id!(
    /// Identifier of a [`Router`] within one [`crate::Platform`].
    RouterId, "r"
);
dense_id!(
    /// Identifier of a [`Link`] within one [`crate::Platform`].
    LinkId, "l"
);
dense_id!(
    /// Identifier of a [`Cluster`] within one [`crate::Platform`].
    ClusterId, "cl"
);
dense_id!(
    /// Identifier of a [`Site`] within one [`crate::Platform`].
    SiteId, "s"
);

/// A vertex of the network graph: either a host or a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// A computing host.
    Host(HostId),
    /// A router or switch.
    Router(RouterId),
}

impl From<HostId> for NodeId {
    fn from(h: HostId) -> NodeId {
        NodeId::Host(h)
    }
}

impl From<RouterId> for NodeId {
    fn from(r: RouterId) -> NodeId {
        NodeId::Router(r)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Host(h) => h.fmt(f),
            NodeId::Router(r) => r.fmt(f),
        }
    }
}

/// A computing host.
#[derive(Debug, Clone, PartialEq)]
pub struct Host {
    pub(crate) id: HostId,
    pub(crate) name: String,
    /// Computing power, MFlop/s.
    pub(crate) power: f64,
    pub(crate) cluster: ClusterId,
}

impl Host {
    /// This host's id.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// Unique host name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Computing power in MFlop/s.
    pub fn power(&self) -> f64 {
        self.power
    }

    /// The cluster this host belongs to.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }
}

/// A router or switch (no computing power; zero-cost crossing).
#[derive(Debug, Clone, PartialEq)]
pub struct Router {
    pub(crate) id: RouterId,
    pub(crate) name: String,
}

impl Router {
    /// This router's id.
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// Unique router name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Where a link sits in the platform hierarchy.
///
/// The case studies reason about levels: Fig. 6/7 single out the links
/// "interconnecting the two clusters"; Fig. 8 aggregates links together
/// with the hosts of their cluster/site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkScope {
    /// An intra-cluster link (host uplink or cluster switch fabric).
    Cluster(ClusterId),
    /// A link between clusters of the same site.
    Site(SiteId),
    /// A backbone link between sites.
    Grid,
}

/// A network link with bandwidth and latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    pub(crate) id: LinkId,
    pub(crate) name: String,
    /// Bandwidth capacity, Mbit/s.
    pub(crate) bandwidth: f64,
    /// Latency, seconds.
    pub(crate) latency: f64,
    pub(crate) scope: LinkScope,
}

impl Link {
    /// This link's id.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Unique link name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bandwidth capacity in Mbit/s.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Latency in seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Hierarchical scope of the link.
    pub fn scope(&self) -> LinkScope {
        self.scope
    }
}

/// A homogeneous group of hosts behind a common switch.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    pub(crate) id: ClusterId,
    pub(crate) name: String,
    pub(crate) site: SiteId,
    pub(crate) hosts: Vec<HostId>,
}

impl Cluster {
    /// This cluster's id.
    pub fn id(&self) -> ClusterId {
        self.id
    }

    /// Unique cluster name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The site this cluster belongs to.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Hosts of this cluster, in creation order.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }
}

/// A geographical/administrative site grouping clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    pub(crate) id: SiteId,
    pub(crate) name: String,
    pub(crate) clusters: Vec<ClusterId>,
}

impl Site {
    /// This site's id.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Unique site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Clusters of this site, in creation order.
    pub fn clusters(&self) -> &[ClusterId] {
        &self.clusters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(LinkId(0).to_string(), "l0");
        assert_eq!(NodeId::Router(RouterId(7)).to_string(), "r7");
        assert_eq!(SiteId(1).to_string(), "s1");
        assert_eq!(ClusterId(2).to_string(), "cl2");
    }

    #[test]
    fn id_index_roundtrip() {
        assert_eq!(HostId::from_index(5).index(), 5);
        assert_eq!(LinkId::from_index(9).index(), 9);
    }

    #[test]
    fn node_id_from_impls() {
        let n: NodeId = HostId(1).into();
        assert_eq!(n, NodeId::Host(HostId(1)));
        let n: NodeId = RouterId(2).into();
        assert_eq!(n, NodeId::Router(RouterId(2)));
    }
}
