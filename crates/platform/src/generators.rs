//! Ready-made platform generators for the paper's case studies and for
//! layout stress tests.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::builder::PlatformBuilder;
use crate::error::PlatformError;
use crate::graph::Platform;
use crate::resource::LinkScope;

/// Configuration of the NAS-DT platform of paper §5.1: two homogeneous
/// clusters joined by a narrow interconnection.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoClustersConfig {
    /// Hosts per cluster (the paper uses 11 + 11).
    pub hosts_per_cluster: usize,
    /// Host power, MFlop/s.
    pub host_power: f64,
    /// Intra-cluster uplink bandwidth, Mbit/s.
    pub intra_bandwidth: f64,
    /// Intra-cluster uplink latency, seconds.
    pub intra_latency: f64,
    /// Inter-cluster link bandwidth, Mbit/s.
    pub inter_bandwidth: f64,
    /// Inter-cluster link latency, seconds.
    pub inter_latency: f64,
}

impl Default for TwoClustersConfig {
    fn default() -> Self {
        TwoClustersConfig {
            hosts_per_cluster: 11,
            host_power: 1000.0,     // 1 GFlop/s, Grid'5000-era node
            intra_bandwidth: 1000.0, // GbE uplinks
            intra_latency: 5e-5,
            // Wider than one uplink but far narrower than the sum of
            // the cluster's uplinks: aggregate cross-cluster traffic
            // saturates it (the phenomenon of Fig. 6).
            inter_bandwidth: 1500.0,
            inter_latency: 5e-4,
        }
    }
}

/// Builds the two-cluster platform of §5.1 (clusters `adonis` and
/// `griffon`, hosts `adonis-1..n` / `griffon-1..n`).
///
/// The clusters sit on distinct sites joined by a two-segment backbone
/// (`adonis-bb` and `griffon-bb` around a core router), mirroring the
/// paper's Fig. 6 where *two* interconnecting links appear saturated.
///
/// # Errors
///
/// Propagates [`PlatformError`] from validation (e.g. a zero
/// `hosts_per_cluster` yields an empty, valid platform though).
pub fn two_clusters(cfg: &TwoClustersConfig) -> Result<Platform, PlatformError> {
    let mut pb = PlatformBuilder::new("two-clusters");
    let s1 = pb.site("grenoble");
    let s2 = pb.site("nancy");
    let (_, sw1) = pb.star_cluster(
        s1,
        "adonis",
        cfg.hosts_per_cluster,
        cfg.host_power,
        cfg.intra_bandwidth,
        cfg.intra_latency,
    );
    let (_, sw2) = pb.star_cluster(
        s2,
        "griffon",
        cfg.hosts_per_cluster,
        cfg.host_power,
        cfg.intra_bandwidth,
        cfg.intra_latency,
    );
    let core = pb.router("backbone");
    let bb1 = pb.link("adonis-bb", cfg.inter_bandwidth, cfg.inter_latency, LinkScope::Grid);
    let bb2 = pb.link("griffon-bb", cfg.inter_bandwidth, cfg.inter_latency, LinkScope::Grid);
    pb.connect(sw1.into(), core.into(), bb1);
    pb.connect(sw2.into(), core.into(), bb2);
    pb.build()
}

/// Configuration of the synthetic Grid'5000 model of paper §5.2.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid5000Config {
    /// Number of sites (Grid'5000 had 9–10 around 2012).
    pub sites: usize,
    /// Inclusive range of clusters per site.
    pub clusters_per_site: (usize, usize),
    /// Total number of hosts; the generator spreads them over the
    /// clusters (the paper states 2170 computing hosts).
    pub total_hosts: usize,
    /// Inclusive range of per-host power, MFlop/s (heterogeneous
    /// generations of nodes).
    pub host_power: (f64, f64),
    /// Inclusive range of intra-cluster uplink bandwidth, Mbit/s —
    /// homogeneous inside a cluster, heterogeneous across clusters
    /// (mixed NIC generations). This heterogeneity is what the
    /// bandwidth-centric scheduler keys on (Fig. 9's locality).
    pub intra_bandwidth: (f64, f64),
    /// Site-to-backbone bandwidth range, Mbit/s (heterogeneous national
    /// backbone).
    pub site_bandwidth: (f64, f64),
    /// RNG seed for the heterogeneity draws.
    pub seed: u64,
}

impl Default for Grid5000Config {
    fn default() -> Self {
        Grid5000Config {
            sites: 10,
            clusters_per_site: (2, 4),
            total_hosts: 2170,
            host_power: (800.0, 2400.0),
            intra_bandwidth: (100.0, 1000.0),
            site_bandwidth: (150.0, 1500.0),
            seed: 0x9e37_79b9,
        }
    }
}

/// Site names used by the Grid'5000 generator (the real testbed's
/// sites, for familiarity).
pub const G5K_SITE_NAMES: [&str; 10] = [
    "grenoble", "nancy", "rennes", "lyon", "bordeaux", "lille", "toulouse", "sophia",
    "orsay", "reims",
];

/// Builds a synthetic Grid'5000-like platform.
///
/// Structure: one core backbone router; each site has a router linked
/// to the core (`{site}-bb`, heterogeneous bandwidth); each cluster is
/// a star behind the site router (`{cluster}-up` links of scope
/// [`LinkScope::Site`]); hosts hang off cluster switches.
///
/// Deterministic for a given config (all randomness from `cfg.seed`).
///
/// # Errors
///
/// Propagates [`PlatformError`] from validation.
pub fn grid5000(cfg: &Grid5000Config) -> Result<Platform, PlatformError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut pb = PlatformBuilder::new("grid5000");
    let core = pb.router("renater");

    // Decide the cluster layout first so that hosts can be spread.
    let mut site_clusters: Vec<usize> = Vec::with_capacity(cfg.sites);
    for _ in 0..cfg.sites {
        site_clusters.push(rng.gen_range(cfg.clusters_per_site.0..=cfg.clusters_per_site.1));
    }
    let total_clusters: usize = site_clusters.iter().sum::<usize>().max(1);
    let base = cfg.total_hosts / total_clusters;
    let mut remainder = cfg.total_hosts % total_clusters;

    let mut cluster_no = 0usize;
    for (si, &n_clusters) in site_clusters.iter().enumerate() {
        let site_name = G5K_SITE_NAMES
            .get(si)
            .map(|s| (*s).to_owned())
            .unwrap_or_else(|| format!("site{si}"));
        let site = pb.site(site_name.clone());
        let site_router = pb.router(format!("{site_name}-rt"));
        let bb = pb.link(
            format!("{site_name}-bb"),
            rng.gen_range(cfg.site_bandwidth.0..=cfg.site_bandwidth.1),
            5e-3,
            LinkScope::Grid,
        );
        pb.connect(site_router.into(), core.into(), bb);
        for ci in 0..n_clusters {
            cluster_no += 1;
            let mut n_hosts = base;
            if remainder > 0 {
                n_hosts += 1;
                remainder -= 1;
            }
            // Homogeneous power inside a cluster, heterogeneous across.
            let power = rng.gen_range(cfg.host_power.0..=cfg.host_power.1);
            let uplink_bw = rng.gen_range(cfg.intra_bandwidth.0..=cfg.intra_bandwidth.1);
            let cname = format!("{site_name}-c{}", ci + 1);
            let (cl, sw) =
                pb.star_cluster(site, &cname, n_hosts, power, uplink_bw, 5e-5);
            let up = pb.link(
                format!("{cname}-up"),
                cfg.intra_bandwidth.1 * 10.0,
                1e-4,
                LinkScope::Site(site),
            );
            pb.connect(sw.into(), site_router.into(), up);
            let _ = (cl, cluster_no);
        }
    }
    pb.build()
}

/// Builds a star platform: `n` hosts around one switch. Useful for
/// layout and sharing unit experiments.
///
/// # Errors
///
/// Propagates [`PlatformError`] from validation.
pub fn star(n: usize, host_power: f64, bandwidth: f64) -> Result<Platform, PlatformError> {
    let mut pb = PlatformBuilder::new("star");
    let s = pb.site("site");
    pb.star_cluster(s, "star", n, host_power, bandwidth, 1e-5);
    pb.build()
}

/// Builds a two-level fat-tree-ish platform: `pods` pods of `hosts_per_pod`
/// hosts; pod switches all connect to a core router with `core_bandwidth`
/// links. Exercises multi-level routing beyond the case studies.
///
/// # Errors
///
/// Propagates [`PlatformError`] from validation.
pub fn fat_tree(
    pods: usize,
    hosts_per_pod: usize,
    host_power: f64,
    edge_bandwidth: f64,
    core_bandwidth: f64,
) -> Result<Platform, PlatformError> {
    let mut pb = PlatformBuilder::new("fat-tree");
    let s = pb.site("dc");
    let core = pb.router("core");
    for p in 0..pods {
        let name = format!("pod{p}");
        let (_, sw) = pb.star_cluster(s, &name, hosts_per_pod, host_power, edge_bandwidth, 1e-5);
        let up = pb.link(format!("{name}-up"), core_bandwidth, 1e-5, LinkScope::Site(s));
        pb.connect(sw.into(), core.into(), up);
    }
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RouteTable;

    #[test]
    fn two_clusters_shape() {
        let p = two_clusters(&TwoClustersConfig::default()).unwrap();
        assert_eq!(p.hosts().len(), 22);
        assert_eq!(p.clusters().len(), 2);
        assert_eq!(p.sites().len(), 2);
        // 22 uplinks + 2 backbone segments.
        assert_eq!(p.links().len(), 24);
        assert_eq!(p.links_in_scope(LinkScope::Grid).len(), 2);
    }

    #[test]
    fn two_clusters_cross_route_uses_backbone() {
        let p = two_clusters(&TwoClustersConfig::default()).unwrap();
        let mut rt = RouteTable::new();
        let a = p.host_by_name("adonis-3").unwrap().id();
        let g = p.host_by_name("griffon-7").unwrap().id();
        let r = rt.route(&p, a, g).unwrap();
        // up, cluster-sw → core via adonis-bb, core → cluster-sw via
        // griffon-bb, down: 4 links.
        assert_eq!(r.links.len(), 4);
        let names: Vec<&str> = r.links.iter().map(|&l| p.link(l).name()).collect();
        assert!(names.contains(&"adonis-bb"));
        assert!(names.contains(&"griffon-bb"));
    }

    #[test]
    fn grid5000_shape_and_determinism() {
        let cfg = Grid5000Config::default();
        let p1 = grid5000(&cfg).unwrap();
        let p2 = grid5000(&cfg).unwrap();
        assert_eq!(p1.hosts().len(), 2170);
        assert_eq!(p1.sites().len(), 10);
        assert!(p1.clusters().len() >= 20);
        // Determinism: same seed, same structure.
        assert_eq!(p1.hosts().len(), p2.hosts().len());
        assert_eq!(p1.links().len(), p2.links().len());
        assert_eq!(
            p1.host_by_name("nancy-c1-1").unwrap().power(),
            p2.host_by_name("nancy-c1-1").unwrap().power()
        );
    }

    #[test]
    fn grid5000_different_seed_differs() {
        let a = grid5000(&Grid5000Config::default()).unwrap();
        let b = grid5000(&Grid5000Config { seed: 7, ..Default::default() }).unwrap();
        let pa: f64 = a.total_power();
        let pb_: f64 = b.total_power();
        assert_ne!(pa, pb_);
    }

    #[test]
    fn grid5000_routes_cross_hierarchy() {
        let p = grid5000(&Grid5000Config {
            total_hosts: 64,
            ..Default::default()
        })
        .unwrap();
        let mut rt = RouteTable::new();
        let h0 = p.hosts().first().unwrap().id();
        let hn = p.hosts().last().unwrap().id();
        let r = rt.route(&p, h0, hn).unwrap();
        // host-up, cluster-up, site-bb, site-bb, cluster-up, host-up.
        assert_eq!(r.links.len(), 6);
        assert!(r.bottleneck > 0.0);
    }

    #[test]
    fn star_and_fat_tree_build() {
        let s = star(8, 100.0, 1000.0).unwrap();
        assert_eq!(s.hosts().len(), 8);
        let f = fat_tree(4, 4, 100.0, 1000.0, 4000.0).unwrap();
        assert_eq!(f.hosts().len(), 16);
        let mut rt = RouteTable::new();
        let a = f.host_by_name("pod0-1").unwrap().id();
        let b = f.host_by_name("pod3-2").unwrap().id();
        assert_eq!(rt.route(&f, a, b).unwrap().links.len(), 4);
    }
}

/// Builds a 2-D torus of `rows × cols` hosts: each host links to its
/// east and south neighbours (wrapping). The regular topologies of
/// Blue Gene-class machines (paper §2.4's [24, 34]) are tori; this
/// generator lets layout and routing be exercised on them.
///
/// All hosts land in a single cluster; links are direct host-to-host
/// (no switches).
///
/// # Errors
///
/// Propagates [`PlatformError`] from validation.
///
/// # Panics
///
/// Panics when `rows` or `cols` is zero.
pub fn torus(
    rows: usize,
    cols: usize,
    host_power: f64,
    bandwidth: f64,
) -> Result<Platform, PlatformError> {
    assert!(rows > 0 && cols > 0, "torus dimensions must be positive");
    let mut pb = PlatformBuilder::new("torus");
    let site = pb.site("machine");
    let cl = pb.cluster(site, "torus");
    let mut hosts = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            hosts.push(pb.host(cl, format!("node-{r}-{c}"), host_power));
        }
    }
    let at = |r: usize, c: usize| hosts[(r % rows) * cols + (c % cols)];
    for r in 0..rows {
        for c in 0..cols {
            // East link (skip duplicates on 1-wide dimensions).
            if cols > 1 {
                let l = pb.link(
                    format!("l-{r}-{c}-e"),
                    bandwidth,
                    1e-6,
                    LinkScope::Cluster(cl),
                );
                pb.connect(at(r, c).into(), at(r, c + 1).into(), l);
            }
            if rows > 1 {
                let l = pb.link(
                    format!("l-{r}-{c}-s"),
                    bandwidth,
                    1e-6,
                    LinkScope::Cluster(cl),
                );
                pb.connect(at(r, c).into(), at(r + 1, c).into(), l);
            }
        }
    }
    pb.build()
}

#[cfg(test)]
mod torus_tests {
    use super::*;
    use crate::routing::RouteTable;

    #[test]
    fn torus_shape() {
        let p = torus(4, 4, 100.0, 1000.0).unwrap();
        assert_eq!(p.hosts().len(), 16);
        // 2 links per node in a 2-D torus.
        assert_eq!(p.links().len(), 32);
        assert!(p.routers().is_empty());
    }

    #[test]
    fn torus_routes_wrap_around() {
        let p = torus(4, 4, 100.0, 1000.0).unwrap();
        let mut rt = RouteTable::new();
        let a = p.host_by_name("node-0-0").unwrap().id();
        let b = p.host_by_name("node-0-3").unwrap().id();
        // Wrapping makes node-0-3 one hop away from node-0-0.
        assert_eq!(rt.route(&p, a, b).unwrap().links.len(), 1);
        let c = p.host_by_name("node-2-2").unwrap().id();
        // Manhattan distance on the torus: 2 + 2 = 4 hops.
        assert_eq!(rt.route(&p, a, c).unwrap().links.len(), 4);
    }

    #[test]
    fn degenerate_torus_line() {
        let p = torus(1, 5, 100.0, 1000.0).unwrap();
        assert_eq!(p.hosts().len(), 5);
        assert_eq!(p.links().len(), 5); // ring
    }
}
