//! # viva-platform — network/machine topology substrate
//!
//! Models the execution environments whose traces VIVA visualizes:
//! hosts with computing power, network links with bandwidth and
//! latency, routers/switches, static shortest-path routing, and the
//! `grid → site → cluster → host` hierarchy the paper's spatial
//! aggregation operates on (§3.2.2).
//!
//! Ready-made generators reproduce the two evaluation platforms:
//!
//! * [`generators::two_clusters`] — the NAS-DT setting of §5.1: two
//!   homogeneous 11-host clusters (Adonis and Griffon) joined by a
//!   narrow interconnection.
//! * [`generators::grid5000`] — a synthetic 2170-host model of the
//!   Grid'5000 testbed used in §5.2.
//!
//! ## Example
//!
//! ```
//! use viva_platform::generators;
//!
//! let p = generators::two_clusters(&generators::TwoClustersConfig::default())?;
//! assert_eq!(p.hosts().len(), 22);
//! let mut routes = viva_platform::RouteTable::new();
//! // A route between the clusters crosses the interconnection links.
//! let h0 = p.host_by_name("adonis-1").unwrap().id();
//! let h21 = p.host_by_name("griffon-11").unwrap().id();
//! assert!(!routes.route(&p, h0, h21)?.links.is_empty());
//! # Ok::<(), viva_platform::PlatformError>(())
//! ```

pub mod builder;
pub mod error;
pub mod export;
pub mod generators;
pub mod graph;
pub mod resource;
pub mod routing;

pub use builder::PlatformBuilder;
pub use error::PlatformError;
pub use graph::Platform;
pub use resource::{
    Cluster, ClusterId, Host, HostId, Link, LinkId, LinkScope, NodeId, Router, RouterId, Site,
    SiteId,
};
pub use routing::{Route, RouteTable};
