//! The immutable platform graph produced by [`crate::PlatformBuilder`].

use crate::resource::{
    Cluster, ClusterId, Host, HostId, Link, LinkId, LinkScope, NodeId, Router, RouterId, Site,
    SiteId,
};

/// An immutable platform: resources plus the undirected network graph
/// connecting them.
///
/// Obtained from [`crate::PlatformBuilder::build`], which validates
/// capacities, connectivity and name uniqueness.
#[derive(Debug, Clone)]
pub struct Platform {
    pub(crate) name: String,
    pub(crate) sites: Vec<Site>,
    pub(crate) clusters: Vec<Cluster>,
    pub(crate) hosts: Vec<Host>,
    pub(crate) routers: Vec<Router>,
    pub(crate) links: Vec<Link>,
    /// Endpoints of each link (parallel to `links`).
    pub(crate) endpoints: Vec<(NodeId, NodeId)>,
    /// Adjacency per node, indexed by [`Platform::node_index`].
    pub(crate) adj: Vec<Vec<(LinkId, NodeId)>>,
}

impl Platform {
    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// All routers.
    pub fn routers(&self) -> &[Router] {
        &self.routers
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The host with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of this platform.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.index()]
    }

    /// The router with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of this platform.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of this platform.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The cluster with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of this platform.
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// The site with the given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of this platform.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// Looks a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<&Host> {
        self.hosts.iter().find(|h| h.name == name)
    }

    /// Looks a link up by name.
    pub fn link_by_name(&self, name: &str) -> Option<&Link> {
        self.links.iter().find(|l| l.name == name)
    }

    /// Looks a cluster up by name.
    pub fn cluster_by_name(&self, name: &str) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.name == name)
    }

    /// Looks a site up by name.
    pub fn site_by_name(&self, name: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// The two endpoints of a link.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of this platform.
    pub fn link_endpoints(&self, id: LinkId) -> (NodeId, NodeId) {
        self.endpoints[id.index()]
    }

    /// Total number of graph nodes (hosts + routers).
    pub fn node_count(&self) -> usize {
        self.hosts.len() + self.routers.len()
    }

    /// Dense index of a node: hosts first, then routers.
    pub fn node_index(&self, node: NodeId) -> usize {
        match node {
            NodeId::Host(h) => h.index(),
            NodeId::Router(r) => self.hosts.len() + r.index(),
        }
    }

    /// Inverse of [`Platform::node_index`].
    pub fn node_at(&self, index: usize) -> NodeId {
        if index < self.hosts.len() {
            NodeId::Host(HostId::from_index(index))
        } else {
            NodeId::Router(RouterId::from_index(index - self.hosts.len()))
        }
    }

    /// Links incident to `node`, with the node on the other side.
    pub fn neighbors(&self, node: NodeId) -> &[(LinkId, NodeId)] {
        &self.adj[self.node_index(node)]
    }

    /// The site of a host (via its cluster).
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of this platform.
    pub fn site_of_host(&self, id: HostId) -> SiteId {
        self.cluster(self.host(id).cluster).site
    }

    /// Links of a given scope, in id order.
    pub fn links_in_scope(&self, scope: LinkScope) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| l.scope == scope)
            .map(|l| l.id)
            .collect()
    }

    /// Total computing power across all hosts, MFlop/s.
    pub fn total_power(&self) -> f64 {
        self.hosts.iter().map(|h| h.power).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;

    fn tiny() -> Platform {
        let mut pb = PlatformBuilder::new("tiny");
        let site = pb.site("s");
        let cl = pb.cluster(site, "c");
        let h1 = pb.host(cl, "h1", 100.0);
        let h2 = pb.host(cl, "h2", 25.0);
        let sw = pb.router("sw");
        let l1 = pb.link("h1-up", 1000.0, 1e-4, LinkScope::Cluster(cl));
        let l2 = pb.link("h2-up", 1000.0, 1e-4, LinkScope::Cluster(cl));
        pb.connect(h1.into(), sw.into(), l1);
        pb.connect(h2.into(), sw.into(), l2);
        pb.build().unwrap()
    }

    #[test]
    fn lookups_by_name() {
        let p = tiny();
        assert_eq!(p.host_by_name("h1").unwrap().power(), 100.0);
        assert!(p.host_by_name("nope").is_none());
        assert_eq!(p.link_by_name("h2-up").unwrap().bandwidth(), 1000.0);
        assert_eq!(p.cluster_by_name("c").unwrap().hosts().len(), 2);
        assert_eq!(p.site_by_name("s").unwrap().clusters().len(), 1);
    }

    #[test]
    fn node_index_roundtrip() {
        let p = tiny();
        for i in 0..p.node_count() {
            assert_eq!(p.node_index(p.node_at(i)), i);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let p = tiny();
        let h1 = p.host_by_name("h1").unwrap().id();
        let sw = p.routers()[0].id();
        let n_h1 = p.neighbors(h1.into());
        assert_eq!(n_h1.len(), 1);
        assert_eq!(n_h1[0].1, NodeId::Router(sw));
        let n_sw = p.neighbors(sw.into());
        assert_eq!(n_sw.len(), 2);
    }

    #[test]
    fn scope_filter_and_power() {
        let p = tiny();
        let cl = p.clusters()[0].id();
        assert_eq!(p.links_in_scope(LinkScope::Cluster(cl)).len(), 2);
        assert!(p.links_in_scope(LinkScope::Grid).is_empty());
        assert_eq!(p.total_power(), 125.0);
        assert_eq!(p.site_of_host(p.hosts()[0].id()), p.sites()[0].id());
    }
}
