//! Incremental construction and validation of [`Platform`]s.

use std::collections::HashSet;

use crate::error::PlatformError;
use crate::graph::Platform;
use crate::resource::{
    Cluster, ClusterId, Host, HostId, Link, LinkId, LinkScope, NodeId, Router, RouterId, Site,
    SiteId,
};

/// Builder for [`Platform`].
///
/// Resources are created first ([`site`](PlatformBuilder::site),
/// [`cluster`](PlatformBuilder::cluster), [`host`](PlatformBuilder::host),
/// [`router`](PlatformBuilder::router), [`link`](PlatformBuilder::link)),
/// then wired with [`connect`](PlatformBuilder::connect), and finally
/// validated by [`build`](PlatformBuilder::build).
#[derive(Debug)]
pub struct PlatformBuilder {
    name: String,
    sites: Vec<Site>,
    clusters: Vec<Cluster>,
    hosts: Vec<Host>,
    routers: Vec<Router>,
    links: Vec<Link>,
    endpoints: Vec<Option<(NodeId, NodeId)>>,
}

impl PlatformBuilder {
    /// Creates an empty builder for a platform called `name`.
    pub fn new(name: impl Into<String>) -> PlatformBuilder {
        PlatformBuilder {
            name: name.into(),
            sites: Vec::new(),
            clusters: Vec::new(),
            hosts: Vec::new(),
            routers: Vec::new(),
            links: Vec::new(),
            endpoints: Vec::new(),
        }
    }

    /// Declares a site.
    pub fn site(&mut self, name: impl Into<String>) -> SiteId {
        let id = SiteId::from_index(self.sites.len());
        self.sites.push(Site { id, name: name.into(), clusters: Vec::new() });
        id
    }

    /// Declares a cluster inside `site`.
    ///
    /// # Panics
    ///
    /// Panics when `site` was not created by this builder.
    pub fn cluster(&mut self, site: SiteId, name: impl Into<String>) -> ClusterId {
        let id = ClusterId::from_index(self.clusters.len());
        self.clusters.push(Cluster {
            id,
            name: name.into(),
            site,
            hosts: Vec::new(),
        });
        self.sites[site.index()].clusters.push(id);
        id
    }

    /// Declares a host of `power` MFlop/s inside `cluster`.
    ///
    /// # Panics
    ///
    /// Panics when `cluster` was not created by this builder.
    pub fn host(&mut self, cluster: ClusterId, name: impl Into<String>, power: f64) -> HostId {
        let id = HostId::from_index(self.hosts.len());
        self.hosts.push(Host { id, name: name.into(), power, cluster });
        self.clusters[cluster.index()].hosts.push(id);
        id
    }

    /// Declares a router.
    pub fn router(&mut self, name: impl Into<String>) -> RouterId {
        let id = RouterId::from_index(self.routers.len());
        self.routers.push(Router { id, name: name.into() });
        id
    }

    /// Declares a link of `bandwidth` Mbit/s and `latency` seconds.
    /// The link still needs to be wired with
    /// [`connect`](PlatformBuilder::connect).
    pub fn link(
        &mut self,
        name: impl Into<String>,
        bandwidth: f64,
        latency: f64,
        scope: LinkScope,
    ) -> LinkId {
        let id = LinkId::from_index(self.links.len());
        self.links.push(Link { id, name: name.into(), bandwidth, latency, scope });
        self.endpoints.push(None);
        id
    }

    /// Wires `link` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics when `link` was not created by this builder or was
    /// already connected.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: LinkId) {
        let slot = &mut self.endpoints[link.index()];
        assert!(slot.is_none(), "link {link} connected twice");
        *slot = Some((a, b));
    }

    /// Convenience: declares a host, its uplink and the wiring to a
    /// switch in one call. Returns the new host id.
    pub fn host_with_uplink(
        &mut self,
        cluster: ClusterId,
        name: &str,
        power: f64,
        switch: RouterId,
        bandwidth: f64,
        latency: f64,
    ) -> HostId {
        let h = self.host(cluster, name, power);
        let l = self.link(
            format!("{name}-up"),
            bandwidth,
            latency,
            LinkScope::Cluster(cluster),
        );
        self.connect(h.into(), switch.into(), l);
        h
    }

    /// Convenience: declares a star cluster — `n` homogeneous hosts
    /// named `{name}-1..n` behind a fresh switch `{name}-sw`. Returns
    /// the cluster id and its switch.
    #[allow(clippy::too_many_arguments)]
    pub fn star_cluster(
        &mut self,
        site: SiteId,
        name: &str,
        n: usize,
        host_power: f64,
        link_bandwidth: f64,
        link_latency: f64,
    ) -> (ClusterId, RouterId) {
        let cl = self.cluster(site, name);
        let sw = self.router(format!("{name}-sw"));
        for i in 1..=n {
            self.host_with_uplink(
                cl,
                &format!("{name}-{i}"),
                host_power,
                sw,
                link_bandwidth,
                link_latency,
            );
        }
        (cl, sw)
    }

    fn check_names(&self) -> Result<(), PlatformError> {
        fn dup<'a>(names: impl Iterator<Item = &'a str>) -> Option<String> {
            let mut seen = HashSet::new();
            for n in names {
                if !seen.insert(n) {
                    return Some(n.to_owned());
                }
            }
            None
        }
        let found = [
            dup(self.hosts.iter().map(|h| h.name.as_str())),
            dup(self.routers.iter().map(|r| r.name.as_str())),
            dup(self.links.iter().map(|l| l.name.as_str())),
            dup(self.clusters.iter().map(|c| c.name.as_str())),
            dup(self.sites.iter().map(|s| s.name.as_str())),
        ]
        .into_iter()
        .flatten()
        .next();
        match found {
            Some(name) => Err(PlatformError::DuplicateName(name)),
            None => Ok(()),
        }
    }

    /// Validates and freezes the platform.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::InvalidCapacity`] — non-positive or
    ///   non-finite host power / link bandwidth;
    /// * [`PlatformError::InvalidLatency`] — negative or non-finite
    ///   link latency;
    /// * [`PlatformError::DuplicateName`] — name reuse within a
    ///   resource kind;
    /// * [`PlatformError::SelfLoop`] / [`PlatformError::DanglingLink`]
    ///   — miswired links;
    /// * [`PlatformError::Disconnected`] — a host unreachable from the
    ///   first host.
    pub fn build(self) -> Result<Platform, PlatformError> {
        for h in &self.hosts {
            if !(h.power.is_finite() && h.power > 0.0) {
                return Err(PlatformError::InvalidCapacity {
                    resource: h.name.clone(),
                    value: h.power,
                });
            }
        }
        for l in &self.links {
            if !(l.bandwidth.is_finite() && l.bandwidth > 0.0) {
                return Err(PlatformError::InvalidCapacity {
                    resource: l.name.clone(),
                    value: l.bandwidth,
                });
            }
            if !(l.latency.is_finite() && l.latency >= 0.0) {
                return Err(PlatformError::InvalidLatency {
                    link: l.name.clone(),
                    value: l.latency,
                });
            }
        }
        self.check_names()?;

        let mut endpoints = Vec::with_capacity(self.links.len());
        for (l, ep) in self.links.iter().zip(&self.endpoints) {
            match ep {
                None => {
                    return Err(PlatformError::DanglingLink { link: l.name.clone() });
                }
                Some((a, b)) if a == b => {
                    return Err(PlatformError::SelfLoop { link: l.name.clone() });
                }
                Some(pair) => endpoints.push(*pair),
            }
        }

        let mut p = Platform {
            name: self.name,
            sites: self.sites,
            clusters: self.clusters,
            hosts: self.hosts,
            routers: self.routers,
            links: self.links,
            endpoints,
            adj: Vec::new(),
        };
        let n = p.node_count();
        let mut adj = vec![Vec::new(); n];
        for (l, &(a, b)) in p.links.iter().zip(&p.endpoints) {
            adj[p.node_index(a)].push((l.id, b));
            adj[p.node_index(b)].push((l.id, a));
        }
        p.adj = adj;

        // Connectivity check: BFS over nodes from the first host.
        if let Some(first) = p.hosts.first() {
            let mut seen = vec![false; n];
            let mut queue = vec![p.node_index(NodeId::Host(first.id))];
            seen[queue[0]] = true;
            while let Some(i) = queue.pop() {
                for &(_, next) in &p.adj[i] {
                    let j = p.node_index(next);
                    if !seen[j] {
                        seen[j] = true;
                        queue.push(j);
                    }
                }
            }
            for h in &p.hosts {
                if !seen[p.node_index(NodeId::Host(h.id))] {
                    return Err(PlatformError::Disconnected { host: h.name.clone() });
                }
            }
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_cluster_wires_everything() {
        let mut pb = PlatformBuilder::new("t");
        let s = pb.site("s");
        let (cl, _sw) = pb.star_cluster(s, "c", 4, 100.0, 1000.0, 1e-4);
        let p = pb.build().unwrap();
        assert_eq!(p.cluster(cl).hosts().len(), 4);
        assert_eq!(p.links().len(), 4);
        assert_eq!(p.routers().len(), 1);
        assert_eq!(p.host_by_name("c-3").unwrap().cluster(), cl);
    }

    #[test]
    fn rejects_bad_power() {
        let mut pb = PlatformBuilder::new("t");
        let s = pb.site("s");
        let cl = pb.cluster(s, "c");
        pb.host(cl, "h", 0.0);
        assert!(matches!(
            pb.build(),
            Err(PlatformError::InvalidCapacity { .. })
        ));
    }

    #[test]
    fn rejects_bad_bandwidth_and_latency() {
        let mut pb = PlatformBuilder::new("t");
        let s = pb.site("s");
        let cl = pb.cluster(s, "c");
        let h = pb.host(cl, "h", 1.0);
        let r = pb.router("r");
        let l = pb.link("l", -5.0, 1e-4, LinkScope::Cluster(cl));
        pb.connect(h.into(), r.into(), l);
        assert!(matches!(
            pb.build(),
            Err(PlatformError::InvalidCapacity { .. })
        ));

        let mut pb = PlatformBuilder::new("t");
        let s = pb.site("s");
        let cl = pb.cluster(s, "c");
        let h = pb.host(cl, "h", 1.0);
        let r = pb.router("r");
        let l = pb.link("l", 5.0, -1.0, LinkScope::Cluster(cl));
        pb.connect(h.into(), r.into(), l);
        assert!(matches!(
            pb.build(),
            Err(PlatformError::InvalidLatency { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut pb = PlatformBuilder::new("t");
        let s = pb.site("s");
        let cl = pb.cluster(s, "c");
        pb.host(cl, "h", 1.0);
        pb.host(cl, "h", 1.0);
        assert_eq!(
            pb.build().unwrap_err(),
            PlatformError::DuplicateName("h".into())
        );
    }

    #[test]
    fn rejects_dangling_link() {
        let mut pb = PlatformBuilder::new("t");
        let s = pb.site("s");
        let cl = pb.cluster(s, "c");
        pb.host(cl, "h", 1.0);
        pb.link("l", 5.0, 0.0, LinkScope::Cluster(cl));
        assert!(matches!(pb.build(), Err(PlatformError::DanglingLink { .. })));
    }

    #[test]
    fn rejects_self_loop() {
        let mut pb = PlatformBuilder::new("t");
        let s = pb.site("s");
        let cl = pb.cluster(s, "c");
        let h = pb.host(cl, "h", 1.0);
        let l = pb.link("l", 5.0, 0.0, LinkScope::Cluster(cl));
        pb.connect(h.into(), h.into(), l);
        assert!(matches!(pb.build(), Err(PlatformError::SelfLoop { .. })));
    }

    #[test]
    fn rejects_disconnected_host() {
        let mut pb = PlatformBuilder::new("t");
        let s = pb.site("s");
        let cl = pb.cluster(s, "c");
        let h1 = pb.host(cl, "h1", 1.0);
        pb.host(cl, "h2", 1.0); // never wired
        let r = pb.router("r");
        let l = pb.link("l", 5.0, 0.0, LinkScope::Cluster(cl));
        pb.connect(h1.into(), r.into(), l);
        assert_eq!(
            pb.build().unwrap_err(),
            PlatformError::Disconnected { host: "h2".into() }
        );
    }

    #[test]
    fn empty_platform_builds() {
        let p = PlatformBuilder::new("empty").build().unwrap();
        assert!(p.hosts().is_empty());
        assert_eq!(p.node_count(), 0);
    }
}
