//! Platform serialization to Graphviz DOT.
//!
//! The paper's §2.3 discusses Graphviz-style static layout tools; this
//! exporter makes our platforms loadable by them, which is handy both
//! for debugging generators and for comparing static layouts against
//! the dynamic force-directed one.

use std::fmt::Write as _;

use crate::graph::Platform;
use crate::resource::NodeId;

/// Renders `platform` as an undirected Graphviz graph: hosts as boxes
/// (labelled with their power), routers as points, links as edges
/// (labelled with bandwidth). Deterministic output.
pub fn to_dot(platform: &Platform) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize(platform.name()));
    let _ = writeln!(out, "  node [fontsize=9];");
    for h in platform.hosts() {
        let _ = writeln!(
            out,
            "  {} [shape=box label=\"{}\\n{} MF/s\"];",
            sanitize(h.name()),
            h.name(),
            h.power()
        );
    }
    for r in platform.routers() {
        let _ = writeln!(out, "  {} [shape=point];", sanitize(r.name()));
    }
    for l in platform.links() {
        let (a, b) = platform.link_endpoints(l.id());
        let name_of = |n: NodeId| match n {
            NodeId::Host(h) => sanitize(platform.host(h).name()),
            NodeId::Router(r) => sanitize(platform.router(r).name()),
        };
        let _ = writeln!(
            out,
            "  {} -- {} [label=\"{}\" weight=1];",
            name_of(a),
            name_of(b),
            l.bandwidth()
        );
    }
    out.push_str("}\n");
    out
}

/// Makes a resource name a valid DOT identifier.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, 'n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_all_resources() {
        let p = generators::star(3, 100.0, 1000.0).unwrap();
        let dot = to_dot(&p);
        assert!(dot.starts_with("graph star"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("shape=box").count(), 3);
        assert_eq!(dot.matches("shape=point").count(), 1);
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn dot_is_deterministic() {
        let p = generators::two_clusters(&Default::default()).unwrap();
        assert_eq!(to_dot(&p), to_dot(&p));
    }

    #[test]
    fn sanitize_makes_identifiers() {
        assert_eq!(sanitize("adonis-1"), "adonis_1");
        assert_eq!(sanitize("3com"), "n3com");
        assert_eq!(sanitize(""), "n");
    }
}
