//! Static shortest-path routing between hosts.
//!
//! Routes are computed with Dijkstra over link latencies (ties broken
//! by hop count, then link id, so routes are deterministic) and cached
//! per source host — the usage pattern of the simulator is many flows
//! from few sources (masters, DT forwarders), which one-shot Dijkstra
//! per source serves well.

use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

use crate::error::PlatformError;
use crate::graph::Platform;
use crate::resource::{HostId, LinkId, NodeId};

/// A routed path between two hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Links crossed, source side first. Empty when `src == dst`
    /// (loopback communication).
    pub links: Vec<LinkId>,
    /// Sum of link latencies along the path, seconds.
    pub latency: f64,
    /// Minimum bandwidth along the path, Mbit/s (`f64::INFINITY` for
    /// loopback).
    pub bottleneck: f64,
}

#[derive(Debug, PartialEq)]
struct QueueItem {
    dist: f64,
    hops: usize,
    node: usize,
}

impl Eq for QueueItem {}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest dist.
        other
            .dist
            .total_cmp(&self.dist)
            .then(other.hops.cmp(&self.hops))
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-source shortest-path tree: for each node, the link and previous
/// node on the best path from the source.
#[derive(Debug, Clone)]
struct SourceTree {
    prev: Vec<Option<(LinkId, usize)>>,
}

/// Route cache over a [`Platform`].
///
/// # Example
///
/// ```
/// use viva_platform::{generators, RouteTable};
///
/// let p = generators::two_clusters(&Default::default())?;
/// let mut rt = RouteTable::new();
/// let a = p.host_by_name("adonis-1").unwrap().id();
/// let b = p.host_by_name("adonis-2").unwrap().id();
/// let route = rt.route(&p, a, b)?;
/// assert_eq!(route.links.len(), 2); // up to the switch, down again
/// # Ok::<(), viva_platform::PlatformError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    trees: HashMap<HostId, SourceTree>,
}

impl RouteTable {
    /// Creates an empty route cache.
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Number of cached source trees.
    pub fn cached_sources(&self) -> usize {
        self.trees.len()
    }

    fn tree_for(&mut self, platform: &Platform, src: HostId) -> &SourceTree {
        match self.trees.entry(src) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(dijkstra(platform, src)),
        }
    }

    /// The route from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoRoute`] when `dst` is unreachable
    /// (cannot happen on platforms accepted by
    /// [`crate::PlatformBuilder::build`]).
    pub fn route(
        &mut self,
        platform: &Platform,
        src: HostId,
        dst: HostId,
    ) -> Result<Route, PlatformError> {
        if src == dst {
            return Ok(Route { links: Vec::new(), latency: 0.0, bottleneck: f64::INFINITY });
        }
        let tree = self.tree_for(platform, src);
        let mut links = Vec::new();
        let mut cur = platform.node_index(NodeId::Host(dst));
        let src_idx = platform.node_index(NodeId::Host(src));
        while cur != src_idx {
            let (link, prev) = tree.prev[cur].ok_or(PlatformError::NoRoute)?;
            links.push(link);
            cur = prev;
        }
        links.reverse();
        let latency = links.iter().map(|&l| platform.link(l).latency()).sum();
        let bottleneck = links
            .iter()
            .map(|&l| platform.link(l).bandwidth())
            .fold(f64::INFINITY, f64::min);
        Ok(Route { links, latency, bottleneck })
    }
}

fn dijkstra(platform: &Platform, src: HostId) -> SourceTree {
    let n = platform.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut hops = vec![usize::MAX; n];
    let mut prev: Vec<Option<(LinkId, usize)>> = vec![None; n];
    let start = platform.node_index(NodeId::Host(src));
    dist[start] = 0.0;
    hops[start] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(QueueItem { dist: 0.0, hops: 0, node: start });
    while let Some(QueueItem { dist: d, hops: h, node }) = heap.pop() {
        if d > dist[node] || (d == dist[node] && h > hops[node]) {
            continue;
        }
        for &(link, next) in &platform.adj[node] {
            let l = platform.link(link);
            let nd = d + l.latency();
            let nh = h + 1;
            let j = platform.node_index(next);
            let better = nd < dist[j]
                || (nd == dist[j] && nh < hops[j])
                || (nd == dist[j]
                    && nh == hops[j]
                    && prev[j].is_some_and(|(pl, _)| link < pl));
            if better {
                dist[j] = nd;
                hops[j] = nh;
                prev[j] = Some((link, node));
                heap.push(QueueItem { dist: nd, hops: nh, node: j });
            }
        }
    }
    SourceTree { prev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlatformBuilder;
    use crate::resource::LinkScope;

    /// h1 -- sw1 -- sw2 -- h2, plus a slow direct bypass h1 -- h2.
    fn diamond() -> (Platform, HostId, HostId) {
        let mut pb = PlatformBuilder::new("d");
        let s = pb.site("s");
        let cl = pb.cluster(s, "c");
        let h1 = pb.host(cl, "h1", 1.0);
        let h2 = pb.host(cl, "h2", 1.0);
        let sw1 = pb.router("sw1");
        let sw2 = pb.router("sw2");
        let scope = LinkScope::Cluster(cl);
        let fast1 = pb.link("fast1", 1000.0, 1e-5, scope);
        let fast2 = pb.link("fast2", 1000.0, 1e-5, scope);
        let fast3 = pb.link("fast3", 1000.0, 1e-5, scope);
        let slow = pb.link("slow", 10.0, 1.0, scope);
        pb.connect(h1.into(), sw1.into(), fast1);
        pb.connect(sw1.into(), sw2.into(), fast2);
        pb.connect(sw2.into(), h2.into(), fast3);
        pb.connect(h1.into(), h2.into(), slow);
        (pb.build().unwrap(), h1, h2)
    }

    #[test]
    fn picks_lowest_latency_path() {
        let (p, h1, h2) = diamond();
        let mut rt = RouteTable::new();
        let r = rt.route(&p, h1, h2).unwrap();
        assert_eq!(r.links.len(), 3);
        assert!((r.latency - 3e-5).abs() < 1e-12);
        assert_eq!(r.bottleneck, 1000.0);
    }

    #[test]
    fn loopback_route_is_empty() {
        let (p, h1, _) = diamond();
        let mut rt = RouteTable::new();
        let r = rt.route(&p, h1, h1).unwrap();
        assert!(r.links.is_empty());
        assert_eq!(r.latency, 0.0);
    }

    #[test]
    fn routes_are_symmetric_in_link_set() {
        let (p, h1, h2) = diamond();
        let mut rt = RouteTable::new();
        let fwd = rt.route(&p, h1, h2).unwrap();
        let mut bwd = rt.route(&p, h2, h1).unwrap();
        bwd.links.reverse();
        assert_eq!(fwd.links, bwd.links);
    }

    #[test]
    fn source_trees_are_cached() {
        let (p, h1, h2) = diamond();
        let mut rt = RouteTable::new();
        rt.route(&p, h1, h2).unwrap();
        rt.route(&p, h1, h1).unwrap();
        assert_eq!(rt.cached_sources(), 1);
        rt.route(&p, h2, h1).unwrap();
        assert_eq!(rt.cached_sources(), 2);
    }

    #[test]
    fn deterministic_tie_break() {
        // Two identical parallel 2-hop paths: the route must always use
        // the lexicographically smallest link ids.
        let mut pb = PlatformBuilder::new("t");
        let s = pb.site("s");
        let cl = pb.cluster(s, "c");
        let h1 = pb.host(cl, "h1", 1.0);
        let h2 = pb.host(cl, "h2", 1.0);
        let sw1 = pb.router("sw1");
        let sw2 = pb.router("sw2");
        let scope = LinkScope::Cluster(cl);
        let a1 = pb.link("a1", 100.0, 1e-4, scope);
        let a2 = pb.link("a2", 100.0, 1e-4, scope);
        let b1 = pb.link("b1", 100.0, 1e-4, scope);
        let b2 = pb.link("b2", 100.0, 1e-4, scope);
        pb.connect(h1.into(), sw1.into(), a1);
        pb.connect(sw1.into(), h2.into(), a2);
        pb.connect(h1.into(), sw2.into(), b1);
        pb.connect(sw2.into(), h2.into(), b2);
        let p = pb.build().unwrap();
        let mut rt = RouteTable::new();
        let r = rt.route(&p, h1, h2).unwrap();
        assert_eq!(r.links, vec![a1, a2]);
    }
}
