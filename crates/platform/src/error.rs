//! Error type for platform construction and queries.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying platforms.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A capacity (power, bandwidth) was zero, negative or non-finite.
    InvalidCapacity {
        /// Name of the offending resource.
        resource: String,
        /// The rejected capacity value.
        value: f64,
    },
    /// A latency was negative or non-finite.
    InvalidLatency {
        /// Name of the offending link.
        link: String,
        /// The rejected latency value.
        value: f64,
    },
    /// Two resources of the same kind share a name.
    DuplicateName(String),
    /// A link was connected to the same node on both ends.
    SelfLoop {
        /// Name of the offending link.
        link: String,
    },
    /// A link was never connected, or connected more than once.
    DanglingLink {
        /// Name of the offending link.
        link: String,
    },
    /// Some host cannot reach some other host.
    Disconnected {
        /// Name of an unreachable host.
        host: String,
    },
    /// No route exists between two hosts (should not happen after a
    /// successful build).
    NoRoute,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::InvalidCapacity { resource, value } => {
                write!(f, "invalid capacity {value} on {resource}")
            }
            PlatformError::InvalidLatency { link, value } => {
                write!(f, "invalid latency {value} on link {link}")
            }
            PlatformError::DuplicateName(n) => write!(f, "duplicate resource name {n:?}"),
            PlatformError::SelfLoop { link } => write!(f, "link {link:?} is a self-loop"),
            PlatformError::DanglingLink { link } => {
                write!(f, "link {link:?} is not connected to exactly two nodes")
            }
            PlatformError::Disconnected { host } => {
                write!(f, "host {host:?} is unreachable")
            }
            PlatformError::NoRoute => write!(f, "no route between the requested hosts"),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!PlatformError::NoRoute.to_string().is_empty());
        let e = PlatformError::InvalidCapacity { resource: "h".into(), value: -1.0 };
        assert!(e.to_string().contains("-1"));
    }
}
