//! The paper's §3.3 scalability claim: "the basic force-directed
//! algorithm has severe performance problems on scale — O(n²) ... we
//! adopt the scalable Barnes-Hut algorithm — O(n log n)".
//!
//! Benchmarks one layout step, naive vs Barnes-Hut, over growing random
//! graphs and over the real 2170-host Grid'5000 topology, plus a θ
//! (opening angle) ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viva_layout::{LayoutConfig, LayoutEngine, NodeKey};

/// A random sparse graph of `n` nodes, pre-relaxed a little so the
/// step cost is representative of steady-state interaction.
fn engine(n: u64, theta: f64) -> LayoutEngine {
    let mut e = LayoutEngine::new(LayoutConfig { theta, ..Default::default() }, 99);
    for i in 0..n {
        e.add_node(NodeKey(i), 1.0 + (i % 7) as f64);
    }
    for i in 1..n {
        // Tree backbone plus a few chords.
        e.add_edge(NodeKey(i), NodeKey(i / 2));
        if i % 5 == 0 {
            e.add_edge(NodeKey(i), NodeKey(i / 3));
        }
    }
    for _ in 0..5 {
        e.step();
    }
    e
}

fn grid5000_engine() -> LayoutEngine {
    let p = viva_platform::generators::grid5000(&Default::default()).unwrap();
    let mut e = LayoutEngine::new(LayoutConfig::default(), 7);
    // Hosts, routers and links all become layout nodes, as in the
    // topology view.
    let mut next = 0u64;
    let mut host_keys = Vec::new();
    let mut router_keys = Vec::new();
    for _ in p.hosts() {
        e.add_node(NodeKey(next), 1.0);
        host_keys.push(NodeKey(next));
        next += 1;
    }
    for _ in p.routers() {
        e.add_node(NodeKey(next), 1.0);
        router_keys.push(NodeKey(next));
        next += 1;
    }
    for l in p.links() {
        let key = NodeKey(next);
        e.add_node(key, 1.0);
        next += 1;
        let (a, b) = p.link_endpoints(l.id());
        for endpoint in [a, b] {
            let ek = match endpoint {
                viva_platform::NodeId::Host(h) => host_keys[h.index()],
                viva_platform::NodeId::Router(r) => router_keys[r.index()],
            };
            e.add_edge(key, ek);
        }
    }
    for _ in 0..5 {
        e.step();
    }
    e
}

fn bench_step_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_step");
    group.sample_size(20);
    for n in [64u64, 256, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("barnes_hut", n), &n, |b, &n| {
            let mut e = engine(n, 0.7);
            b.iter(|| e.step());
        });
        // The naive baseline becomes painful past a few thousand nodes;
        // that is the point of the figure.
        if n <= 1024 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
                let mut e = engine(n, 0.7);
                b.iter(|| e.step_naive());
            });
        }
    }
    group.finish();
}

fn bench_theta_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_theta");
    group.sample_size(20);
    for theta in [0.0, 0.3, 0.7, 1.2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("theta_{theta}")),
            &theta,
            |b, &theta| {
                let mut e = engine(1024, theta);
                b.iter(|| e.step());
            },
        );
    }
    group.finish();
}

fn bench_grid5000_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout_grid5000");
    group.sample_size(10);
    group.bench_function("barnes_hut_step_4427_nodes", |b| {
        let mut e = grid5000_engine();
        b.iter(|| e.step());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_step_scaling,
    bench_theta_ablation,
    bench_grid5000_graph
);
criterion_main!(benches);
