//! Interactivity claims of §4: time-slice aggregation, level changes
//! and view recomputation must be fast enough for live exploration.
//!
//! Benchmarks Equation 1 queries and full session operations on a real
//! DT trace and on a mid-size Grid'5000 master-worker trace.

use criterion::{criterion_group, criterion_main, Criterion};
use viva::AnalysisSession;
use viva_agg::{integrate_group, TimeSlice};
use viva_platform::generators;
use viva_simflow::TracingConfig;
use viva_trace::Trace;
use viva_workloads::{run_dt, run_master_worker, AppSpec, Deployment, DtConfig, MwConfig};

fn dt_trace() -> Trace {
    let p = generators::two_clusters(&Default::default()).unwrap();
    run_dt(
        p,
        &DtConfig::default(),
        Deployment::Sequential,
        Some(TracingConfig { record_messages: false, record_accounts: false }),
    )
    .trace
    .expect("traced")
}

fn grid_trace() -> (viva_platform::Platform, Trace) {
    let p = generators::grid5000(&generators::Grid5000Config {
        total_hosts: 400,
        ..Default::default()
    })
    .unwrap();
    let apps = vec![AppSpec {
        name: "app1".into(),
        master: p.hosts()[0].id(),
        config: MwConfig { tasks: 800, ..Default::default() },
    }];
    let trace = run_master_worker(
        p.clone(),
        &apps,
        Some(TracingConfig { record_messages: false, record_accounts: true }),
    )
    .trace
    .expect("traced");
    (p, trace)
}

fn bench_equation1(c: &mut Criterion) {
    let trace = dt_trace();
    let used = trace.metric_id("bandwidth_used").unwrap();
    let root = trace.containers().root();
    let slice = TimeSlice::new(trace.start(), trace.end());
    let mut group = c.benchmark_group("equation1");
    group.bench_function("integrate_whole_platform_dt", |b| {
        b.iter(|| integrate_group(&trace, used, root, slice));
    });
    let narrow = TimeSlice::new(trace.end() * 0.4, trace.end() * 0.6);
    group.bench_function("integrate_narrow_slice_dt", |b| {
        b.iter(|| integrate_group(&trace, used, root, narrow));
    });
    group.finish();
}

fn bench_session_interactivity(c: &mut Criterion) {
    let (platform, trace) = grid_trace();
    let mut group = c.benchmark_group("session");
    group.sample_size(20);
    group.bench_function("build_view_hosts_400", |b| {
        let session =
            AnalysisSession::builder(trace.clone()).platform(&platform).build();
        b.iter(|| session.view());
    });
    group.bench_function("level_change_roundtrip_400", |b| {
        let mut session =
            AnalysisSession::builder(trace.clone()).platform(&platform).build();
        b.iter(|| {
            session.collapse_at_depth(1);
            session.collapse_at_depth(3);
            session.expand_all();
        });
    });
    group.bench_function("time_slice_sweep_view_400", |b| {
        let mut session =
            AnalysisSession::builder(trace.clone()).platform(&platform).build();
        session.collapse_at_depth(2);
        let slices = TimeSlice::new(trace.start(), trace.end()).split(8);
        b.iter(|| {
            for &s in &slices {
                session.set_time_slice(s);
                std::hint::black_box(session.view());
            }
        });
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("dt_class_a_wh_30_rounds", |b| {
        b.iter(|| {
            let p = generators::two_clusters(&Default::default()).unwrap();
            run_dt(p, &DtConfig::default(), Deployment::Sequential, None).makespan
        });
    });
    group.finish();
}

criterion_group!(benches, bench_equation1, bench_session_interactivity, bench_simulation);
criterion_main!(benches);
