//! # viva-bench — figure harnesses and performance benchmarks
//!
//! One binary per figure of the paper (`fig1_mapping` …
//! `fig9_gridmw_evolution`) prints the series behind that figure and,
//! where meaningful, writes the corresponding SVG snapshots under
//! `target/figures/`. Criterion benches (`benches/`) back the paper's
//! performance claims (Barnes-Hut `O(n log n)` layout, interactive
//! aggregation).
//!
//! This crate's library part only holds small shared helpers for the
//! harness binaries.

use std::path::PathBuf;

use viva_platform::{HostId, Platform, RouteTable};
use viva_trace::{ContainerId, ContainerKind, Trace};

/// Directory where harness binaries drop SVG snapshots.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Writes an SVG next to the other figure outputs and reports the path.
pub fn save_svg(name: &str, svg: &str) {
    let path = figures_dir().join(name);
    std::fs::write(&path, svg).expect("write svg");
    println!("  [svg] {}", path.display());
}

/// Prints a simple aligned table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("  {}", s.trim_end());
    };
    line(&header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Picks, for each site, a host on the site's fastest cluster —
/// masters should not sit behind a slow uplink.
pub fn best_connected_host(platform: &Platform, site_index: usize) -> HostId {
    let site = &platform.sites()[site_index];
    let mut routes = RouteTable::new();
    let mut best: Option<(f64, HostId)> = None;
    for &cl in site.clusters() {
        let cluster = platform.cluster(cl);
        let Some(&h) = cluster.hosts().first() else { continue };
        // Bottleneck toward some remote host ranks the cluster uplink.
        let remote = platform.hosts().last().expect("non-empty platform").id();
        let bw = routes
            .route(platform, h, remote)
            .map(|r| r.bottleneck)
            .unwrap_or(0.0);
        if best.is_none_or(|(b, _)| bw > b) {
            best = Some((bw, h));
        }
    }
    best.expect("site has hosts").1
}

/// Utilization (0..=1) of a traced link over a window: integral of
/// `bandwidth_used` divided by capacity × width.
pub fn link_utilization(trace: &Trace, link: ContainerId, a: f64, b: f64) -> f64 {
    let used = trace
        .metric_id(viva_trace::metric::names::BANDWIDTH_USED)
        .map_or(0.0, |m| trace.integrate(link, m, a, b));
    let cap = trace
        .metric_id(viva_trace::metric::names::BANDWIDTH)
        .and_then(|m| trace.signal(link, m))
        .map_or(0.0, |s| s.value_at(a));
    if cap > 0.0 && b > a {
        used / (cap * (b - a))
    } else {
        0.0
    }
}

/// All link containers of a trace with their names, id order.
pub fn trace_links(trace: &Trace) -> Vec<(ContainerId, String)> {
    trace
        .containers()
        .of_kind(ContainerKind::Link)
        .into_iter()
        .map(|c| (c, trace.containers().node(c).name().to_owned()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_platform::generators;

    #[test]
    fn best_connected_host_is_on_requested_site() {
        let p = generators::grid5000(&generators::Grid5000Config {
            sites: 3,
            total_hosts: 30,
            ..Default::default()
        })
        .unwrap();
        let h = best_connected_host(&p, 0);
        assert_eq!(p.sites()[p.site_of_host(h).index()].name(), "grenoble");
    }

    #[test]
    fn link_utilization_of_idle_trace_is_zero() {
        let p = generators::star(2, 100.0, 1000.0).unwrap();
        let mut sim = viva_simflow::Simulation::new(p);
        sim.enable_tracing(viva_simflow::TracingConfig::default());
        sim.run();
        let t = sim.into_trace().unwrap();
        assert!(!trace_links(&t).is_empty());
        for (l, _) in trace_links(&t) {
            assert_eq!(link_utilization(&t, l, 0.0, 1.0), 0.0);
        }
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(&["a", "b"], &[vec!["1".into(), "22".into()]]);
    }
}
