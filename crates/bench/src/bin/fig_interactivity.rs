//! Interactivity benchmark — incremental aggregation index and
//! parallel Barnes-Hut against their naive baselines.
//!
//! The paper's central interaction loop is: drag the time-slice cursor,
//! watch every visible node resize/refill instantly (§3.2.1). This
//! harness measures that loop on a deep synthetic trace (sites →
//! clusters → hosts, ≥ 50k timeline events in full mode):
//!
//! 1. **slice-change latency** — `set_time_slice` + `view()` with the
//!    aggregation index versus the naive full-rescan path
//!    (`SessionBuilder::without_index`), over a sweep of sliding
//!    windows;
//! 2. **relax latency** — layout iterations with the repulsion pass
//!    forced serial versus forced to 4 threads;
//! 3. **equivalence** — views must compare equal and SVG output must be
//!    byte-identical across indexed/naive and serial/parallel, every
//!    run.
//!
//! Full mode asserts the ≥ 5× index speedup and writes
//! `BENCH_interactivity.json`; `--small` is a CI smoke mode that keeps
//! every equivalence assertion but skips the timing claim (timings on a
//! loaded CI box are noise) and leaves the committed JSON alone.

use std::time::Instant;

use viva::{AnalysisSession, SessionBuilder, Viewport};
use viva_agg::TimeSlice;
use viva_layout::{LayoutConfig, LayoutEngine, NodeKey};
use viva_trace::{ContainerKind, Trace, TraceBuilder};

struct Scale {
    sites: usize,
    clusters: usize,
    hosts: usize,
    steps: usize,
    windows: usize,
    relax_steps: usize,
}

const FULL: Scale =
    Scale { sites: 4, clusters: 5, hosts: 25, steps: 120, windows: 30, relax_steps: 60 };
const SMALL: Scale = Scale { sites: 2, clusters: 2, hosts: 4, steps: 10, windows: 6, relax_steps: 10 };

/// A deep grid trace with exactly representable values: `power` is a
/// constant 100 MFlop/s per host and `power_used` steps through
/// multiples of 10 at integer times, so every space × time integral is
/// an integer and the indexed and naive paths cannot drift by even an
/// ulp.
fn build_trace(s: &Scale) -> (Trace, usize) {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    let mut events = 0usize;
    let mut host_no = 0usize;
    for si in 0..s.sites {
        let site = b
            .new_container(b.root(), format!("site{si}"), ContainerKind::Site)
            .expect("site");
        for ci in 0..s.clusters {
            let cluster = b
                .new_container(site, format!("site{si}-cl{ci}"), ContainerKind::Cluster)
                .expect("cluster");
            for hi in 0..s.hosts {
                let host = b
                    .new_container(cluster, format!("site{si}-cl{ci}-h{hi}"), ContainerKind::Host)
                    .expect("host");
                b.set_variable(0.0, host, power, 100.0).expect("power");
                events += 1;
                for t in 0..=s.steps {
                    // Deterministic pseudo-load: phase-shifted per host.
                    let v = (((t + host_no * 7) % 11) * 10) as f64;
                    b.set_variable(t as f64, host, used, v).expect("used");
                    events += 1;
                }
                host_no += 1;
            }
        }
    }
    (b.finish(s.steps as f64), events)
}

/// The sliding slice windows the "cursor drag" sweeps through. Bounds
/// are computed in integers so every slice is exactly representable —
/// the view-equality assertion compares `f64`s bit for bit, and only
/// integer bounds keep merged-series and per-member integrals from
/// drifting by an ulp.
fn windows(s: &Scale) -> Vec<TimeSlice> {
    (0..s.windows)
        .map(|i| {
            let width = 1 + (i % 5) * (s.steps / 8).max(1);
            let start = (i * s.steps / s.windows).min(s.steps - 1);
            TimeSlice::new(start as f64, (start + width).min(s.steps) as f64)
        })
        .collect()
}

/// Total latency of sweeping every window: each iteration changes the
/// slice and rebuilds the view, exactly what a cursor drag costs.
fn sweep(session: &mut AnalysisSession, windows: &[TimeSlice]) -> f64 {
    let t0 = Instant::now();
    for &w in windows {
        session.set_time_slice(w);
        std::hint::black_box(session.view());
    }
    t0.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { SMALL } else { FULL };
    let (trace, events) = build_trace(&scale);
    let hosts = scale.sites * scale.clusters * scale.hosts;
    println!(
        "Interactivity: {} hosts, {} timeline events ({} mode)",
        hosts,
        events,
        if small { "smoke" } else { "full" }
    );
    if !small {
        assert!(events >= 50_000, "full mode must exercise >= 50k events, got {events}");
    }

    // --- slice-change latency: indexed vs naive rescan ---------------
    let mut indexed = SessionBuilder::new(trace.clone()).build();
    let mut naive = SessionBuilder::new(trace.clone()).without_index().build();
    for s in [&mut indexed, &mut naive] {
        s.collapse_at_depth(1); // site-level view: every node aggregates a deep subtree
        s.relax(scale.relax_steps);
    }

    let ws = windows(&scale);
    // Warm-up pass, then the timed sweep.
    sweep(&mut indexed, &ws);
    sweep(&mut naive, &ws);
    let indexed_ms = sweep(&mut indexed, &ws);
    let naive_ms = sweep(&mut naive, &ws);
    let speedup = naive_ms / indexed_ms.max(1e-9);

    assert_eq!(indexed.view(), naive.view(), "indexed and naive views diverged");
    let vp = Viewport::new(800.0, 600.0);
    let svg_indexed = indexed.render(&vp);
    let svg_naive = naive.render(&vp);
    let agg_identical = svg_indexed == svg_naive;
    assert!(agg_identical, "indexed and naive SVG output differ");

    println!(
        "  slice sweep ({} windows): naive {:.2} ms, indexed {:.2} ms, speedup {:.1}x",
        ws.len(),
        naive_ms,
        indexed_ms,
        speedup
    );

    // --- relax latency: serial vs parallel repulsion ------------------
    let mut serial = SessionBuilder::new(trace.clone()).build();
    let mut parallel = SessionBuilder::new(trace).build();
    serial.set_layout_parallelism(Some(1));
    parallel.set_layout_parallelism(Some(4));
    let t0 = Instant::now();
    serial.relax(scale.relax_steps);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    parallel.relax(scale.relax_steps);
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert_eq!(serial.view(), parallel.view(), "serial and parallel layouts diverged");
    let par_identical = serial.render(&vp) == parallel.render(&vp);
    assert!(par_identical, "serial and parallel SVG output differ");

    // Regression guard for the measured crossover: this very bench
    // recorded the parallel repulsion pass *slower* than serial at 500
    // hosts (142.9 ms vs 124.6 ms over 60 steps), so the auto policy
    // must plan the serial path there. Deterministic by construction —
    // no timing on a possibly loaded CI box.
    let cfg = LayoutConfig::default();
    assert!(cfg.parallel_threshold > 500, "auto threshold regressed below 500 hosts");
    let mut probe = LayoutEngine::new(cfg, 42);
    for i in 0..500 {
        probe.add_node(NodeKey(i), 1.0);
    }
    assert_eq!(
        probe.planned_repulsion_threads(),
        1,
        "auto policy must stay serial at 500 hosts where parallel measured slower"
    );

    println!(
        "  relax ({} steps, {} nodes): serial {:.2} ms, 4 threads {:.2} ms",
        scale.relax_steps,
        hosts + scale.sites * scale.clusters + scale.sites + 1,
        serial_ms,
        parallel_ms
    );

    if small {
        println!("  smoke mode: equivalence checks passed, timings not asserted");
        return;
    }

    assert!(
        speedup >= 5.0,
        "aggregation index speedup {speedup:.1}x below the 5x floor (naive {naive_ms:.2} ms, indexed {indexed_ms:.2} ms)"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"interactivity\",\n  \"trace\": {{ \"hosts\": {hosts}, \"events\": {events} }},\n  \"slice_change\": {{\n    \"windows\": {},\n    \"naive_ms\": {naive_ms:.3},\n    \"indexed_ms\": {indexed_ms:.3},\n    \"speedup\": {speedup:.2},\n    \"svg_byte_identical\": {agg_identical}\n  }},\n  \"relax\": {{\n    \"steps\": {},\n    \"serial_ms\": {serial_ms:.3},\n    \"parallel_ms\": {parallel_ms:.3},\n    \"svg_byte_identical\": {par_identical}\n  }}\n}}\n",
        ws.len(),
        scale.relax_steps
    );
    std::fs::write("BENCH_interactivity.json", &json).expect("write BENCH_interactivity.json");
    println!("  [json] BENCH_interactivity.json");
}
