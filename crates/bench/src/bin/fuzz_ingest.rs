//! Deterministic fuzz-smoke harness for the ingest→index→render
//! pipeline.
//!
//! Feeds every checked-in corpus file (`corpus/ingest/*.csv`) plus a
//! set of synthesized adversarial inputs (multi-megabyte single lines,
//! NaN floods, id collisions, budget exhaustion) through
//! [`TraceLoader`] in **both** recovery modes, each run wrapped in
//! `catch_unwind`. The contract this harness enforces:
//!
//! * zero panics, in either mode, on any input;
//! * lenient loading is total: it always yields a report, and loading
//!   the same bytes twice yields byte-identical summaries and
//!   diagnostics (stable error surfaces);
//! * every lenient-loaded trace survives the full downstream pipeline
//!   — aggregation index, session, layout steps, SVG render — and any
//!   corpus entry that yielded at least one event renders a valid SVG
//!   carrying the degraded-data badge.
//!
//! Runs offline with no randomness; `ci.sh` executes it as the
//! `fuzz-smoke` step.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use viva::{AnalysisSession, Viewport};
use viva_trace::{LoadReport, RecoveryMode, ResourceBudget, TraceLoader};

/// One adversarial input: a name for the report plus raw bytes.
struct Case {
    name: String,
    bytes: Vec<u8>,
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus/ingest")
}

/// Checked-in corpus, in sorted (deterministic) order.
fn corpus_cases() -> Vec<Case> {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.expect("read corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 20,
        "corpus must hold at least 20 adversarial files, found {}",
        paths.len()
    );
    paths
        .into_iter()
        .map(|p| Case {
            name: p.file_name().unwrap().to_string_lossy().into_owned(),
            bytes: std::fs::read(&p).expect("read corpus file"),
        })
        .collect()
}

/// Synthesized pathological inputs that are cheaper to generate than
/// to check in (a 10 MB line has no business in git).
fn synthesized_cases() -> Vec<Case> {
    let mut cases = Vec::new();
    // A single 10 MB line: must breach the per-line byte budget, not
    // allocate-and-die.
    let mut giant = b"var,0.0,1,0,".to_vec();
    giant.resize(10 * 1024 * 1024, b'9');
    cases.push(Case { name: "<10MB single line>".into(), bytes: giant });
    // NaN flood: ten thousand quarantine hits on one signal.
    let mut nan_flood = String::from(
        "span,0,20000\ncontainer,1,0,host,h\nmetric,0,u,x\n",
    );
    for i in 0..10_000 {
        nan_flood.push_str(&format!("var,{i}.0,1,0,NaN\n"));
    }
    cases.push(Case { name: "<NaN flood>".into(), bytes: nan_flood.into_bytes() });
    // Id collision flood: the same container id redeclared 1000 times.
    let mut dup = String::from("span,0,10\ncontainer,1,0,host,h\nmetric,0,u,x\nvar,1.0,1,0,5.0\n");
    for _ in 0..1000 {
        dup.push_str("container,1,0,host,again\n");
    }
    cases.push(Case { name: "<duplicate id flood>".into(), bytes: dup.into_bytes() });
    // Deep container chain: each child hangs off the previous one.
    let mut chain = String::from("span,0,10\n");
    for i in 1..=2000u32 {
        chain.push_str(&format!("container,{i},{},host,n{i}\n", i - 1));
    }
    cases.push(Case { name: "<2000-deep chain>".into(), bytes: chain.into_bytes() });
    cases
}

/// Loads `bytes` in `mode` under `budget`, asserting the call neither
/// panics nor (in lenient mode) errors. Returns the report for lenient
/// mode, `None` when strict loading (legitimately) erred.
fn load_guarded(
    case: &Case,
    mode: RecoveryMode,
    budget: ResourceBudget,
) -> Option<LoadReport> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        TraceLoader::new().mode(mode).budget(budget).load(case.bytes.as_slice())
    }));
    let result = match result {
        Ok(r) => r,
        Err(_) => panic!("PANIC while loading {} in {mode:?} mode", case.name),
    };
    match (mode, result) {
        (_, Ok(report)) => Some(report),
        (RecoveryMode::Lenient, Err(e)) => {
            panic!("lenient load of {} must not error, got: {e}", case.name)
        }
        // Strict mode may (and usually does) reject adversarial input;
        // the error Display itself must not panic either.
        (RecoveryMode::Strict, Err(e)) => {
            let _ = e.to_string();
            None
        }
    }
}

/// Drives a lenient-loaded trace through the whole downstream
/// pipeline: index, session, a few layout steps, SVG render.
fn render_guarded(case: &Case, report: &LoadReport) -> String {
    let trace = report.trace.clone();
    let dropped = report.dropped;
    let events = report.events;
    let svg = catch_unwind(AssertUnwindSafe(|| {
        let mut session = AnalysisSession::builder(trace).build();
        session.relax(5);
        session.render(&Viewport::new(640.0, 480.0))
    }))
    .unwrap_or_else(|_| panic!("PANIC while indexing/rendering {}", case.name));
    assert!(
        svg.starts_with("<svg") && svg.ends_with("</svg>\n"),
        "{}: malformed SVG document",
        case.name
    );
    // The honesty contract: anything that survived a lossy ingest
    // renders with the degraded-data badge.
    if dropped > 0 {
        assert!(
            svg.contains("degraded-data-badge"),
            "{}: lossy ingest (dropped={dropped}) rendered without badge",
            case.name
        );
    }
    if events >= 1 {
        assert!(
            svg.contains("degraded-data-badge"),
            "{}: corpus entry with {events} event(s) must render the badge",
            case.name
        );
    }
    svg
}

fn main() {
    let mut cases = corpus_cases();
    cases.extend(synthesized_cases());
    let tight = ResourceBudget {
        max_events: 8,
        max_containers: 4,
        max_line_bytes: 64,
        max_memory_bytes: 1 << 16,
        ..ResourceBudget::default()
    };

    println!("fuzz_ingest: {} cases, 2 modes, 2 budgets", cases.len());
    let mut rendered = 0usize;
    for case in &cases {
        // Strict mode, default and tight budgets: may error, must not
        // panic, and must error identically on identical input.
        for budget in [ResourceBudget::default(), tight] {
            let a = load_guarded(case, RecoveryMode::Strict, budget)
                .map(|r| r.summary());
            let b = load_guarded(case, RecoveryMode::Strict, budget)
                .map(|r| r.summary());
            assert_eq!(a, b, "{}: strict summary not stable", case.name);
        }
        // Lenient under the tight budget: totality even while budgets
        // trip mid-file.
        let _ = load_guarded(case, RecoveryMode::Lenient, tight)
            .expect("lenient is total");
        // Lenient under the default budget: the full pipeline.
        let report = load_guarded(case, RecoveryMode::Lenient, ResourceBudget::default())
            .expect("lenient is total");
        let replay = load_guarded(case, RecoveryMode::Lenient, ResourceBudget::default())
            .expect("lenient is total");
        assert_eq!(
            report.summary(),
            replay.summary(),
            "{}: lenient summary not stable across runs",
            case.name
        );
        let svg = render_guarded(case, &report);
        if report.events >= 1 {
            rendered += 1;
        }
        println!(
            "  {:<28} {} svg={}B badge={}",
            case.name,
            report.summary(),
            svg.len(),
            svg.contains("degraded-data-badge"),
        );
    }
    assert!(rendered > 0, "corpus produced no renderable traces at all");
    println!("fuzz_ingest: all {} cases clean (zero panics)", cases.len());
}
