//! Figure 10 (extension) — master-worker under fault injection, with
//! and without the fault-tolerance protocol.
//!
//! Four runs of the same seeded workload on the same platform:
//!
//! | faults | protocol       | expectation                            |
//! |--------|----------------|----------------------------------------|
//! | none   | plain          | baseline makespan                      |
//! | none   | fault-tolerant | small overhead (heartbeats, acks)      |
//! | yes    | plain          | work lost on crashed hosts, still ends |
//! | yes    | fault-tolerant | all tasks complete, longer makespan    |
//!
//! The faulty fault-tolerant run is rendered to SVG: crashed hosts show
//! up with the dashed red "degraded" outline driven by the `available`
//! signal the tracer records.
//!
//! Pass `--small` to run a reduced platform (CI-friendly).

use viva::{AnalysisSession, Viewport};
use viva_bench::{best_connected_host, print_table, save_svg};
use viva_platform::generators::{self, Grid5000Config};
use viva_simflow::{FaultPlan, TracingConfig};
use viva_workloads::{run_master_worker_with_faults, AppSpec, FtConfig, MwConfig, Scheduler};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        Grid5000Config { total_hosts: 40, sites: 2, ..Default::default() }
    } else {
        Grid5000Config { total_hosts: 120, sites: 6, ..Default::default() }
    };
    let platform = generators::grid5000(&cfg).unwrap();
    let master = best_connected_host(&platform, 0);
    let tasks = if small { 80 } else { 240 };
    println!(
        "Figure 10: master-worker under fault injection ({} hosts, {} tasks)",
        cfg.total_hosts, tasks
    );

    // Crash a quarter of the workers while the first wave of tasks is
    // computing; half of them recover later. Deterministic: the plan is
    // seeded and the simulator is single-threaded.
    let victims: Vec<_> = platform
        .hosts()
        .iter()
        .filter(|h| h.id() != master)
        .map(|h| h.id())
        .step_by(4)
        .take(platform.hosts().len() / 4)
        .collect();
    let mut plan = FaultPlan::new().with_seed(42);
    for (i, &h) in victims.iter().enumerate() {
        plan = plan.host_crash(5.0 + i as f64, h);
        if i % 2 == 0 {
            plan = plan.host_recover(120.0 + i as f64, h);
        }
    }
    plan = plan.message_loss(0.0, 60.0, 0.02);
    println!(
        "  fault plan: {} crashes ({} recover), 2% message loss in [0, 60) s",
        victims.len(),
        victims.len().div_ceil(2)
    );

    let base = MwConfig {
        tasks,
        task_flops: 20_000.0,
        scheduler: Scheduler::Fifo,
        ..MwConfig::cpu_bound()
    };
    let ft = FtConfig { worker_timeout: 60.0, heartbeat_interval: 10.0, send_timeout: 120.0 };
    let app = |config: MwConfig| {
        vec![AppSpec { name: "app1".into(), master, config }]
    };
    let tracing = Some(TracingConfig { record_messages: false, record_accounts: true });

    let mut rows = Vec::new();
    let mut faulty_ft_run = None;
    for (label, faults, ftc) in [
        ("fault-free, plain", false, None),
        ("fault-free, fault-tolerant", false, Some(ft)),
        ("faulty, plain", true, None),
        ("faulty, fault-tolerant", true, Some(ft)),
    ] {
        let config = MwConfig { fault_tolerance: ftc, ..base.clone() };
        let run = run_master_worker_with_faults(
            platform.clone(),
            &app(config),
            tracing.clone(),
            faults.then_some(&plan),
        )
        .expect("plan validates against this platform");
        rows.push(vec![
            label.to_owned(),
            format!("{:.1}", run.makespan),
            format!("{}/{tasks}", run.tasks_completed[0]),
            format!("{}", run.tasks_shipped[0]),
        ]);
        if faults && ftc.is_some() {
            faulty_ft_run = Some(run);
        }
    }
    println!();
    print_table(
        &["scenario", "makespan (s)", "tasks completed", "tasks shipped"],
        &rows,
    );
    println!(
        "\nshipped > completed in the fault-tolerant faulty run: tasks lost on\n\
         crashed hosts are requeued and shipped again (at-least-once delivery);\n\
         the plain protocol silently loses them instead."
    );

    // Render the faulty fault-tolerant run; crashed hosts carry
    // `available < 1` over the full-run slice and draw dashed red.
    let run = faulty_ft_run.expect("faulty FT scenario ran");
    let trace = run.trace.expect("traced run");
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.try_set_time_slice(0.0, run.makespan).expect("finite slice");
    session.relax(150);
    let svg = session.render(&Viewport::new(900.0, 700.0));
    let degraded = svg.matches("data-availability").count();
    println!("degraded nodes in the host-level SVG: {degraded}");
    save_svg("fig10_faulty_hosts.svg", &svg);
}
