//! Figure 8 — two competing master-worker applications on a 2170-host
//! Grid'5000 model, viewed at four spatial aggregation levels.
//!
//! The paper's three expected phenomena, invisible at host level but
//! obvious at cluster/site level:
//!
//! 1. the CPU-bound application achieves better overall resource usage
//!    than the communication-heavier one;
//! 2. the second application exhibits locality (it concentrates on
//!    well-connected workers);
//! 3. the applications interfere on computing resources.
//!
//! Pass `--small` to run a reduced platform (CI-friendly).

use viva::{AnalysisSession, Viewport};
use viva_agg::{GroupAggregate, TimeSlice};
use viva_bench::{best_connected_host, print_table, save_svg};
use viva_platform::generators::{self, Grid5000Config};
use viva_simflow::TracingConfig;
use viva_trace::{ContainerKind, Trace};
use viva_workloads::{run_master_worker, AppSpec, MwConfig};

fn aggregate(trace: &Trace, metric: &str, group: viva_trace::ContainerId, s: TimeSlice) -> f64 {
    trace
        .metric_id(metric)
        .map(|m| GroupAggregate::compute(trace, m, group, s).integral)
        .unwrap_or(0.0)
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let cfg = if small {
        Grid5000Config { total_hosts: 120, sites: 6, ..Default::default() }
    } else {
        Grid5000Config::default()
    };
    println!(
        "Figure 8: competing master-workers on grid5000 ({} hosts), 4 aggregation levels",
        cfg.total_hosts
    );
    let platform = generators::grid5000(&cfg).unwrap();
    let apps = vec![
        AppSpec {
            name: "app1".into(),
            master: best_connected_host(&platform, 0),
            // Long tasks: one site cannot absorb the master's send
            // rate, so work (and interference) spreads across sites.
            config: MwConfig {
                tasks: if small { 400 } else { 4000 },
                task_flops: 50_000.0,
                ..MwConfig::cpu_bound()
            },
        },
        AppSpec {
            name: "app2".into(),
            master: best_connected_host(&platform, 1),
            config: MwConfig {
                tasks: if small { 300 } else { 3000 },
                task_flops: 20_000.0,
                ..MwConfig::network_bound()
            },
        },
    ];
    let run = run_master_worker(
        platform.clone(),
        &apps,
        Some(TracingConfig { record_messages: false, record_accounts: true }),
    );
    println!("  makespan: {:.1} s", run.makespan);
    let trace = run.trace.expect("traced run");
    // A fixed slice in the busy middle of the run (the paper's "given
    // time slice").
    let slice = TimeSlice::new(run.makespan * 0.2, run.makespan * 0.6);
    println!("  fixed time slice: [{:.1}, {:.1}) s", slice.start(), slice.end());

    // Site-level table: the paper's quantitative reading.
    let tree = trace.containers();
    let mut rows = Vec::new();
    let mut overlap_sites = 0;
    let mut app1_total = 0.0;
    let mut app2_total = 0.0;
    for site in tree.of_kind(ContainerKind::Site) {
        let a1 = aggregate(&trace, "power_used:app1", site, slice);
        let a2 = aggregate(&trace, "power_used:app2", site, slice);
        let cap = aggregate(&trace, "power", site, slice);
        app1_total += a1;
        app2_total += a2;
        if a1 > 0.0 && a2 > 0.0 {
            overlap_sites += 1;
        }
        rows.push(vec![
            tree.node(site).name().to_owned(),
            format!("{:.1}%", (100.0 * a1 / cap.max(1e-9)).max(0.0)),
            format!("{:.1}%", (100.0 * a2 / cap.max(1e-9)).max(0.0)),
        ]);
    }
    println!("\nsite level (share of site compute capacity used in the slice):");
    print_table(&["site", "app1 (cpu-bound)", "app2 (net-bound)"], &rows);
    println!(
        "\nphenomenon 1: app1 used {:.1}x the compute of app2 in this slice",
        app1_total / app2_total.max(1e-9)
    );
    println!(
        "phenomenon 3: the two applications overlap on {overlap_sites} site(s)"
    );

    // Cluster-level locality of app2 (phenomenon 2): top clusters by
    // app2 usage should be the best-connected ones.
    let mut cluster_rows: Vec<(f64, Vec<String>)> = Vec::new();
    for cl in tree.of_kind(ContainerKind::Cluster) {
        let a2 = aggregate(&trace, "power_used:app2", cl, slice);
        if a2 <= 0.0 {
            continue;
        }
        let name = tree.node(cl).name().to_owned();
        let bw = platform
            .cluster_by_name(&name)
            .and_then(|c| c.hosts().first().copied())
            .map(|h| {
                let l = platform
                    .link_by_name(&format!("{}-up", platform.host(h).name()))
                    .expect("uplink");
                l.bandwidth()
            })
            .unwrap_or(0.0);
        cluster_rows.push((a2, vec![name, format!("{a2:.0}"), format!("{bw:.0}")]));
    }
    cluster_rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\nphenomenon 2: clusters serving app2 (top 8), with their uplink bandwidth:");
    print_table(
        &["cluster", "app2 MFlop in slice", "host uplink Mbit/s"],
        &cluster_rows
            .into_iter()
            .take(8)
            .map(|(_, r)| r)
            .collect::<Vec<_>>(),
    );

    // The four aggregation-level snapshots, with per-application pie
    // glyphs (the §6 extension) splitting each node's usage.
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.set_time_slice(slice);
    session
        .set_breakdown_metrics(vec!["power_used:app1".into(), "power_used:app2".into()])
        .expect("breakdown metrics exist in the trace");
    for (name, depth, steps) in [
        ("fig8_hosts.svg", u32::MAX, 120),
        ("fig8_clusters.svg", 2, 200),
        ("fig8_sites.svg", 1, 200),
        ("fig8_grid.svg", 0, 100),
    ] {
        if depth == u32::MAX {
            session.expand_all();
        } else {
            session.collapse_at_depth(depth);
        }
        session.relax(steps);
        save_svg(name, &session.render(&Viewport::new(900.0, 700.0)));
    }
    println!(
        "\nnode counts per level: hosts {}, clusters {}, sites {}, grid 1",
        platform.hosts().len() + platform.links().len() + platform.routers().len(),
        platform.clusters().len(),
        platform.sites().len()
    );
}
