//! Figure 3 — two successive spatial aggregations.
//!
//! GroupA (a cluster of hosts plus its link) collapses into a square +
//! diamond pair; GroupB (everything) collapses into a single pair.
//! Prints the aggregate values and member statistics at each level.

use viva::{AnalysisSession, Viewport};
use viva_bench::{print_table, save_svg};
use viva_trace::{ContainerKind, Trace, TraceBuilder};

fn example_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let root = b.root();
    let ga = b.new_container(root, "GroupA", ContainerKind::Cluster).unwrap();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    let bw = b.metric("bandwidth", "Mbit/s");
    let bw_used = b.metric("bandwidth_used", "Mbit/s");
    for (i, (cap, usage)) in [(100.0, 80.0), (50.0, 10.0)].iter().enumerate() {
        let h = b
            .new_container(ga, format!("a{i}"), ContainerKind::Host)
            .unwrap();
        b.set_variable(0.0, h, power, *cap).unwrap();
        b.set_variable(0.0, h, used, *usage).unwrap();
    }
    let l = b.new_container(ga, "linkA", ContainerKind::Link).unwrap();
    b.set_variable(0.0, l, bw, 1000.0).unwrap();
    b.set_variable(0.0, l, bw_used, 700.0).unwrap();
    // Outside GroupA: one more host.
    let h = b.new_container(root, "b0", ContainerKind::Host).unwrap();
    b.set_variable(0.0, h, power, 75.0).unwrap();
    b.set_variable(0.0, h, used, 75.0).unwrap();
    b.finish(10.0)
}

fn describe(session: &AnalysisSession, title: &str) {
    let view = session.view();
    let mut rows = Vec::new();
    for n in &view.nodes {
        let badge = n
            .link_badge
            .as_ref()
            .map(|b| format!("diamond {:.0} @ {:.0}%", b.size_value, b.fill_fraction * 100.0))
            .unwrap_or_else(|| "-".into());
        // §6 member statistics come on demand from the session now
        // that views no longer carry an eager summary.
        let fill_metric =
            if n.kind == ContainerKind::Link { "bandwidth_used" } else { "power_used" };
        let stddev = session
            .aggregate(fill_metric, n.container)
            .map(|a| a.summary.variance.sqrt())
            .unwrap_or(0.0);
        rows.push(vec![
            n.label.clone(),
            n.shape.label().into(),
            format!("{:.0}", n.size_value),
            format!("{:.0}%", n.fill_fraction * 100.0),
            format!("{}", n.members),
            format!("{stddev:.1}"),
            badge,
        ]);
    }
    println!("\n{title}:");
    print_table(
        &["node", "shape", "size", "fill", "members", "fill stddev", "link badge"],
        &rows,
    );
}

fn main() {
    println!("Figure 3: two successive spatial aggregations");
    let trace = example_trace();
    let tree = trace.containers();
    let ga = tree.by_name("GroupA").unwrap().id();
    let root = tree.root();
    let edges = vec![
        (tree.by_name("a0").unwrap().id(), tree.by_name("linkA").unwrap().id()),
        (tree.by_name("a1").unwrap().id(), tree.by_name("linkA").unwrap().id()),
        (tree.by_name("linkA").unwrap().id(), tree.by_name("b0").unwrap().id()),
    ];
    let mut session = AnalysisSession::builder(trace).edges(edges).build();
    session.relax(300);
    describe(&session, "no aggregation");
    save_svg("fig3_level0.svg", &session.render(&Viewport::new(400.0, 300.0)));

    session.collapse(ga).expect("known group");
    session.relax(100);
    describe(&session, "1st spatial aggregation (GroupA)");
    save_svg("fig3_level1.svg", &session.render(&Viewport::new(400.0, 300.0)));

    session.collapse(root).expect("known group");
    session.relax(100);
    describe(&session, "2nd spatial aggregation (GroupB = everything)");
    save_svg("fig3_level2.svg", &session.render(&Viewport::new(400.0, 300.0)));
}
