//! Figure 5 — how the charge and spring sliders shape the layout.
//!
//! Lays one small graph out under three parameter settings and prints
//! the resulting geometry: layout extent (charge disperses everything)
//! and mean edge length (spring pulls connected nodes together).

use viva_bench::print_table;
use viva_layout::{LayoutConfig, LayoutEngine, NodeKey};

fn measure(repulsion: f64, spring: f64) -> (f64, f64) {
    let mut e = LayoutEngine::new(
        LayoutConfig { repulsion, spring, ..Default::default() },
        7,
    );
    // A hub-and-spoke graph of 10 nodes plus one floater.
    for i in 0..11 {
        e.add_node(NodeKey(i), 1.0);
    }
    for i in 1..10 {
        e.add_edge(NodeKey(0), NodeKey(i));
    }
    e.run(3000, 1e-5);
    let (lo, hi) = e.bounds().expect("nodes exist");
    let extent = (hi - lo).length();
    let mut edge_len = 0.0;
    let mut edges = 0;
    for (a, b) in e.edges().collect::<Vec<_>>() {
        edge_len += e.position(a).unwrap().distance(e.position(b).unwrap());
        edges += 1;
    }
    (extent, edge_len / edges as f64)
}

fn main() {
    println!("Figure 5: charge/spring sliders vs layout geometry (hub of 10 + 1 floater)");
    let settings = [
        ("A: baseline", 100.0, 2.0),
        ("B: lower charge", 10.0, 2.0),
        ("C: stiffer spring", 100.0, 20.0),
    ];
    let mut rows = Vec::new();
    for (label, repulsion, spring) in settings {
        let (extent, edge) = measure(repulsion, spring);
        rows.push(vec![
            label.to_owned(),
            format!("{repulsion}"),
            format!("{spring}"),
            format!("{extent:.1}"),
            format!("{edge:.1}"),
        ]);
    }
    print_table(
        &["setting", "charge", "spring", "layout extent", "mean edge length"],
        &rows,
    );
    println!(
        "\nLower charge packs nodes together; a stiffer spring shortens edges\n\
         while unconnected nodes stay apart (§4.2, Fig. 5)."
    );
}
