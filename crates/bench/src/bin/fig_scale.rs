//! Scale benchmark — the 100k-host/10M-event gate for the columnar
//! store + level-of-detail rendering subsystem.
//!
//! The paper stops at 2,170 hosts; the ROADMAP's north star is
//! 100k–1M. This harness builds a synthetic 100k-host grid trace with
//! 10M variable events and gates the two properties that make that
//! scale interactive:
//!
//! 1. **columnar memory** — signal storage (SoA breakpoint columns)
//!    must stay ≤ 0.6× the row-of-structs baseline
//!    (`events × size_of::<Event>()`), the Layer-1 claim;
//! 2. **interaction latency** — a time-slice change and a
//!    level-of-detail render (camera attached, tiles standing in for
//!    sub-resolution subtrees) must each stay under 16 ms, the 60 Hz
//!    frame budget, the Layer-2 claim.
//!
//! Full mode asserts both gates and writes `BENCH_scale.json`;
//! `--small` is the CI smoke mode: same pipeline and the (scale-free,
//! deterministic) memory-ratio and tiling assertions, no timing gates
//! (CI boxes are loaded), committed JSON left alone.

use std::time::Instant;

use viva::{AnalysisSession, Camera, SessionBuilder, Viewport};
use viva_agg::TimeSlice;
use viva_trace::{ContainerKind, Event, Trace, TraceBuilder};

struct Scale {
    sites: usize,
    clusters: usize,
    hosts: usize,
    steps: usize,
    windows: usize,
}

/// 10 × 10 × 1000 = 100,000 hosts; 1 power + `steps` load samples per
/// host = 10,000,000 variable events.
const FULL: Scale = Scale { sites: 10, clusters: 10, hosts: 1000, steps: 99, windows: 8 };
const SMALL: Scale = Scale { sites: 2, clusters: 2, hosts: 25, steps: 20, windows: 4 };

/// A wide grid trace with exactly representable values (constant
/// `power`, `power_used` stepping through multiples of 10 at integer
/// times), the same construction fig_interactivity uses — integrals
/// stay integers, so aggregate comparisons cannot drift by an ulp.
fn build_trace(s: &Scale) -> (Trace, usize) {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    let mut events = 0usize;
    let mut host_no = 0usize;
    for si in 0..s.sites {
        let site = b
            .new_container(b.root(), format!("site{si}"), ContainerKind::Site)
            .expect("site");
        for ci in 0..s.clusters {
            let cluster = b
                .new_container(site, format!("s{si}c{ci}"), ContainerKind::Cluster)
                .expect("cluster");
            for hi in 0..s.hosts {
                let host = b
                    .new_container(cluster, format!("s{si}c{ci}h{hi}"), ContainerKind::Host)
                    .expect("host");
                b.set_variable(0.0, host, power, 100.0).expect("power");
                events += 1;
                for t in 1..=s.steps {
                    let v = (((t + host_no * 7) % 11) * 10) as f64;
                    b.set_variable(t as f64, host, used, v).expect("used");
                    events += 1;
                }
                host_no += 1;
            }
        }
    }
    (b.finish(s.steps as f64), events)
}

/// The slice windows the latency sweep drags through (integer bounds,
/// exactly representable).
fn windows(s: &Scale) -> Vec<TimeSlice> {
    (0..s.windows)
        .map(|i| {
            let width = 1 + (i % 3) * (s.steps / 4).max(1);
            let start = (i * s.steps / s.windows).min(s.steps - 1);
            TimeSlice::new(start as f64, (start + width).min(s.steps) as f64)
        })
        .collect()
}

/// Median of a sample set (sorted copy; ties resolve low).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { SMALL } else { FULL };
    let hosts = scale.sites * scale.clusters * scale.hosts;

    let t0 = Instant::now();
    let (trace, events) = build_trace(&scale);
    let gen_s = t0.elapsed().as_secs_f64();
    let events_per_s = events as f64 / gen_s;
    println!(
        "Scale: {} hosts, {} events ({} mode); generated in {:.2} s ({:.1}M events/s)",
        hosts,
        events,
        if small { "smoke" } else { "full" },
        gen_s,
        events_per_s / 1e6
    );
    if !small {
        assert!(hosts >= 100_000, "full mode must exercise >= 100k hosts, got {hosts}");
        assert!(events >= 10_000_000, "full mode must exercise >= 10M events, got {events}");
    }

    // --- Layer 1 gate: columnar memory vs the row baseline -----------
    let row_bytes = events * std::mem::size_of::<Event>();
    let col_bytes = trace.signal_bytes();
    let ratio = col_bytes as f64 / row_bytes as f64;
    println!(
        "  memory: columnar {:.1} MB vs row baseline {:.1} MB (ratio {:.3})",
        col_bytes as f64 / 1e6,
        row_bytes as f64 / 1e6,
        ratio
    );
    assert!(
        ratio <= 0.6,
        "columnar storage ratio {ratio:.3} above the 0.6x gate \
         ({col_bytes} vs {row_bytes} bytes)"
    );

    let t0 = Instant::now();
    let mut session: AnalysisSession = SessionBuilder::new(trace).build();
    println!("  session build (aggregation index + layout seed): {:.2} s", {
        t0.elapsed().as_secs_f64()
    });

    // --- Layer 2 gate: slice change + LoD render under 16 ms ---------
    // The interactive loop at this scale is: drag the cursor
    // (set_time_slice) and re-render through the camera — the LoD cut
    // materializes only readable nodes plus O(clusters) tile
    // aggregates, never the 100k-host frontier.
    let overview = Viewport::new(1280.0, 720.0).with_camera(Camera::new(1.0, 0.0, 0.0));
    let zoomed = Viewport::new(1280.0, 720.0).with_camera(Camera::new(64.0, 200.0, -120.0));
    // A mid-zoom over a hierarchy-uncorrelated random layout: ~100
    // clusters overlap the canvas, so thousands of nodes are genuinely
    // readable and must be drawn. Reported for context, not gated —
    // drawn-node count, not LoD overhead, bounds that frame.
    let dense = Viewport::new(1280.0, 720.0).with_camera(Camera::new(16.0, 200.0, -120.0));

    let view = session.view_lod(&overview);
    println!(
        "  overview scene: {} real nodes, {} tiles (of {} frontier nodes)",
        view.nodes.len(),
        view.tiles.len(),
        hosts + scale.sites * scale.clusters + scale.sites
    );
    let zoomed_view = session.view_lod(&zoomed);
    println!(
        "  zoomed scene: {} real nodes, {} tiles",
        zoomed_view.nodes.len(),
        zoomed_view.tiles.len()
    );
    if !small {
        assert!(
            view.nodes.len() + view.tiles.len() < hosts,
            "LoD overview must materialize fewer elements than the host count"
        );
        assert!(!view.tiles.is_empty(), "100k hosts at 1280x720 must tile");
    }

    let ws = windows(&scale);
    let mut slice_ms = Vec::with_capacity(ws.len());
    let mut over_ms = Vec::with_capacity(ws.len());
    let mut zoom_ms = Vec::with_capacity(ws.len());
    let mut dense_ms = Vec::with_capacity(ws.len());
    // Warm-up render so allocator and cache effects land outside the
    // timed sweep.
    std::hint::black_box(session.render(&overview));
    for &w in &ws {
        let t0 = Instant::now();
        session.set_time_slice(w);
        slice_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        std::hint::black_box(session.render(&overview));
        over_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        std::hint::black_box(session.render(&zoomed));
        zoom_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        std::hint::black_box(session.render(&dense));
        dense_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let slice_med = median(&mut slice_ms);
    let over_med = median(&mut over_ms);
    let zoom_med = median(&mut zoom_ms);
    let dense_med = median(&mut dense_ms);
    println!(
        "  latency over {} windows (median): slice change {:.2} ms, \
         LoD render {:.2} ms overview / {:.2} ms deep zoom \
         ({:.2} ms dense mid-zoom, ungated)",
        ws.len(),
        slice_med,
        over_med,
        zoom_med,
        dense_med
    );

    if small {
        println!("  smoke mode: memory and tiling gates passed, timings not asserted");
        return;
    }

    assert!(slice_med < 16.0, "slice change {slice_med:.2} ms breaches the 16 ms budget");
    assert!(over_med < 16.0, "LoD overview render {over_med:.2} ms breaches the 16 ms budget");
    assert!(zoom_med < 16.0, "LoD zoomed render {zoom_med:.2} ms breaches the 16 ms budget");

    let json = format!(
        "{{\n  \"benchmark\": \"scale\",\n  \"trace\": {{ \"hosts\": {hosts}, \"events\": {events} }},\n  \"generator\": {{ \"seconds\": {gen_s:.3}, \"events_per_sec\": {events_per_s:.0} }},\n  \"memory\": {{\n    \"row_baseline_bytes\": {row_bytes},\n    \"columnar_bytes\": {col_bytes},\n    \"ratio\": {ratio:.4},\n    \"gate\": 0.6\n  }},\n  \"latency_ms\": {{\n    \"slice_change\": {slice_med:.3},\n    \"lod_render_overview\": {over_med:.3},\n    \"lod_render_zoomed\": {zoom_med:.3},\n    \"lod_render_dense_ungated\": {dense_med:.3},\n    \"gate\": 16.0\n  }},\n  \"scene\": {{ \"overview_nodes\": {}, \"overview_tiles\": {}, \"zoomed_nodes\": {}, \"zoomed_tiles\": {} }}\n}}\n",
        view.nodes.len(),
        view.tiles.len(),
        zoomed_view.nodes.len(),
        zoomed_view.tiles.len()
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("  [json] BENCH_scale.json");
}
