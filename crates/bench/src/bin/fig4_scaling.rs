//! Figure 4 — independent per-type scaling and interactive sliders.
//!
//! Replays the paper's three schemes: (A) automatic scaling with hosts
//! of 100/25 MFlop/s and a 10000 Mbit/s link; (B) a different
//! time-slice makes HostB (40) the biggest host, so 40 maps to the same
//! pixel size 100 did; (C) sliders make hosts bigger and links smaller.

use viva::ScalingConfig;
use viva_bench::print_table;

fn row(label: &str, values: &[(&str, f64, f64)]) -> Vec<Vec<String>> {
    values
        .iter()
        .map(|(name, v, px)| {
            vec![
                label.to_owned(),
                (*name).to_owned(),
                format!("{v}"),
                format!("{px:.0}px"),
            ]
        })
        .collect()
}

fn main() {
    println!("Figure 4: per-type scales and scaling sliders (max size = 40px)");
    let mut rows = Vec::new();

    // Scheme A.
    let cfg = ScalingConfig::default();
    let hosts = cfg.pixel_sizes("power", &[100.0, 25.0]);
    let links = cfg.pixel_sizes("bandwidth", &[10_000.0]);
    rows.extend(row(
        "A (auto)",
        &[
            ("HostA", 100.0, hosts[0]),
            ("HostB", 25.0, hosts[1]),
            ("LinkA", 10_000.0, links[0]),
        ],
    ));

    // Scheme B: new time slice, new values.
    let hosts = cfg.pixel_sizes("power", &[10.0, 40.0]);
    let links = cfg.pixel_sizes("bandwidth", &[10_000.0]);
    rows.extend(row(
        "B (auto, new slice)",
        &[
            ("HostA", 10.0, hosts[0]),
            ("HostB", 40.0, hosts[1]),
            ("LinkA", 10_000.0, links[0]),
        ],
    ));

    // Scheme C: sliders (hosts bigger, links smaller).
    let mut cfg = ScalingConfig::default();
    cfg.set_slider("power", 1.5);
    cfg.set_slider("bandwidth", 0.4);
    let hosts = cfg.pixel_sizes("power", &[10.0, 40.0]);
    let links = cfg.pixel_sizes("bandwidth", &[10_000.0]);
    rows.extend(row(
        "C (sliders 1.5x/0.4x)",
        &[
            ("HostA", 10.0, hosts[0]),
            ("HostB", 40.0, hosts[1]),
            ("LinkA", 10_000.0, links[0]),
        ],
    ));

    print_table(&["scheme", "object", "value", "screen size"], &rows);
    println!(
        "\nThe biggest object of each type always takes the maximum pixel size\n\
         under automatic scaling; sliders rescale one type independently (§4.1)."
    );
}
