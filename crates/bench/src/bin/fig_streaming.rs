//! Durable-streaming benchmark — append latency under subscriber
//! fan-out, crash-recovery speed, and the delta protocol's wire
//! savings.
//!
//! The streaming promise (DESIGN.md §16) is threefold:
//!
//! * **appends are interactive even when durable and watched** — every
//!   `append` journals + fsyncs before acking, and publishing view
//!   deltas to subscribers must not wreck the append path: the gate is
//!   append p99 with 16 subscribers within 2× of the 0-subscriber run;
//! * **recovery is replay, and replay is fast** — a killed server
//!   rebuilds every live session from its journal; the harness times
//!   the recovery and asserts the recovered render is byte-identical
//!   to the uninterrupted run's;
//! * **deltas beat frames on the wire** — a subscriber receives only
//!   the changed nodes per append; the harness compares the bytes a
//!   subscriber actually received against re-sending the rendered
//!   frame per update.
//!
//! Full mode asserts the gates and writes `BENCH_streaming.json`;
//! `--small` is the CI smoke that keeps the correctness checks and
//! skips timing claims.

use std::path::Path;
use std::time::Instant;

use viva::Theme;
use viva_server::{Command, Push, Response, Server, ServerLimits};

#[derive(Clone, Copy)]
struct Scale {
    clusters: usize,
    hosts_per_cluster: usize,
    /// Batched appends per run (each carries `samples_per_append`
    /// var records).
    appends: usize,
    samples_per_append: usize,
}

const FULL: Scale =
    Scale { clusters: 4, hosts_per_cluster: 16, appends: 1500, samples_per_append: 50 };
const SMALL: Scale =
    Scale { clusters: 2, hosts_per_cluster: 3, appends: 40, samples_per_append: 10 };

const SESSION: &str = "stream";

/// The structural opener (append seq 1): topology + one seed sample
/// per host, with hand-assigned container ids so later events can
/// address hosts directly.
fn opener(s: &Scale) -> (String, Vec<u32>) {
    let mut text = format!("span,0.0,{}\n", s.appends + 1);
    let mut hosts = Vec::new();
    let mut id = 1u32;
    for c in 0..s.clusters {
        let cluster = id;
        id += 1;
        text.push_str(&format!("container,{cluster},0,cluster,cl{c}\n"));
        for h in 0..s.hosts_per_cluster {
            text.push_str(&format!("container,{id},{cluster},host,cl{c}-h{h}\n"));
            hosts.push(id);
            id += 1;
        }
    }
    text.push_str("metric,0,MFlop/s,power\nmetric,1,MFlop/s,power_used\n");
    for &h in &hosts {
        text.push_str(&format!("var,0.0,{h},0,100.0\n"));
    }
    (text, hosts)
}

/// Append seq `i + 1` (i >= 1): a batch of samples at time `i`,
/// cycling over hosts. Exactly representable values keep every run
/// byte-deterministic.
fn event(s: &Scale, hosts: &[u32], i: usize) -> String {
    let mut text = String::new();
    for k in 0..s.samples_per_append {
        let host = hosts[(i * s.samples_per_append + k) % hosts.len()];
        let v = ((i * 7 + k * 3) % 100) as f64;
        text.push_str(&format!("var,{i},{host},1,{v}\n"));
    }
    text.pop();
    text
}

fn send(server: &Server, cmd: &Command) -> Response {
    let resp = server.handle_line(&cmd.encode()).expect("non-blank command");
    Response::decode(&resp).expect("decodable response")
}

fn render(server: &Server) -> String {
    match send(
        server,
        &Command::Render {
            session: SESSION.to_owned(),
            width: 800.0,
            height: 600.0,
            theme: Theme::Light,
            labels: false,
            zoom: None,
            pan_x: None,
            pan_y: None,
        },
    ) {
        Response::Frame { svg, .. } => svg,
        other => panic!("render failed: {other:?}"),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct RunResult {
    append_p50_ms: f64,
    append_p99_ms: f64,
    events_per_sec: f64,
    /// Bytes of delta pushes received per subscriber (0 with no
    /// subscribers).
    delta_bytes_per_sub: u64,
    svg: String,
}

/// One full streamed run: durable appends (fsync every ack) with
/// `subscribers` live subscriber connections, drained after every
/// append like attentive dashboards. Returns append latency stats and
/// the final render.
fn run(dir: &Path, s: &Scale, subscribers: usize) -> RunResult {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create journal dir");
    let limits = ServerLimits {
        journal_dir: Some(dir.to_path_buf()),
        journal_sync_every: 1,
        subscriber_queue: 64,
        ..ServerLimits::default()
    };
    let server = Server::new(limits);
    let (first, hosts) = opener(s);
    match send(&server, &Command::Append { session: SESSION.to_owned(), seq: 1, text: first }) {
        Response::Appended { .. } => {}
        other => panic!("opening append failed: {other:?}"),
    }
    let conns: Vec<u64> = (0..subscribers).map(|_| server.open_conn()).collect();
    for &conn in &conns {
        let sub = Command::Subscribe { session: SESSION.to_owned(), from_seq: None };
        let resp = server.handle_line_on(Some(conn), &format!("{}\n", sub.encode()));
        assert!(
            matches!(resp.as_deref().map(Response::decode), Some(Ok(Response::Subscribed { .. }))),
            "subscribe failed: {resp:?}"
        );
        server.take_pushes(conn); // swallow the snapshot
    }
    let mut latencies = Vec::with_capacity(s.appends);
    let mut delta_bytes = 0u64;
    let t0 = Instant::now();
    for i in 1..=s.appends {
        let cmd = Command::Append {
            session: SESSION.to_owned(),
            seq: (i + 1) as u64,
            text: event(s, &hosts, i),
        };
        let line = cmd.encode();
        let t = Instant::now();
        let resp = server.handle_line(&line).expect("append response");
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(resp.starts_with("{\"ok\":\"appended\""), "append refused: {resp}");
        for &conn in &conns {
            for push in server.take_pushes(conn) {
                assert!(Push::is_push(&push), "unexpected non-push line: {push}");
                if conn == conns[0] {
                    delta_bytes += push.len() as u64 + 1;
                }
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let svg = render(&server);
    latencies.sort_by(|a, b| a.total_cmp(b));
    RunResult {
        append_p50_ms: percentile(&latencies, 50.0),
        append_p99_ms: percentile(&latencies, 99.0),
        events_per_sec: (s.appends * s.samples_per_append) as f64 / wall.max(1e-9),
        delta_bytes_per_sub: delta_bytes,
        svg,
    }
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { SMALL } else { FULL };
    let base = std::env::temp_dir().join(format!("viva_fig_streaming_{}", std::process::id()));
    println!(
        "Streaming: {} hosts, {} appends x {} samples, fsync every append ({} mode)",
        scale.clusters * scale.hosts_per_cluster,
        scale.appends,
        scale.samples_per_append,
        if small { "smoke" } else { "full" }
    );

    // Appends with nobody watching, then with 16 attentive subscribers.
    let quiet = run(&base.join("quiet"), &scale, 0);
    println!(
        "  0 subscribers: append p50 {:.3} ms p99 {:.3} ms, {:.0} events/s",
        quiet.append_p50_ms, quiet.append_p99_ms, quiet.events_per_sec
    );
    let watched = run(&base.join("watched"), &scale, 16);
    println!(
        "  16 subscribers: append p50 {:.3} ms p99 {:.3} ms, {:.0} events/s, {} delta bytes/sub",
        watched.append_p50_ms,
        watched.append_p99_ms,
        watched.events_per_sec,
        watched.delta_bytes_per_sub
    );
    assert_eq!(quiet.svg, watched.svg, "subscribers must not change session state");

    // Crash recovery: a fresh server over the watched run's journal
    // dir rebuilds the session; the render must match byte for byte.
    let t0 = Instant::now();
    let limits = ServerLimits {
        journal_dir: Some(base.join("watched")),
        journal_sync_every: 1,
        ..ServerLimits::default()
    };
    let revived = Server::new(limits);
    let recovered = revived.recover_journals();
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(recovered, vec![SESSION.to_owned()], "recovery must find the session");
    assert_eq!(render(&revived), watched.svg, "recovered render must be byte-identical");
    let total_events = scale.appends * scale.samples_per_append;
    println!(
        "  recovery: {} events replayed in {:.1} ms ({:.0} events/s), render byte-identical",
        total_events,
        recovery_ms,
        total_events as f64 / (recovery_ms / 1e3).max(1e-9)
    );

    // The delta protocol's wire savings vs re-sending the frame.
    let frame_bytes = watched.svg.len() as u64 * scale.appends as u64;
    let savings = frame_bytes as f64 / watched.delta_bytes_per_sub.max(1) as f64;
    println!(
        "  wire: {} delta bytes/sub vs {} frame bytes ({savings:.1}x smaller)",
        watched.delta_bytes_per_sub, frame_bytes
    );

    let _ = std::fs::remove_dir_all(&base);

    if small {
        println!("  smoke mode: recovery + fan-out checks passed, timings not asserted");
        return;
    }

    // The fan-out gate: publishing to 16 subscribers must not wreck
    // the durable append path.
    let ratio = watched.append_p99_ms / quiet.append_p99_ms.max(1e-9);
    println!("  append p99 16 vs 0 subscribers: {ratio:.2}x");
    assert!(
        ratio <= 2.0,
        "append p99 with 16 subscribers must stay within 2x of unwatched: \
         {:.3} ms vs {:.3} ms ({ratio:.2}x)",
        watched.append_p99_ms,
        quiet.append_p99_ms
    );
    assert!(savings > 1.0, "deltas must beat frames on the wire ({savings:.2}x)");

    let json = format!(
        "{{\n  \"benchmark\": \"streaming\",\n  \"protocol\": \"ndjson-v1\",\n  \
         \"workload\": {{ \"hosts\": {}, \"appends\": {}, \"samples_per_append\": {}, \"fsync_every_append\": true }},\n  \
         \"append_p50_ms_0_subs\": {:.3},\n  \"append_p99_ms_0_subs\": {:.3},\n  \
         \"append_p50_ms_16_subs\": {:.3},\n  \"append_p99_ms_16_subs\": {:.3},\n  \
         \"append_p99_fanout_ratio\": {:.2},\n  \
         \"append_events_per_sec_0_subs\": {:.0},\n  \"append_events_per_sec_16_subs\": {:.0},\n  \
         \"recovery_ms\": {:.1},\n  \"recovery_events_per_sec\": {:.0},\n  \
         \"delta_bytes_per_subscriber\": {},\n  \"frame_bytes_equivalent\": {},\n  \
         \"delta_wire_savings\": {:.1}\n}}\n",
        scale.clusters * scale.hosts_per_cluster,
        scale.appends,
        scale.samples_per_append,
        quiet.append_p50_ms,
        quiet.append_p99_ms,
        watched.append_p50_ms,
        watched.append_p99_ms,
        ratio,
        quiet.events_per_sec,
        watched.events_per_sec,
        recovery_ms,
        total_events as f64 / (recovery_ms / 1e3).max(1e-9),
        watched.delta_bytes_per_sub,
        frame_bytes,
        savings
    );
    std::fs::write("BENCH_streaming.json", &json).expect("write BENCH_streaming.json");
    println!("  [json] BENCH_streaming.json");
}
