//! Figure 9 — evolution of platform usage across time at the site
//! level: the bandwidth-centric strategy fills well-connected sites
//! first ("site B is filled quickly in [t0, t2] whereas site C has to
//! wait until t2"), while a FIFO master diffuses uniformly.
//!
//! Pass `--small` for a reduced platform.

use viva_agg::TimeSlice;
use viva_bench::{best_connected_host, print_table};
use viva_platform::generators::{self, Grid5000Config};
use viva_simflow::TracingConfig;
use viva_trace::{ContainerKind, Trace};
use viva_workloads::{run_master_worker, AppSpec, MwConfig, Scheduler};

fn site_matrix(trace: &Trace, makespan: f64, metric: &str) -> (Vec<String>, Vec<Vec<f64>>) {
    let tree = trace.containers();
    let sites: Vec<_> = tree.of_kind(ContainerKind::Site);
    let names = sites
        .iter()
        .map(|&s| tree.node(s).name().to_owned())
        .collect();
    let slices = TimeSlice::new(0.0, makespan).split(4);
    let matrix = viva::animation::evolution_matrix(trace, metric, &sites, &slices);
    (names, matrix)
}

fn run(scheduler: Scheduler, small: bool) -> (Trace, f64) {
    let cfg = if small {
        Grid5000Config { total_hosts: 120, sites: 6, ..Default::default() }
    } else {
        Grid5000Config::default()
    };
    let platform = generators::grid5000(&cfg).unwrap();
    // Long-running tasks, roughly three per worker: the run is
    // dominated by the buffer-filling wave, which is where the
    // scheduling policy shows (the paper's "site B is filled quickly
    // ... site C has to wait").
    let n_hosts = platform.hosts().len();
    let apps = vec![AppSpec {
        name: "app1".into(),
        master: best_connected_host(&platform, 0),
        config: MwConfig {
            tasks: 3 * n_hosts,
            task_flops: 200_000.0,
            task_size_mbit: 40.0,
            scheduler,
            ..MwConfig::cpu_bound()
        },
    }];
    let run = run_master_worker(
        platform,
        &apps,
        Some(TracingConfig { record_messages: false, record_accounts: true }),
    );
    (run.trace.expect("traced"), run.makespan)
}

fn report(label: &str, trace: &Trace, makespan: f64) {
    let (names, matrix) = site_matrix(trace, makespan, "power_used:app1");
    println!("\n{label} — makespan {makespan:.0} s; app1 MFlop delivered per site per quarter:");
    let mut rows = Vec::new();
    let mut started_at = Vec::new();
    for (name, series) in names.iter().zip(&matrix) {
        let total: f64 = series.iter().sum();
        if total <= 0.0 {
            continue;
        }
        let first_active = series.iter().position(|&v| v > total * 0.01).unwrap_or(4);
        started_at.push((name.clone(), first_active));
        rows.push(vec![
            name.clone(),
            format!("{:.0}", series[0]),
            format!("{:.0}", series[1]),
            format!("{:.0}", series[2]),
            format!("{:.0}", series[3]),
        ]);
    }
    print_table(&["site", "t0-t1", "t1-t2", "t2-t3", "t3-t4"], &rows);
    let early = started_at.iter().filter(|(_, f)| *f == 0).count();
    println!(
        "  sites active from the first quarter: {early} / {}",
        started_at.len()
    );
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    println!("Figure 9: workload diffusion across time at the site level");
    let (trace, makespan) = run(Scheduler::BandwidthCentric, small);
    report("bandwidth-centric (paper)", &trace, makespan);
    let (trace, makespan) = run(Scheduler::Fifo, small);
    report("FIFO ablation (§5.2: would diffuse uniformly)", &trace, makespan);
}
