//! Serving-layer benchmark — protocol throughput and render latency
//! under concurrent sessions.
//!
//! The serving layer's promise is that N analysts sharing one
//! `viva-server` each keep an interactive loop: per-session locks mean
//! independent sessions never contend, and the per-session frame cache
//! keeps repeat renders free. This harness drives the wire protocol
//! end to end — encoded command line in, encoded response line out,
//! through [`viva_server::Server::handle_line`] — with 1, 4, and 16
//! concurrent scripted clients, each owning its own session.
//!
//! Per run it reports:
//!
//! * **commands/sec** — total protocol commands served across all
//!   clients divided by wall time;
//! * **render p50/p99** — per-`render` latency percentiles (fresh
//!   renders; every round changes the slice so the frame cache cannot
//!   answer);
//! * **cached render p50/p99** — repeat-render latency (cache hits).
//!
//! Clients are **closed-loop with think time**: after each round an
//! analyst "thinks" for a few milliseconds before the next gesture,
//! the way interactive serving systems are conventionally loaded. A
//! lone analyst's throughput is therefore bounded by their own think
//! time; concurrent analysts overlap their think gaps, so aggregate
//! throughput grows with session count exactly when the per-session
//! locks actually admit concurrency (a server-global lock would
//! serialize the rounds and hold scaling at 1×, even on one core).
//!
//! Full mode asserts aggregate throughput *grows* from 1 to 4 sessions
//! (>1×) and writes `BENCH_server.json`; `--small` is the CI smoke
//! mode that keeps the correctness checks but skips timing claims and
//! leaves the committed JSON alone.

use std::sync::Arc;
use std::time::{Duration, Instant};

use viva::Theme;
use viva_server::protocol::Command;
use viva_server::{Server, ServerLimits};
use viva_trace::{ContainerKind, RecoveryMode, TraceBuilder};

#[derive(Clone, Copy)]
struct Scale {
    clusters: usize,
    hosts: usize,
    steps: usize,
    rounds: usize,
    /// Closed-loop think time between rounds, milliseconds.
    think_ms: u64,
}

const FULL: Scale = Scale { clusters: 4, hosts: 12, steps: 80, rounds: 40, think_ms: 5 };
const SMALL: Scale = Scale { clusters: 2, hosts: 3, steps: 10, rounds: 4, think_ms: 0 };

/// The trace every session loads, as CSV interchange text. Values are
/// exactly representable so responses are deterministic across runs.
fn trace_csv(s: &Scale) -> String {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    for ci in 0..s.clusters {
        let cluster = b
            .new_container(b.root(), format!("cl{ci}"), ContainerKind::Cluster)
            .expect("cluster");
        for hi in 0..s.hosts {
            let host = b
                .new_container(cluster, format!("cl{ci}-h{hi}"), ContainerKind::Host)
                .expect("host");
            b.set_variable(0.0, host, power, 100.0).expect("power");
            for t in 0..=s.steps {
                let v = (((t + (ci * s.hosts + hi) * 3) % 7) * 10) as f64;
                b.set_variable(t as f64, host, used, v).expect("used");
            }
        }
    }
    viva_trace::export::to_csv(&b.finish(s.steps as f64))
}

/// One scripted client driving its own session for `rounds` rounds.
/// Returns (commands issued, fresh-render latencies ms, cached-render
/// latencies ms).
fn drive_session(
    server: &Server,
    name: &str,
    csv: &str,
    scale: &Scale,
) -> (u64, Vec<f64>, Vec<f64>) {
    let mut commands = 0u64;
    let mut send = |cmd: &Command| -> String {
        let line = cmd.encode();
        let resp = server.handle_line(&line).expect("non-blank command line");
        assert!(
            resp.starts_with("{\"ok\""),
            "command failed: {line} -> {resp}"
        );
        commands += 1;
        resp
    };

    send(&Command::LoadTrace {
        session: name.to_owned(),
        mode: RecoveryMode::Strict,
        text: csv.to_owned(),
    });
    send(&Command::Relax { session: name.to_owned(), steps: 50 });

    let mut fresh = Vec::with_capacity(scale.rounds);
    let mut cached = Vec::with_capacity(scale.rounds);
    let render = Command::Render {
        session: name.to_owned(),
        width: 800.0,
        height: 600.0,
        theme: Theme::Light,
        labels: false,
    };
    for round in 0..scale.rounds {
        // Slide the cursor: bumps the revision, so the next render is
        // genuinely recomputed.
        let start = (round % scale.steps) as f64;
        send(&Command::SetTimeSlice {
            session: name.to_owned(),
            start,
            end: start + (scale.steps / 4).max(1) as f64,
        });
        let t0 = Instant::now();
        let first = send(&render);
        fresh.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(first.contains("\"cached\":false"), "expected a fresh render");
        let t0 = Instant::now();
        let repeat = send(&render);
        cached.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(repeat.contains("\"cached\":true"), "expected a cache hit");
        if scale.think_ms > 0 {
            std::thread::sleep(Duration::from_millis(scale.think_ms));
        }
    }
    (commands, fresh, cached)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct RunResult {
    sessions: usize,
    commands_per_sec: f64,
    render_p50_ms: f64,
    render_p99_ms: f64,
    cached_p50_ms: f64,
    cached_p99_ms: f64,
}

/// Runs `n` concurrent scripted clients against one fresh server.
fn run(n: usize, csv: &str, scale: &Scale) -> RunResult {
    let server = Arc::new(Server::new(ServerLimits::default()));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for i in 0..n {
        let server = Arc::clone(&server);
        let csv = csv.to_owned();
        let s = *scale;
        handles.push(std::thread::spawn(move || {
            drive_session(&server, &format!("analyst-{i}"), &csv, &s)
        }));
    }
    let mut commands = 0u64;
    let mut fresh = Vec::new();
    let mut cached = Vec::new();
    for h in handles {
        let (c, f, k) = h.join().expect("client thread");
        commands += c;
        fresh.extend(f);
        cached.extend(k);
    }
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(server.registry().len(), n, "every client keeps its session");
    fresh.sort_by(|a, b| a.total_cmp(b));
    cached.sort_by(|a, b| a.total_cmp(b));
    RunResult {
        sessions: n,
        commands_per_sec: commands as f64 / wall.max(1e-9),
        render_p50_ms: percentile(&fresh, 50.0),
        render_p99_ms: percentile(&fresh, 99.0),
        cached_p50_ms: percentile(&cached, 50.0),
        cached_p99_ms: percentile(&cached, 99.0),
    }
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { SMALL } else { FULL };
    let csv = trace_csv(&scale);
    println!(
        "Server: {} hosts, {} rounds/client ({} mode)",
        scale.clusters * scale.hosts,
        scale.rounds,
        if small { "smoke" } else { "full" }
    );

    let counts: &[usize] = if small { &[1, 2] } else { &[1, 4, 16] };
    let mut results = Vec::new();
    for &n in counts {
        let r = run(n, &csv, &scale);
        println!(
            "  {:>2} sessions: {:>8.0} cmd/s, render p50 {:.3} ms p99 {:.3} ms, cached p50 {:.4} ms p99 {:.4} ms",
            r.sessions,
            r.commands_per_sec,
            r.render_p50_ms,
            r.render_p99_ms,
            r.cached_p50_ms,
            r.cached_p99_ms
        );
        results.push(r);
    }

    if small {
        println!("  smoke mode: protocol + cache checks passed, timings not asserted");
        return;
    }

    let scaling = results[1].commands_per_sec / results[0].commands_per_sec.max(1e-9);
    println!("  throughput scaling 1 -> 4 sessions: {scaling:.2}x");
    assert!(
        scaling > 1.0,
        "4 concurrent sessions must out-serve 1 (got {scaling:.2}x)"
    );

    let mut json = String::from("{\n  \"benchmark\": \"server\",\n  \"protocol\": \"ndjson-v1\",\n");
    json.push_str(&format!(
        "  \"trace\": {{ \"hosts\": {}, \"rounds_per_client\": {}, \"think_ms\": {} }},\n",
        scale.clusters * scale.hosts,
        scale.rounds,
        scale.think_ms
    ));
    json.push_str(&format!("  \"throughput_scaling_1_to_4\": {scaling:.2},\n  \"runs\": [\n"));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"sessions\": {}, \"commands_per_sec\": {:.0}, \"render_p50_ms\": {:.3}, \"render_p99_ms\": {:.3}, \"cached_render_p50_ms\": {:.4}, \"cached_render_p99_ms\": {:.4} }}{}\n",
            r.sessions,
            r.commands_per_sec,
            r.render_p50_ms,
            r.render_p99_ms,
            r.cached_p50_ms,
            r.cached_p99_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("  [json] BENCH_server.json");
}
