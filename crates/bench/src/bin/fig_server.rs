//! Serving-layer benchmark — protocol throughput and render latency
//! under concurrent sessions.
//!
//! The serving layer's promise is that N analysts sharing one
//! `viva-server` each keep an interactive loop: per-session locks mean
//! independent sessions never contend, the shared-trace store means a
//! thousand sessions over one trace cost one parse and one index, and
//! the lock-free cached-render path keeps repeat renders flat as the
//! session count grows. This harness drives the wire protocol end to
//! end — encoded command line in, encoded response line out, through
//! [`viva_server::Server::handle_line`] — with 1 to 1024 concurrent
//! sessions over one stored trace (`load_trace` once, `attach`
//! everywhere else).
//!
//! Per run it reports:
//!
//! * **commands/sec** — total protocol commands served across all
//!   clients divided by wall time;
//! * **render p50/p99** — per-`render` latency percentiles (fresh
//!   renders; every round changes the slice so the frame cache cannot
//!   answer);
//! * **cached render p50/p99** — repeat-render latency (cache hits).
//!
//! Small session counts (≤ 16) run **closed-loop with think time**,
//! one thread per analyst, the way interactive serving systems are
//! conventionally loaded. Large counts (≥ 64) are driven by a fixed
//! pool of multiplexed driver threads with no think time — more
//! sessions than threads, like the event-driven transport itself —
//! because a thousand sleeping OS threads would benchmark the
//! scheduler, not the server.
//!
//! Full mode asserts four properties and writes `BENCH_server.json`:
//! throughput grows from 1 to 4 sessions; cached-render p99 at 16
//! sessions stays within 2× of the single-session value (the registry
//! -lock regression guard); render p99 at 1024 sessions stays within
//! 2× of the 16-session value; and 1024-session throughput clears 3×
//! the pre-redesign 16-session baseline. `--small` is the CI smoke
//! mode that keeps the correctness checks but skips timing claims and
//! leaves the committed JSON alone.

use std::sync::Arc;
use std::time::{Duration, Instant};

use viva::Theme;
use viva_server::protocol::Command;
use viva_server::{Server, ServerLimits};
use viva_trace::{ContainerKind, RecoveryMode, TraceBuilder};

#[derive(Clone, Copy)]
struct Scale {
    clusters: usize,
    hosts: usize,
    steps: usize,
    rounds: usize,
    /// Closed-loop think time between rounds, milliseconds.
    think_ms: u64,
}

const FULL: Scale = Scale { clusters: 4, hosts: 12, steps: 80, rounds: 40, think_ms: 5 };
const SMALL: Scale = Scale { clusters: 2, hosts: 3, steps: 10, rounds: 4, think_ms: 0 };

/// Store name every session attaches to.
const TRACE: &str = "bench";

/// The 16-session commands/sec of the thread-per-connection,
/// trace-per-session server this redesign replaced (BENCH_server.json
/// at the seed). The 1024-session run must clear 3× this.
const SEED_CMDS_PER_SEC: f64 = 788.0;

/// Session counts driven by one multiplexed thread pool instead of a
/// thread each. Below this, a count is still multiplexed if it would
/// oversubscribe the machine (more than 4 client threads per core):
/// a thread-per-session run with more runnable threads than cores
/// measures the OS scheduler's preemption tail, not the server.
const MULTIPLEX_FROM: usize = 64;

/// Rounds per session in the multiplexed runs (the per-session script
/// is shorter so the total command count stays bounded).
const MULTIPLEX_ROUNDS: usize = 8;

/// The trace every session shares, as CSV interchange text. Values are
/// exactly representable so responses are deterministic across runs.
fn trace_csv(s: &Scale) -> String {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    for ci in 0..s.clusters {
        let cluster = b
            .new_container(b.root(), format!("cl{ci}"), ContainerKind::Cluster)
            .expect("cluster");
        for hi in 0..s.hosts {
            let host = b
                .new_container(cluster, format!("cl{ci}-h{hi}"), ContainerKind::Host)
                .expect("host");
            b.set_variable(0.0, host, power, 100.0).expect("power");
            for t in 0..=s.steps {
                let v = (((t + (ci * s.hosts + hi) * 3) % 7) * 10) as f64;
                b.set_variable(t as f64, host, used, v).expect("used");
            }
        }
    }
    viva_trace::export::to_csv(&b.finish(s.steps as f64))
}

fn send(server: &Server, commands: &mut u64, cmd: &Command) -> String {
    let line = cmd.encode();
    let resp = server.handle_line(&line).expect("non-blank command line");
    assert!(resp.starts_with("{\"ok\""), "command failed: {line} -> {resp}");
    *commands += 1;
    resp
}

/// Attaches `name` to the stored trace and settles its layout.
fn open_session(server: &Server, commands: &mut u64, name: &str) {
    send(
        server,
        commands,
        &Command::Attach { session: name.to_owned(), trace: TRACE.to_owned() },
    );
    send(server, commands, &Command::Relax { session: name.to_owned(), steps: 50 });
}

/// One analyst round on one session: slide the slice (bumps the
/// revision), render fresh, render again from the cache. Latencies in
/// milliseconds are pushed into `fresh`/`cached`.
fn one_round(
    server: &Server,
    commands: &mut u64,
    name: &str,
    scale: &Scale,
    round: usize,
    fresh: &mut Vec<f64>,
    cached: &mut Vec<f64>,
) {
    let start = (round % scale.steps) as f64;
    send(
        server,
        commands,
        &Command::SetTimeSlice {
            session: name.to_owned(),
            start,
            end: start + (scale.steps / 4).max(1) as f64,
        },
    );
    let render = Command::Render {
        session: name.to_owned(),
        width: 800.0,
        height: 600.0,
        theme: Theme::Light,
        labels: false,
        zoom: None,
        pan_x: None,
        pan_y: None,
    };
    let t0 = Instant::now();
    let first = send(server, commands, &render);
    fresh.push(t0.elapsed().as_secs_f64() * 1e3);
    assert!(first.contains("\"cached\":false"), "expected a fresh render");
    let t0 = Instant::now();
    let repeat = send(server, commands, &render);
    cached.push(t0.elapsed().as_secs_f64() * 1e3);
    assert!(repeat.contains("\"cached\":true"), "expected a cache hit");
}

/// One closed-loop client owning one session (small session counts).
fn drive_session(server: &Server, name: &str, scale: &Scale) -> (u64, Vec<f64>, Vec<f64>) {
    let mut commands = 0u64;
    let mut fresh = Vec::with_capacity(scale.rounds);
    let mut cached = Vec::with_capacity(scale.rounds);
    open_session(server, &mut commands, name);
    for round in 0..scale.rounds {
        one_round(server, &mut commands, name, scale, round, &mut fresh, &mut cached);
        if scale.think_ms > 0 {
            std::thread::sleep(Duration::from_millis(scale.think_ms));
        }
    }
    (commands, fresh, cached)
}

/// One multiplexed driver interleaving rounds across many sessions —
/// every session in the chunk stays live the whole run, so the
/// registry, store, and frame caches all hold the full population.
fn drive_many(
    server: &Server,
    names: &[String],
    scale: &Scale,
    rounds: usize,
) -> (u64, Vec<f64>, Vec<f64>) {
    let mut commands = 0u64;
    let mut fresh = Vec::with_capacity(rounds * names.len());
    let mut cached = Vec::with_capacity(rounds * names.len());
    for name in names {
        open_session(server, &mut commands, name);
    }
    for round in 0..rounds {
        for name in names {
            one_round(server, &mut commands, name, scale, round, &mut fresh, &mut cached);
        }
    }
    (commands, fresh, cached)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct RunResult {
    sessions: usize,
    commands_per_sec: f64,
    render_p50_ms: f64,
    render_p99_ms: f64,
    cached_p50_ms: f64,
    cached_p99_ms: f64,
}

/// Runs `n` concurrent sessions over one stored trace against one
/// fresh server.
fn run(n: usize, csv: &str, scale: &Scale) -> RunResult {
    let server = Arc::new(Server::new(ServerLimits {
        max_sessions: n + 1,
        ..ServerLimits::default()
    }));
    // Parse + index once; every session below shares the stored trace.
    let mut setup = 0u64;
    send(
        &server,
        &mut setup,
        &Command::LoadTrace {
            session: "loader".to_owned(),
            mode: RecoveryMode::Strict,
            text: csv.to_owned(),
            trace: Some(TRACE.to_owned()),
        },
    );
    send(&server, &mut setup, &Command::CloseSession { session: "loader".to_owned() });

    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    if n >= MULTIPLEX_FROM || n > 4 * cores {
        // Half the cores drive, the other half serve. On a small box
        // that degenerates to one driver — the right load generator
        // there, since more drivers than cores measures the OS
        // scheduler's preemption tail, not the server.
        let drivers = (cores / 2).clamp(1, 16);
        let names: Vec<String> = (0..n).map(|i| format!("analyst-{i}")).collect();
        let chunk = n.div_ceil(drivers);
        for part in names.chunks(chunk) {
            let server = Arc::clone(&server);
            let part = part.to_vec();
            let s = *scale;
            handles.push(std::thread::spawn(move || {
                drive_many(&server, &part, &s, MULTIPLEX_ROUNDS)
            }));
        }
    } else {
        for i in 0..n {
            let server = Arc::clone(&server);
            let s = *scale;
            handles.push(std::thread::spawn(move || {
                drive_session(&server, &format!("analyst-{i}"), &s)
            }));
        }
    }
    let mut commands = 0u64;
    let mut fresh = Vec::new();
    let mut cached = Vec::new();
    for h in handles {
        let (c, f, k) = h.join().expect("client thread");
        commands += c;
        fresh.extend(f);
        cached.extend(k);
    }
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(server.registry().len(), n, "every client keeps its session");
    let listing = server.store().list();
    assert_eq!(listing.len(), 1, "one stored trace serves every session");
    assert_eq!(
        listing[0].sessions as usize, n,
        "one Arc strong count per attached session"
    );
    fresh.sort_by(|a, b| a.total_cmp(b));
    cached.sort_by(|a, b| a.total_cmp(b));
    RunResult {
        sessions: n,
        commands_per_sec: commands as f64 / wall.max(1e-9),
        render_p50_ms: percentile(&fresh, 50.0),
        render_p99_ms: percentile(&fresh, 99.0),
        cached_p50_ms: percentile(&cached, 50.0),
        cached_p99_ms: percentile(&cached, 99.0),
    }
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { SMALL } else { FULL };
    let csv = trace_csv(&scale);
    println!(
        "Server: {} hosts, {} rounds/client ({} mode)",
        scale.clusters * scale.hosts,
        scale.rounds,
        if small { "smoke" } else { "full" }
    );

    let counts: &[usize] = if small { &[1, 2] } else { &[1, 4, 16, 64, 256, 1024] };
    let mut results = Vec::new();
    for &n in counts {
        let r = run(n, &csv, &scale);
        println!(
            "  {:>4} sessions: {:>8.0} cmd/s, render p50 {:.3} ms p99 {:.3} ms, cached p50 {:.4} ms p99 {:.4} ms",
            r.sessions,
            r.commands_per_sec,
            r.render_p50_ms,
            r.render_p99_ms,
            r.cached_p50_ms,
            r.cached_p99_ms
        );
        results.push(r);
    }

    if small {
        println!("  smoke mode: protocol + cache + sharing checks passed, timings not asserted");
        return;
    }

    let by = |n: usize| results.iter().find(|r| r.sessions == n).expect("run present");

    let scaling = by(4).commands_per_sec / by(1).commands_per_sec.max(1e-9);
    println!("  throughput scaling 1 -> 4 sessions: {scaling:.2}x");
    assert!(scaling > 1.0, "4 concurrent sessions must out-serve 1 (got {scaling:.2}x)");

    // The registry-lock regression guard: cached renders bypass every
    // shared lock, so their tail must not grow with the session count.
    let cached_ratio = by(16).cached_p99_ms / by(1).cached_p99_ms.max(1e-9);
    println!("  cached-render p99 16 vs 1 sessions: {cached_ratio:.2}x");
    assert!(
        cached_ratio <= 2.0,
        "cached-render p99 regressed with session count: {:.4} ms at 16 vs {:.4} ms at 1 ({cached_ratio:.2}x > 2x)",
        by(16).cached_p99_ms,
        by(1).cached_p99_ms
    );

    // Scalability gates for the event-driven redesign.
    let tail_ratio = by(1024).render_p99_ms / by(16).render_p99_ms.max(1e-9);
    println!("  render p99 1024 vs 16 sessions: {tail_ratio:.2}x");
    assert!(
        tail_ratio <= 2.0,
        "render p99 at 1024 sessions must stay within 2x of 16 ({tail_ratio:.2}x)"
    );
    assert!(
        by(1024).commands_per_sec >= 3.0 * SEED_CMDS_PER_SEC,
        "1024-session throughput {:.0} cmd/s must clear 3x the {SEED_CMDS_PER_SEC} cmd/s seed",
        by(1024).commands_per_sec
    );

    let mut json = String::from("{\n  \"benchmark\": \"server\",\n  \"protocol\": \"ndjson-v1\",\n");
    json.push_str(&format!(
        "  \"trace\": {{ \"hosts\": {}, \"rounds_per_client\": {}, \"think_ms\": {}, \"multiplexed_from_sessions\": {}, \"multiplexed_rounds\": {} }},\n",
        scale.clusters * scale.hosts,
        scale.rounds,
        scale.think_ms,
        MULTIPLEX_FROM,
        MULTIPLEX_ROUNDS
    ));
    json.push_str(&format!("  \"throughput_scaling_1_to_4\": {scaling:.2},\n  \"runs\": [\n"));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"sessions\": {}, \"commands_per_sec\": {:.0}, \"render_p50_ms\": {:.3}, \"render_p99_ms\": {:.3}, \"cached_render_p50_ms\": {:.4}, \"cached_render_p99_ms\": {:.4} }}{}\n",
            r.sessions,
            r.commands_per_sec,
            r.render_p50_ms,
            r.render_p99_ms,
            r.cached_p50_ms,
            r.cached_p99_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("  [json] BENCH_server.json");
}
