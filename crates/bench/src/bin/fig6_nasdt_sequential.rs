//! Figure 6 — NAS-DT class A White-Hole, *sequential* deployment.
//!
//! Reproduces the paper's first case study: DT on two 11-host clusters
//! with processes allocated in hostfile order. The series behind the
//! figure is the utilization of every network link over four
//! time-slices (whole run, beginning, middle, end); the phenomenon is
//! that the two inter-cluster links are "almost saturated ... most of
//! the time".

use viva::{AnalysisSession, Viewport};
use viva_agg::TimeSlice;
use viva_bench::{link_utilization, print_table, save_svg, trace_links};
use viva_platform::generators::{self, TwoClustersConfig};
use viva_simflow::TracingConfig;
use viva_workloads::{run_dt, Deployment, DtConfig};

fn main() {
    println!("Figure 6: NAS-DT class A WH, sequential deployment, link utilization");
    let platform = generators::two_clusters(&TwoClustersConfig::default()).unwrap();
    let cfg = DtConfig::default();
    let run = run_dt(
        platform.clone(),
        &cfg,
        Deployment::Sequential,
        Some(TracingConfig { record_messages: false, record_accounts: false }),
    );
    let trace = run.trace.expect("traced run");
    println!("  makespan: {:.3} s ({} processes)", run.makespan, cfg.processes());

    let whole = TimeSlice::new(0.0, run.makespan);
    let thirds = whole.split(3);
    let slices = [
        ("whole run", whole),
        ("beginning", thirds[0]),
        ("middle", thirds[1]),
        ("end", thirds[2]),
    ];
    let links = trace_links(&trace);
    for (label, s) in slices {
        let mut rows: Vec<(f64, Vec<String>)> = links
            .iter()
            .map(|(id, name)| {
                let u = link_utilization(&trace, *id, s.start(), s.end());
                let marker = if name.ends_with("-bb") { "  <-- inter-cluster" } else { "" };
                (
                    u,
                    vec![name.clone(), format!("{:.0}%{marker}", u * 100.0)],
                )
            })
            .collect();
        rows.sort_by(|a, b| b.0.total_cmp(&a.0));
        println!("\nslice: {label} [{:.2}, {:.2})", s.start(), s.end());
        print_table(
            &["link", "utilization"],
            &rows.into_iter().take(6).map(|(_, r)| r).collect::<Vec<_>>(),
        );
    }

    // The four SVG snapshots of the figure.
    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.relax(600);
    for (name, s) in [
        ("fig6_whole.svg", whole),
        ("fig6_begin.svg", thirds[0]),
        ("fig6_middle.svg", thirds[1]),
        ("fig6_end.svg", thirds[2]),
    ] {
        session.set_time_slice(s);
        session.relax(30);
        save_svg(name, &session.render(&Viewport::new(700.0, 500.0)));
    }
}
