//! Figure 2 — temporal aggregation of one host over a time-slice.
//!
//! One host with computing-power capacity and utilization signals; the
//! analyst picks a slice `[A1, A2]` and the node's size/fill become the
//! time-integrated values. Also demonstrates the §3.2.1 caveat: slices
//! wider than a burst attenuate it.

use viva_agg::TimeSlice;
use viva_bench::print_table;
use viva_trace::{ContainerKind, TraceBuilder};

fn main() {
    println!("Figure 2: time-aggregated metrics of HostA over a slice");
    let mut b = TraceBuilder::new();
    let h = b.new_container(b.root(), "HostA", ContainerKind::Host).unwrap();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    // Capacity dips in the middle (another user's reservation).
    b.set_variable(0.0, h, power, 100.0).unwrap();
    b.set_variable(4.0, h, power, 60.0).unwrap();
    b.set_variable(8.0, h, power, 100.0).unwrap();
    // Utilization: one short burst while capacity is still full.
    b.set_variable(0.0, h, used, 0.0).unwrap();
    b.set_variable(1.0, h, used, 90.0).unwrap();
    b.set_variable(3.0, h, used, 10.0).unwrap();
    let trace = b.finish(12.0);
    let power = trace.metric_id("power").unwrap();
    let used = trace.metric_id("power_used").unwrap();

    let slices = [
        ("narrow, inside the burst", TimeSlice::new(1.0, 3.0)),
        ("the paper's [A1, A2]", TimeSlice::new(2.0, 9.0)),
        ("whole run", TimeSlice::new(0.0, 12.0)),
    ];
    let mut rows = Vec::new();
    for (label, s) in slices {
        let cap = trace.signal(h, power).unwrap().mean(s.start(), s.end());
        let use_mean = trace.signal(h, used).unwrap().mean(s.start(), s.end());
        rows.push(vec![
            label.to_owned(),
            format!("{s}"),
            format!("{cap:.1}"),
            format!("{use_mean:.1}"),
            format!("{:.0}%", 100.0 * use_mean / cap),
        ]);
    }
    print_table(
        &["slice", "window", "size = mean power", "fill value", "fill"],
        &rows,
    );
    println!(
        "\nNote (§3.2.1): the 90 MFlop/s burst reads as {:.1} over the wide slice —\n\
         aggregation attenuates events shorter than the chosen interval.",
        trace.signal(h, used).unwrap().mean(0.0, 12.0)
    );
}
