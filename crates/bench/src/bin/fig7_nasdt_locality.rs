//! Figure 7 — NAS-DT class A White-Hole, *locality-aware* deployment,
//! plus the §5.1 headline claim: the new hostfile reduces the run time
//! by about 20 %.
//!
//! Prints both makespans, the improvement, and the per-slice link
//! utilization under the locality deployment (the contention moves from
//! the inter-cluster links to the intra-cluster uplinks).

use viva::{AnalysisSession, Viewport};
use viva_agg::TimeSlice;
use viva_bench::{link_utilization, print_table, save_svg, trace_links};
use viva_platform::generators::{self, TwoClustersConfig};
use viva_simflow::TracingConfig;
use viva_workloads::{run_dt, Deployment, DtConfig};

fn main() {
    println!("Figure 7: NAS-DT class A WH, locality deployment");
    let platform = generators::two_clusters(&TwoClustersConfig::default()).unwrap();
    let cfg = DtConfig::default();
    let tracing = TracingConfig { record_messages: false, record_accounts: false };
    let seq = run_dt(platform.clone(), &cfg, Deployment::Sequential, Some(tracing.clone()));
    let loc = run_dt(platform.clone(), &cfg, Deployment::Locality, Some(tracing));
    let improvement = 100.0 * (1.0 - loc.makespan / seq.makespan);
    println!("  sequential makespan: {:.3} s", seq.makespan);
    println!("  locality   makespan: {:.3} s", loc.makespan);
    println!("  improvement:         {improvement:.1} %   (paper reports ~20 %)");

    let trace = loc.trace.expect("traced run");
    let seq_trace = seq.trace.expect("traced run");
    let whole_loc = TimeSlice::new(0.0, loc.makespan);
    let whole_seq = TimeSlice::new(0.0, seq.makespan);

    // Inter-cluster utilization comparison (the figure's headline).
    println!("\ninter-cluster link utilization, whole run:");
    let mut rows = Vec::new();
    for name in ["adonis-bb", "griffon-bb"] {
        let l_seq = seq_trace.containers().by_name(name).unwrap().id();
        let l_loc = trace.containers().by_name(name).unwrap().id();
        rows.push(vec![
            name.to_owned(),
            format!(
                "{:.0}%",
                100.0 * link_utilization(&seq_trace, l_seq, 0.0, whole_seq.end())
            ),
            format!(
                "{:.0}%",
                100.0 * link_utilization(&trace, l_loc, 0.0, whole_loc.end())
            ),
        ]);
    }
    print_table(&["link", "sequential (fig 6)", "locality (fig 7)"], &rows);

    let thirds = whole_loc.split(3);
    for (label, s) in [
        ("whole run", whole_loc),
        ("beginning", thirds[0]),
        ("middle", thirds[1]),
        ("end", thirds[2]),
    ] {
        let mut rows: Vec<(f64, Vec<String>)> = trace_links(&trace)
            .iter()
            .map(|(id, name)| {
                let u = link_utilization(&trace, *id, s.start(), s.end());
                let marker = if name.ends_with("-bb") { "  <-- inter-cluster" } else { "" };
                (u, vec![name.clone(), format!("{:.0}%{marker}", u * 100.0)])
            })
            .collect();
        rows.sort_by(|a, b| b.0.total_cmp(&a.0));
        println!("\nslice: {label} [{:.2}, {:.2})", s.start(), s.end());
        print_table(
            &["link", "utilization"],
            &rows.into_iter().take(6).map(|(_, r)| r).collect::<Vec<_>>(),
        );
    }

    let mut session =
        AnalysisSession::builder(trace).platform(&platform).build();
    session.relax(600);
    for (name, s) in [
        ("fig7_whole.svg", whole_loc),
        ("fig7_begin.svg", thirds[0]),
        ("fig7_middle.svg", thirds[1]),
        ("fig7_end.svg", thirds[2]),
    ] {
        session.set_time_slice(s);
        session.relax(30);
        save_svg(name, &session.render(&Viewport::new(700.0, 500.0)));
    }
}
