//! Figure 1 — from trace metrics to the graph representation.
//!
//! Rebuilds the paper's running example: two hosts (available power +
//! utilization) and one link (available bandwidth + utilization) whose
//! values change over time, observed at three cursors A, B, C. Prints
//! the node size/fill each cursor produces and writes one SVG per
//! cursor.

use viva::{AnalysisSession, Viewport};
use viva_agg::TimeSlice;
use viva_bench::{print_table, save_svg};
use viva_trace::{ContainerKind, Trace, TraceBuilder};

fn example_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let ha = b.new_container(b.root(), "HostA", ContainerKind::Host).unwrap();
    let hb = b.new_container(b.root(), "HostB", ContainerKind::Host).unwrap();
    let la = b.new_container(b.root(), "LinkA", ContainerKind::Link).unwrap();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    let bw = b.metric("bandwidth", "Mbit/s");
    let bw_used = b.metric("bandwidth_used", "Mbit/s");
    // Availability (solid lines of the paper's plot).
    b.set_variable(0.0, ha, power, 100.0).unwrap();
    b.set_variable(6.0, ha, power, 40.0).unwrap();
    b.set_variable(0.0, hb, power, 60.0).unwrap();
    b.set_variable(4.0, hb, power, 80.0).unwrap();
    b.set_variable(0.0, la, bw, 10_000.0).unwrap();
    // Utilization (dashed lines).
    b.set_variable(0.0, ha, used, 30.0).unwrap();
    b.set_variable(5.0, ha, used, 35.0).unwrap();
    b.set_variable(0.0, hb, used, 10.0).unwrap();
    b.set_variable(4.0, hb, used, 70.0).unwrap();
    b.set_variable(0.0, la, bw_used, 2_000.0).unwrap();
    b.set_variable(6.0, la, bw_used, 9_000.0).unwrap();
    b.finish(9.0)
}

fn main() {
    println!("Figure 1: mapping trace metrics to the graph (2 hosts + 1 link)");
    let trace = example_trace();
    let tree = trace.containers();
    let edges = vec![
        (tree.by_name("HostA").unwrap().id(), tree.by_name("LinkA").unwrap().id()),
        (tree.by_name("LinkA").unwrap().id(), tree.by_name("HostB").unwrap().id()),
    ];
    let mut session = AnalysisSession::builder(trace).edges(edges).build();
    session.relax(300);
    // Cursors: instantaneous views are narrow slices around each time.
    for (cursor, t) in [("A", 2.0), ("B", 5.5), ("C", 8.0)] {
        session.set_time_slice(TimeSlice::new(t, t + 0.01));
        let view = session.view();
        let mut rows = Vec::new();
        for node in &view.nodes {
            rows.push(vec![
                node.label.clone(),
                node.shape.label().to_owned(),
                format!("{:.1}", node.size_value),
                format!("{:.0}%", node.fill_fraction * 100.0),
                format!("{:.1}px", node.px_size),
            ]);
        }
        println!("\ncursor {cursor} (t = {t}):");
        print_table(&["node", "shape", "size (capacity)", "fill", "screen"], &rows);
        save_svg(
            &format!("fig1_cursor_{cursor}.svg"),
            &session.render(&Viewport::new(400.0, 300.0)),
        );
    }
}
