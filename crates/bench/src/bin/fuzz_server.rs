//! Chaos harness for the serving layer: seeded adversarial traffic
//! against a live [`viva_server::Server`], in-process and over TCP.
//!
//! The resilience contract this harness enforces (DESIGN.md §14):
//!
//! * **zero panics, zero wedges** — every adversarial command line,
//!   garbage frame, torn frame, and slow-loris connection is absorbed;
//!   the run finishes under a watchdog, and every response still
//!   decodes as a well-formed protocol response;
//! * **kill–restore–replay** — mid-chaos, sessions are checkpointed,
//!   killed, and restored; the restored session renders byte-identical
//!   to the pre-kill frame at the checkpointed revision;
//! * **deterministic degradation** — zero-budget deadlines breach
//!   every time with `deadline_exceeded`, eviction churn checkpoints
//!   every victim, mutated checkpoints are rejected with
//!   `bad_checkpoint` (never a crash);
//! * **the clean path stays golden** — a fresh default-limits server
//!   still reproduces the checked-in golden transcript byte for byte,
//!   and a clean scripted TCP client gets byte-identical responses
//!   while the chaos clients hammer the same server.
//!
//! `fuzz_server [--events N] [--seed S]` — defaults: 10 000 events,
//! seed 42. Fully offline; `ci.sh` runs it as the `chaos-smoke` step.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use viva::Theme;
use viva_server::{
    Command, ErrorKind, Response, Server, ServerLimits, SessionCheckpoint, StatsBlock,
};
use viva_trace::RecoveryMode;

/// Session names the chaos generator targets. More names than the
/// chaos server's `max_sessions`, so loads continuously evict.
const POOL: [&str; 6] = ["chaos-0", "chaos-1", "chaos-2", "chaos-3", "chaos-4", "chaos-5"];

/// Container/metric names that exist in [`valid_csv`] traces, mixed
/// with names that never will.
const CONTAINERS: [&str; 6] = ["grenoble", "adonis", "adonis-1", "adonis-2", "", "no-such-node"];
const METRICS: [&str; 3] = ["power_used", "power", "no_such_metric"];

/// A small valid trace; `variant` perturbs the values so reloads
/// genuinely change session state.
fn valid_csv(variant: u64) -> String {
    let v = (variant % 7) as f64;
    format!(
        "span,0.0,10.0\n\
         container,1,0,site,grenoble\n\
         container,2,1,cluster,adonis\n\
         container,3,2,host,adonis-1\n\
         container,4,2,host,adonis-2\n\
         metric,0,MFlop/s,power\n\
         metric,1,MFlop/s,power_used\n\
         var,0.0,3,0,100.0\nvar,0.0,4,0,100.0\n\
         var,0.0,3,1,{a}\nvar,0.0,4,1,{b}\n\
         var,5.0,3,1,{c}\n",
        a = 10.0 + v,
        b = 20.0 + v,
        c = 30.0 + v,
    )
}

/// Adversarial trace payloads: quarantine fodder, truncation, garbage.
fn hostile_csv(rng: &mut SmallRng) -> String {
    match rng.gen_range(0..5u32) {
        0 => String::new(),
        1 => "complete garbage, not a trace\n".repeat(rng.gen_range(1..20usize)),
        2 => {
            // NaN flood: every sample quarantines.
            let mut s = String::from(
                "span,0,10\ncontainer,1,0,host,h\nmetric,0,u,x\nvar,0.0,1,0,1.0\n",
            );
            for i in 0..rng.gen_range(1..50u32) {
                s.push_str(&format!("var,{i}.0,1,0,NaN\n"));
            }
            s
        }
        3 => valid_csv(rng.gen_range(0..7u64)).split_at(rng.gen_range(0..40usize)).0.to_owned(),
        _ => "span,10,0\n".to_owned(), // inverted span
    }
}

/// An adversarial float: mostly wild, occasionally reasonable.
fn wild_f64(rng: &mut SmallRng) -> f64 {
    match rng.gen_range(0..8u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -1e300,
        4 => 1e300,
        5 => -0.0,
        _ => rng.gen_range(-1000.0..1000.0),
    }
}

fn pick<'a>(rng: &mut SmallRng, xs: &[&'a str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// Raw wire lines that are not protocol at all.
fn garbage_line(rng: &mut SmallRng) -> String {
    match rng.gen_range(0..7u32) {
        0 => "not json at all".to_owned(),
        1 => "{}".to_owned(),
        2 => "{\"cmd\":\"no_such_command\"}".to_owned(),
        3 => "{\"cmd\":42}".to_owned(),
        4 => "[1,2,3]".to_owned(),
        5 => "{\"cmd\":\"render\"".to_owned(), // truncated JSON
        _ => "x".repeat(rng.gen_range(1..100_000usize)),
    }
}

/// One seeded adversarial command line (never `shutdown`: drain is
/// exercised once, deliberately, at the end of each phase).
fn chaos_line(rng: &mut SmallRng) -> String {
    let session = pick(rng, &POOL).to_owned();
    let cmd = match rng.gen_range(0..16u32) {
        0 => Command::Ping,
        1 => Command::Sessions,
        2 => Command::CloseSession { session },
        3 => Command::LoadTrace {
            session,
            mode: if rng.gen_bool(0.5) { RecoveryMode::Strict } else { RecoveryMode::Lenient },
            text: if rng.gen_bool(0.6) {
                valid_csv(rng.gen_range(0..7u64))
            } else {
                hostile_csv(rng)
            },
            trace: None,
        },
        4 => Command::SetTimeSlice { session, start: wild_f64(rng), end: wild_f64(rng) },
        5 => {
            let container = pick(rng, &CONTAINERS).to_owned();
            if rng.gen_bool(0.5) {
                Command::Collapse { session, container }
            } else {
                Command::Expand { session, container }
            }
        }
        6 => Command::CollapseAtDepth { session, depth: rng.gen_range(0..50u32) },
        7 => Command::ExpandAll { session },
        8 => Command::SetForces {
            session,
            repulsion: rng.gen_bool(0.7).then(|| wild_f64(rng)),
            spring: rng.gen_bool(0.7).then(|| wild_f64(rng)),
            damping: rng.gen_bool(0.7).then(|| wild_f64(rng)),
        },
        9 => Command::SetScaling {
            session,
            group: pick(rng, &METRICS).to_owned(),
            factor: wild_f64(rng),
        },
        10 => Command::Drag {
            session,
            container: pick(rng, &CONTAINERS).to_owned(),
            x: wild_f64(rng),
            y: wild_f64(rng),
        },
        11 => Command::Release { session, container: pick(rng, &CONTAINERS).to_owned() },
        12 => Command::Relax { session, steps: rng.gen_range(0..10_000u64) },
        13 => Command::Aggregate {
            session,
            metric: pick(rng, &METRICS).to_owned(),
            group: pick(rng, &CONTAINERS).to_owned(),
        },
        14 => Command::Render {
            session,
            width: wild_f64(rng),
            height: wild_f64(rng),
            theme: if rng.gen_bool(0.5) { Theme::Light } else { Theme::Dark },
            labels: rng.gen_bool(0.5),
            zoom: None,
            pan_x: None,
            pan_y: None,
        },
        _ => return garbage_line(rng),
    };
    cmd.encode()
}

/// Outcome tally for one chaos phase.
#[derive(Default)]
struct Tally {
    events: u64,
    ok: u64,
    errors: u64,
    restore_cycles: u64,
    mutated_restores: u64,
}

/// Sends one line through `handle_line`, asserting no panic and that
/// whatever comes back decodes as a protocol response.
fn fire(server: &Server, line: &str, tally: &mut Tally) -> Option<Response> {
    let resp = catch_unwind(AssertUnwindSafe(|| server.handle_line(line)))
        .unwrap_or_else(|_| panic!("PANIC on line: {}", &line[..line.len().min(200)]));
    tally.events += 1;
    let resp = resp?;
    let decoded = Response::decode(&resp)
        .unwrap_or_else(|e| panic!("undecodable response {e}: {}", &resp[..resp.len().min(200)]));
    match decoded {
        Response::Error { .. } => tally.errors += 1,
        _ => tally.ok += 1,
    }
    Some(decoded)
}

/// The fixed render used for kill–restore–replay equality checks.
fn probe_render(session: &str) -> Command {
    Command::Render {
        session: session.to_owned(),
        width: 640.0,
        height: 480.0,
        theme: Theme::Light,
        labels: false,
        zoom: None,
        pan_x: None,
        pan_y: None,
    }
}

/// Checkpoints a session, kills it, restores from the inline
/// checkpoint, and asserts the restored render is byte-identical to
/// the pre-kill frame at the same revision.
fn kill_restore_replay(
    server: &Server,
    rng: &mut SmallRng,
    tally: &mut Tally,
) -> Option<SessionCheckpoint> {
    let name = pick(rng, &POOL).to_owned();
    // Make sure the session exists with a known trace.
    fire(
        server,
        &Command::LoadTrace {
            session: name.clone(),
            mode: RecoveryMode::Strict,
            text: valid_csv(rng.gen_range(0..7u64)),
            trace: None,
        }
        .encode(),
        tally,
    );
    fire(server, &Command::Relax { session: name.clone(), steps: 40 }.encode(), tally);
    let before = match fire(server, &probe_render(&name).encode(), tally) {
        Some(Response::Frame { revision, svg, .. }) => (revision, svg),
        other => panic!("pre-kill render failed: {other:?}"),
    };
    let state = match fire(server, &Command::Checkpoint { session: name.clone() }.encode(), tally)
    {
        Some(Response::Checkpointed { state, .. }) => *state,
        other => panic!("checkpoint failed: {other:?}"),
    };
    fire(server, &Command::CloseSession { session: name.clone() }.encode(), tally);
    match fire(
        server,
        &Command::Restore { session: name.clone(), state: Some(Box::new(state.clone())) }
            .encode(),
        tally,
    ) {
        Some(Response::Restored { revision, .. }) => {
            assert_eq!(revision, state.revision, "restore must land on the checkpoint revision")
        }
        other => panic!("restore failed: {other:?}"),
    }
    match fire(server, &probe_render(&name).encode(), tally) {
        Some(Response::Frame { revision, svg, .. }) => {
            assert_eq!(revision, before.0, "restored render revision drifted");
            assert_eq!(svg, before.1, "restored render is not byte-identical");
        }
        other => panic!("post-restore render failed: {other:?}"),
    }
    tally.restore_cycles += 1;
    Some(state)
}

/// Restores from a mutated checkpoint: must be absorbed as `restored`
/// or rejected with a typed error — never a panic. Version mutations
/// specifically must come back `bad_checkpoint`.
fn mutated_restore(
    server: &Server,
    rng: &mut SmallRng,
    base: &SessionCheckpoint,
    tally: &mut Tally,
) {
    let mut ckpt = base.clone();
    let kind = rng.gen_range(0..5u32);
    match kind {
        0 => ckpt.version = ckpt.version.wrapping_add(rng.gen_range(1..9u64)),
        1 => {
            let cut = rng.gen_range(0..ckpt.trace_csv.len().max(1));
            while !ckpt.trace_csv.is_char_boundary(cut) {
                ckpt.trace_csv.pop();
            }
            ckpt.trace_csv.truncate(cut);
        }
        2 => {
            for p in &mut ckpt.placements {
                p.x = wild_f64(rng);
            }
        }
        3 => ckpt.quarantined.push((u64::MAX, u64::MAX, rng.gen_range(1..100u64))),
        _ => {
            ckpt.forces = (wild_f64(rng), wild_f64(rng), wild_f64(rng));
            ckpt.scaling.push(("power_used".to_owned(), wild_f64(rng)));
        }
    }
    let resp = fire(
        server,
        &Command::Restore { session: "mutant".to_owned(), state: Some(Box::new(ckpt)) }.encode(),
        tally,
    );
    if kind == 0 {
        assert!(
            matches!(resp, Some(Response::Error { kind: ErrorKind::BadCheckpoint, .. })),
            "version-mutated checkpoint must be rejected as bad_checkpoint, got {resp:?}"
        );
    }
    tally.mutated_restores += 1;
}

fn counter(block: &StatsBlock, name: &str) -> u64 {
    block.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
}

/// Phase 1: seeded in-process chaos with eviction churn and
/// kill–restore–replay, ending in a drain.
fn run_in_process(events: u64, seed: u64, ckpt_dir: &Path) -> Tally {
    let limits = ServerLimits {
        max_sessions: 3, // pool of 6 names → constant eviction churn
        max_relax_steps: 200,
        checkpoint_dir: Some(ckpt_dir.to_path_buf()),
        ..ServerLimits::default()
    };
    let server = Server::with_metrics(limits);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tally = Tally::default();
    let mut captured: Option<SessionCheckpoint> = None;
    while tally.events < events {
        if tally.events % 397 == 0 {
            captured = kill_restore_replay(&server, &mut rng, &mut tally).or(captured);
        } else if tally.events % 397 == 198 {
            if let Some(base) = &captured {
                let base = base.clone();
                mutated_restore(&server, &mut rng, &base, &mut tally);
            }
        } else {
            let line = chaos_line(&mut rng);
            fire(&server, &line, &mut tally);
        }
    }

    // The churn must actually have happened, observably.
    let stats = match fire(&server, &Command::Stats { session: None, reset: false }.encode(), &mut tally) {
        Some(Response::Stats { server: block, .. }) => *block,
        other => panic!("stats failed: {other:?}"),
    };
    assert!(counter(&stats, "server.evictions") > 0, "chaos never evicted a session");
    assert!(counter(&stats, "server.checkpoints") > 0, "chaos never checkpointed");
    assert!(counter(&stats, "server.restores") > 0, "chaos never restored");
    let files = std::fs::read_dir(ckpt_dir).map(|d| d.count()).unwrap_or(0);
    assert!(files > 0, "eviction churn wrote no checkpoint files");

    // Drain: refuses new work, keeps answering observability.
    match fire(&server, &Command::Shutdown.encode(), &mut tally) {
        Some(Response::ShutdownStarted { .. }) => {}
        other => panic!("shutdown failed: {other:?}"),
    }
    let refused = fire(
        &server,
        &Command::Relax { session: POOL[0].to_owned(), steps: 1 }.encode(),
        &mut tally,
    );
    assert!(
        matches!(refused, Some(Response::Error { kind: ErrorKind::Overloaded { .. }, .. })),
        "draining server must shed state changes, got {refused:?}"
    );
    assert!(
        matches!(fire(&server, &Command::Ping.encode(), &mut tally), Some(Response::Pong)),
        "draining server must still answer ping"
    );
    tally
}

/// Phase 2: zero-budget deadlines breach deterministically — every
/// relax and render, every time — while the session stays usable.
fn run_zero_budget(seed: u64) {
    let mut limits = ServerLimits::default();
    limits.deadlines.relax_ms = Some(0);
    limits.deadlines.render_ms = Some(0);
    let server = Server::new(limits);
    let mut tally = Tally::default();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD);
    fire(
        &server,
        &Command::LoadTrace {
            session: "z".to_owned(),
            mode: RecoveryMode::Strict,
            text: valid_csv(0),
            trace: None,
        }
        .encode(),
        &mut tally,
    );
    for _ in 0..200 {
        let cmd = if rng.gen_bool(0.5) {
            Command::Relax { session: "z".to_owned(), steps: rng.gen_range(1..100u64) }
        } else {
            probe_render("z")
        };
        let resp = fire(&server, &cmd.encode(), &mut tally);
        assert!(
            matches!(resp, Some(Response::Error { kind: ErrorKind::DeadlineExceeded, .. })),
            "zero budget must breach every time, got {resp:?}"
        );
        // The session is left at its last consistent revision: an
        // unbudgeted interaction still works.
        let slice = fire(
            &server,
            &Command::SetTimeSlice {
                session: "z".to_owned(),
                start: 0.0,
                end: rng.gen_range(1.0..10.0),
            }
            .encode(),
            &mut tally,
        );
        assert!(matches!(slice, Some(Response::Slice { .. })), "interaction failed: {slice:?}");
    }
}

/// Phase 3: the checked-in golden transcript still reproduces byte for
/// byte on a fresh default-limits server.
fn run_golden() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/data");
    let script =
        std::fs::read_to_string(dir.join("server_session.script")).expect("read script");
    let golden =
        std::fs::read_to_string(dir.join("server_session.golden")).expect("read golden");
    let server = Server::new(ServerLimits::default());
    let mut out = String::new();
    for line in script.lines() {
        if let Some(resp) = server.handle_line(line) {
            out.push_str(&resp);
            out.push('\n');
        }
    }
    assert_eq!(out, golden, "clean-path replay no longer matches the golden transcript");
}

/// The clean TCP client's script: no `sessions`/`stats` (which would
/// observe the chaos sessions), one private session, cache-hitting
/// renders. Returns encoded command lines.
fn clean_script() -> Vec<String> {
    let s = "clean".to_owned();
    let render = probe_render(&s);
    [
        Command::LoadTrace {
            session: s.clone(),
            mode: RecoveryMode::Strict,
            text: valid_csv(3),
            trace: None,
        },
        Command::SetTimeSlice { session: s.clone(), start: 1.0, end: 8.0 },
        Command::Relax { session: s.clone(), steps: 120 },
        Command::Collapse { session: s.clone(), container: "adonis".to_owned() },
        Command::Aggregate {
            session: s.clone(),
            metric: "power_used".to_owned(),
            group: "adonis".to_owned(),
        },
        render.clone(),
        render.clone(), // cache hit
        Command::Expand { session: s.clone(), container: "adonis".to_owned() },
        Command::Drag { session: s.clone(), container: "adonis-1".to_owned(), x: 5.0, y: -5.0 },
        Command::Render {
            session: s.clone(),
            width: 640.0,
            height: 480.0,
            theme: Theme::Dark,
            labels: true,
            zoom: None,
            pan_x: None,
            pan_y: None,
        },
        Command::Checkpoint { session: s.clone() },
        Command::CloseSession { session: s },
    ]
    .iter()
    .map(Command::encode)
    .collect()
}

/// One chaotic TCP connection: garbage frames, torn frames, abrupt
/// hangups, or bursts of valid-but-adversarial commands.
fn chaos_connection(addr: std::net::SocketAddr, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let Ok(mut stream) = TcpStream::connect(addr) else { return };
    match rng.gen_range(0..4u32) {
        0 => {
            // Garbage frames; the server answers each with an error.
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            for _ in 0..rng.gen_range(1..8u32) {
                let line = garbage_line(&mut rng);
                if stream.write_all(format!("{line}\n").as_bytes()).is_err() {
                    return;
                }
                let mut resp = String::new();
                if reader.read_line(&mut resp).is_err() || resp.is_empty() {
                    return;
                }
                Response::decode(resp.trim()).expect("garbage must get a decodable error");
            }
        }
        1 => {
            // Torn frame: bytes with no newline, then hang up.
            let line = chaos_line(&mut rng);
            let cut = line.len().max(2) / 2;
            let _ = stream.write_all(&line.as_bytes()[..cut]);
            let _ = stream.shutdown(Shutdown::Write);
            let mut sink = String::new();
            let _ = BufReader::new(stream).read_line(&mut sink);
        }
        2 => {
            // Connect and slam the door.
            drop(stream);
        }
        _ => {
            // A burst of adversarial protocol traffic on the chaos pool.
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            for _ in 0..rng.gen_range(2..20u32) {
                let line = chaos_line(&mut rng);
                if stream.write_all(format!("{line}\n").as_bytes()).is_err() {
                    return;
                }
                let mut resp = String::new();
                match reader.read_line(&mut resp) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {
                        Response::decode(resp.trim()).expect("chaos must get decodable responses");
                    }
                }
            }
        }
    }
}

/// A slow-loris connection: half a frame, a stall past the server's
/// read timeout, then the rest. The server must cut it loose.
fn loris_connection(addr: std::net::SocketAddr, timeout_ms: u64) {
    let Ok(mut stream) = TcpStream::connect(addr) else { return };
    let _ = stream.write_all(b"{\"cmd\":\"pi");
    std::thread::sleep(Duration::from_millis(timeout_ms + timeout_ms / 2));
    let _ = stream.write_all(b"ng\"}\n");
    let mut sink = String::new();
    let _ = BufReader::new(stream).read_line(&mut sink);
}

/// Builds a seeded live event stream: a structural opener, then a mix
/// of valid samples, hostile lines, and occasional topology growth —
/// every one of which a live session must absorb (live content is a
/// lenient load, so garbage is dropped, never fatal).
fn stream_events(rng: &mut SmallRng, n: usize) -> Vec<String> {
    let mut events = vec![
        "span,0.0,1000.0\n\
         container,1,0,site,grenoble\n\
         container,2,1,cluster,adonis\n\
         container,3,2,host,adonis-1\n\
         container,4,2,host,adonis-2\n\
         metric,0,MFlop/s,power\n\
         metric,1,MFlop/s,power_used\n\
         var,0.0,3,0,100.0\nvar,0.0,4,0,100.0"
            .to_owned(),
    ];
    let mut next_container = 5u32;
    for i in 1..n {
        let t = i as f64;
        let ev = match rng.gen_range(0..8u32) {
            0..=3 => format!(
                "var,{t},{c},{m},{v}",
                c = rng.gen_range(3..next_container.min(5)),
                m = rng.gen_range(0..2u32),
                v = rng.gen_range(0.0..200.0),
            ),
            4 => format!("var,{t},3,1,NaN"), // quarantine fodder
            5 => "complete garbage, not a record".to_owned(),
            6 => format!("var,{t},99,0,1.0"), // unknown container: dropped
            _ => {
                // Topology growth: the structural rebuild slow path.
                let id = next_container;
                next_container += 1;
                format!("container,{id},2,host,hx{id}\nvar,{t},{id},0,50.0")
            }
        };
        events.push(ev);
    }
    events
}

/// A journaled server that took `events[..upto]` as appends 1..=upto.
fn stream_server(dir: &Path, events: &[String], upto: usize, tally: &mut Tally) -> Server {
    let limits = ServerLimits {
        journal_dir: Some(dir.to_path_buf()),
        journal_sync_every: 1, // every ack durable: a kill loses nothing acked
        ..ServerLimits::default()
    };
    let server = Server::new(limits);
    append_range(&server, events, 0, upto, tally);
    server
}

/// Appends `events[from..upto]` (seq = index + 1), asserting every one
/// acks — a live session absorbs hostile payloads, it never refuses
/// them.
fn append_range(server: &Server, events: &[String], from: usize, upto: usize, tally: &mut Tally) {
    for (i, text) in events.iter().enumerate().take(upto).skip(from) {
        let cmd = Command::Append {
            session: "stream".to_owned(),
            seq: (i + 1) as u64,
            text: text.clone(),
        };
        match fire(server, &cmd.encode(), tally) {
            Some(Response::Appended { .. }) => {}
            other => panic!("append seq {} refused: {other:?}", i + 1),
        }
    }
}

/// Asks a recovered server where its stream stands: the typed
/// `seq_gap` names the next expected seq (the duplicate-free resume
/// point); a missing session means nothing survived and the stream
/// restarts at 1.
fn probe_resume_seq(server: &Server, probe_seq: u64, tally: &mut Tally) -> u64 {
    let cmd = Command::Append {
        session: "stream".to_owned(),
        seq: probe_seq,
        text: "# resume probe".to_owned(),
    };
    match fire(server, &cmd.encode(), tally) {
        Some(Response::Error { kind: ErrorKind::SeqGap { expected }, .. }) => expected,
        Some(Response::Error { kind: ErrorKind::NoSession, .. }) => 1,
        other => panic!("resume probe got {other:?}"),
    }
}

/// Phase 4: durable-streaming chaos. One golden uninterrupted run,
/// then three crash scenarios that must all converge back to its
/// exact bytes — kill-mid-append, torn journal tail, random bit flip
/// — plus a slow subscriber that must shed, not block.
fn run_streaming(seed: u64, base_dir: &Path) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00D);
    let mut tally = Tally::default();
    let events = stream_events(&mut rng, 60);
    let probe = probe_render("stream");

    // The uninterrupted reference run.
    let ref_dir = base_dir.join("stream-ref");
    std::fs::create_dir_all(&ref_dir).expect("create ref dir");
    let reference = stream_server(&ref_dir, &events, events.len(), &mut tally);
    let golden_svg = match fire(&reference, &probe.encode(), &mut tally) {
        Some(Response::Frame { svg, .. }) => svg,
        other => panic!("reference render failed: {other:?}"),
    };
    drop(reference);

    // Scenario A: kill mid-append (three random cut points). The
    // restarted server recovers every acked event; the appender
    // resumes from the seq the gap error names; the final render is
    // byte-identical to the uninterrupted run.
    for trial in 0..3u32 {
        let dir = base_dir.join(format!("stream-kill-{trial}"));
        std::fs::create_dir_all(&dir).expect("create kill dir");
        let cut = rng.gen_range(1..events.len());
        drop(stream_server(&dir, &events, cut, &mut tally)); // SIGKILL stand-in
        let limits = ServerLimits {
            journal_dir: Some(dir.clone()),
            journal_sync_every: 1,
            ..ServerLimits::default()
        };
        let revived = Server::new(limits);
        assert_eq!(revived.recover_journals(), vec!["stream".to_owned()]);
        let resume = probe_resume_seq(&revived, events.len() as u64 + 10, &mut tally);
        assert_eq!(resume, cut as u64 + 1, "every acked event must survive the kill");
        append_range(&revived, &events, resume as usize - 1, events.len(), &mut tally);
        match fire(&revived, &probe.encode(), &mut tally) {
            Some(Response::Frame { svg, .. }) => {
                assert_eq!(svg, golden_svg, "kill-mid-append run diverged (cut {cut})");
            }
            other => panic!("revived render failed: {other:?}"),
        }
    }

    // Scenario B: torn tail — half a record that never finished
    // hitting disk. Recovery truncates it; everything acked survives.
    {
        let dir = base_dir.join("stream-torn");
        std::fs::create_dir_all(&dir).expect("create torn dir");
        drop(stream_server(&dir, &events, events.len(), &mut tally));
        let path = dir.join("stream.journal");
        use std::io::Write as _;
        let mut f =
            std::fs::OpenOptions::new().append(true).open(&path).expect("open journal");
        f.write_all(b"v1,999,a-record-that-never-finished").expect("tear tail");
        drop(f);
        let limits = ServerLimits {
            journal_dir: Some(dir),
            journal_sync_every: 1,
            ..ServerLimits::default()
        };
        let revived = Server::new(limits);
        assert_eq!(revived.recover_journals(), vec!["stream".to_owned()]);
        let resume = probe_resume_seq(&revived, events.len() as u64 + 10, &mut tally);
        assert_eq!(resume, events.len() as u64 + 1, "torn tail must not eat acked events");
        match fire(&revived, &probe.encode(), &mut tally) {
            Some(Response::Frame { svg, .. }) => {
                assert_eq!(svg, golden_svg, "torn-tail recovery diverged");
            }
            other => panic!("torn-tail render failed: {other:?}"),
        }
    }

    // Scenario C: a random bit flip anywhere in the journal. The CRC
    // catches it, recovery keeps the longest valid prefix (possibly
    // none), and resending from the probed resume point converges
    // back to the golden bytes.
    for trial in 0..3u32 {
        let dir = base_dir.join(format!("stream-flip-{trial}"));
        std::fs::create_dir_all(&dir).expect("create flip dir");
        drop(stream_server(&dir, &events, events.len(), &mut tally));
        let path = dir.join("stream.journal");
        let mut bytes = std::fs::read(&path).expect("read journal");
        let at = rng.gen_range(0..bytes.len());
        bytes[at] ^= 1 << rng.gen_range(0..8u32);
        std::fs::write(&path, &bytes).expect("write flipped journal");
        let limits = ServerLimits {
            journal_dir: Some(dir),
            journal_sync_every: 1,
            ..ServerLimits::default()
        };
        let revived = Server::new(limits);
        let _ = revived.recover_journals(); // may be empty if the header took the hit
        let resume = probe_resume_seq(&revived, events.len() as u64 + 10, &mut tally);
        assert!(
            resume <= events.len() as u64 + 1,
            "bit flip invented events (resume {resume})"
        );
        append_range(&revived, &events, resume as usize - 1, events.len(), &mut tally);
        match fire(&revived, &probe.encode(), &mut tally) {
            Some(Response::Frame { svg, .. }) => {
                assert_eq!(svg, golden_svg, "bit-flip recovery diverged (byte {at})");
            }
            other => panic!("bit-flip render failed: {other:?}"),
        }
    }

    // Scenario D: a subscriber that never drains. Every append must
    // still ack immediately; the subscriber's bounded queue sheds to
    // one `lagging`, and re-subscribing from its resume point
    // resynchronizes.
    {
        let limits = ServerLimits { subscriber_queue: 4, ..ServerLimits::default() };
        let server = Server::with_metrics(limits);
        let conn = server.open_conn();
        append_range(&server, &events, 0, 1, &mut tally);
        let sub = Command::Subscribe { session: "stream".to_owned(), from_seq: None };
        let resp = server.handle_line_on(Some(conn), &format!("{}\n", sub.encode()));
        assert!(
            matches!(resp.as_deref().map(Response::decode), Some(Ok(Response::Subscribed { .. }))),
            "subscribe failed: {resp:?}"
        );
        append_range(&server, &events, 1, events.len(), &mut tally);
        let pushes = server.take_pushes(conn);
        let lagging = pushes
            .iter()
            .filter_map(|l| viva_server::Push::decode(l).ok())
            .find_map(|p| match p {
                viva_server::Push::Lagging { resume_seq, .. } => Some(resume_seq),
                viva_server::Push::Delta { .. } => None,
            });
        let resume_seq = lagging.expect("a never-draining subscriber must be shed to lagging");
        let resub =
            Command::Subscribe { session: "stream".to_owned(), from_seq: Some(resume_seq) };
        let resp = server.handle_line_on(Some(conn), &format!("{}\n", resub.encode()));
        assert!(
            matches!(resp.as_deref().map(Response::decode), Some(Ok(Response::Subscribed { .. }))),
            "re-subscribe failed: {resp:?}"
        );
        let pushes = server.take_pushes(conn);
        assert!(
            pushes.iter().any(|l| matches!(
                viva_server::Push::decode(l),
                Ok(viva_server::Push::Delta { .. })
            )),
            "re-subscribe must deliver a snapshot delta"
        );
        let stats = match fire(&server, &Command::Stats { session: None, reset: false }.encode(), &mut tally) {
            Some(Response::Stats { server: block, .. }) => *block,
            other => panic!("stream stats failed: {other:?}"),
        };
        assert!(counter(&stats, "server.subscriber_sheds") > 0, "shed was not counted");
        server.close_conn(conn);
    }
}

/// Phase 5: TCP chaos around a clean scripted client, then a graceful
/// drain that the worker pool actually exits on.
fn run_tcp(seed: u64, connections: u64, ckpt_dir: &Path) {
    const IO_TIMEOUT_MS: u64 = 1_000;
    let limits = ServerLimits {
        io_timeout_ms: Some(IO_TIMEOUT_MS),
        checkpoint_dir: Some(ckpt_dir.to_path_buf()),
        ..ServerLimits::default()
    };
    let server = Arc::new(Server::with_metrics(limits));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let workers = viva_server::serve_tcp(listener, 4, Arc::clone(&server));

    // The reference transcript: the same clean script on a fresh
    // default-limits in-process server.
    let script = clean_script();
    let reference: Vec<String> = {
        let reference_server = Server::new(ServerLimits::default());
        script
            .iter()
            .filter_map(|line| reference_server.handle_line(line))
            .collect()
    };

    let clean = {
        let script = script.clone();
        std::thread::spawn(move || -> Vec<String> {
            let mut stream = TcpStream::connect(addr).expect("clean connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut out = Vec::new();
            for line in &script {
                stream.write_all(format!("{line}\n").as_bytes()).expect("clean send");
                let mut resp = String::new();
                let n = reader.read_line(&mut resp).expect("clean recv");
                assert!(n > 0, "server hung up on the clean client");
                out.push(resp.trim_end().to_owned());
            }
            out
        })
    };

    let mut chaos = Vec::new();
    for i in 0..connections {
        chaos.push(std::thread::spawn(move || chaos_connection(addr, seed ^ (i << 8))));
    }

    let transcript = clean.join().expect("clean client");
    assert_eq!(
        transcript, reference,
        "clean client transcript diverged under concurrent chaos"
    );
    for h in chaos {
        h.join().expect("chaos connection thread");
    }

    // Slow-loris after the burst, when workers are idle: the stalled
    // frame must be cut off by the read timeout, not by luck of the
    // accept queue (a queued loris would have its full frame buffered
    // before a worker ever reads it).
    let loris: Vec<_> = (0..2)
        .map(|_| std::thread::spawn(move || loris_connection(addr, IO_TIMEOUT_MS)))
        .collect();
    for h in loris {
        h.join().expect("loris connection thread");
    }

    // Transport hardening was actually exercised, observably; then
    // drain and prove the worker pool exits.
    let mut stream = TcpStream::connect(addr).expect("control connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut send = |line: &str, reader: &mut BufReader<TcpStream>| -> Response {
        stream.write_all(format!("{line}\n").as_bytes()).expect("control send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("control recv");
        Response::decode(resp.trim()).expect("control decode")
    };
    let stats = match send(&Command::Stats { session: None, reset: false }.encode(), &mut reader) {
        Response::Stats { server: block, .. } => *block,
        other => panic!("tcp stats failed: {other:?}"),
    };
    assert!(counter(&stats, "server.torn_frames") > 0, "no torn frame was ever observed");
    assert!(counter(&stats, "server.io_timeouts") > 0, "no slow-loris timeout was observed");
    match send(&Command::Shutdown.encode(), &mut reader) {
        Response::ShutdownStarted { .. } => {}
        other => panic!("tcp shutdown failed: {other:?}"),
    }
    drop(reader);
    for w in workers {
        w.join().expect("worker pool must exit after drain");
    }
}

fn main() {
    let mut events = 10_000u64;
    let mut seed = 42u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--events" => {
                events = it.next().and_then(|v| v.parse().ok()).expect("--events N")
            }
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            other => panic!("unknown argument {other:?} (usage: fuzz_server [--events N] [--seed S])"),
        }
    }

    // Wedge watchdog: the whole run must finish; a hang is a failure,
    // not a timeout for someone else to notice.
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(300));
            if !done.load(Ordering::SeqCst) {
                eprintln!("fuzz_server: WEDGED (watchdog fired after 300s)");
                std::process::exit(3);
            }
        });
    }

    let ckpt_dir = std::env::temp_dir().join(format!("viva_fuzz_server_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");

    println!("fuzz_server: seed {seed}, {events} in-process events");
    let tally = run_in_process(events, seed, &ckpt_dir);
    println!(
        "  in-process: {} events ({} ok, {} errors), {} kill-restore cycles (byte-identical), {} mutated restores",
        tally.events, tally.ok, tally.errors, tally.restore_cycles, tally.mutated_restores
    );
    assert!(tally.ok > 0 && tally.errors > 0, "chaos must exercise both outcomes");
    assert!(tally.restore_cycles > 0, "no kill-restore cycle ran");

    run_zero_budget(seed);
    println!("  zero-budget deadlines: 200/200 deterministic breaches");

    run_golden();
    println!("  clean path: golden transcript reproduced byte-for-byte");

    run_streaming(seed, &ckpt_dir);
    println!(
        "  streaming: 3 kill-mid-append + torn-tail + 3 bit-flip recoveries all byte-identical; \
         slow subscriber shed, appends never blocked"
    );

    let connections = (events / 200).clamp(8, 64);
    run_tcp(seed, connections, &ckpt_dir);
    println!(
        "  tcp: clean transcript byte-identical under {connections} chaos connections + 2 slow-loris; drain joined"
    );

    let _ = std::fs::remove_dir_all(&ckpt_dir);
    done.store(true, Ordering::SeqCst);
    println!("fuzz_server: all phases clean (zero panics, zero wedges)");
}
