//! Observability-overhead benchmark — the cost of watching.
//!
//! `viva-obs` promises to be *zero-cost when disabled* and cheap when
//! enabled: the no-op `Recorder` leaves every layer on its original
//! uninstrumented path, and the enabled recorder adds only relaxed
//! atomic tallies and span timestamps. This harness puts a number on
//! "cheap": the same closed-loop protocol workload as `fig_server`
//! (slice → fresh render → repeat render → aggregate → relax) is
//! driven through [`viva_server::Server::handle_line`] twice — once on
//! a metrics-off server, once on a metrics-on server — and the
//! command throughputs are compared.
//!
//! The loop has **no think time**: think gaps would hide the
//! instrumentation cost we are here to measure. Each configuration
//! runs three times and keeps its best throughput (the conventional
//! guard against scheduler noise in a gate that compares two runs).
//!
//! Three configurations run: metrics off, metrics on, and metrics plus
//! **1-in-16 sampled span tracing** (the `--self-trace` shape). Full
//! mode asserts the metrics-on server keeps at least **95%** of the
//! no-op throughput and the tracing server keeps at least **95%** of
//! the spans-off (metrics-on) throughput — the < 5% regression gates
//! from the design — and writes `BENCH_obs.json`; `--small` keeps the
//! correctness checks — including that the instrumented run really did
//! count its commands and the traced run really did record span trees
//! — but skips timing claims.

use std::time::Instant;

use viva::Theme;
use viva_obs::{Recorder, Tracer};
use viva_server::protocol::{Command, Response};
use viva_server::{Server, ServerLimits};
use viva_trace::{ContainerKind, RecoveryMode, TraceBuilder};

#[derive(Clone, Copy)]
struct Scale {
    clusters: usize,
    hosts: usize,
    steps: usize,
    rounds: usize,
    repeats: usize,
}

const FULL: Scale = Scale { clusters: 4, hosts: 12, steps: 80, rounds: 60, repeats: 6 };
const SMALL: Scale = Scale { clusters: 2, hosts: 3, steps: 10, rounds: 4, repeats: 1 };

/// Same exactly-representable trace family as `fig_server`.
fn trace_csv(s: &Scale) -> String {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    for ci in 0..s.clusters {
        let cluster = b
            .new_container(b.root(), format!("cl{ci}"), ContainerKind::Cluster)
            .expect("cluster");
        for hi in 0..s.hosts {
            let host = b
                .new_container(cluster, format!("cl{ci}-h{hi}"), ContainerKind::Host)
                .expect("host");
            b.set_variable(0.0, host, power, 100.0).expect("power");
            for t in 0..=s.steps {
                let v = (((t + (ci * s.hosts + hi) * 3) % 7) * 10) as f64;
                b.set_variable(t as f64, host, used, v).expect("used");
            }
        }
    }
    viva_trace::export::to_csv(&b.finish(s.steps as f64))
}

/// Drives the closed loop against one server. Returns commands issued.
fn drive(server: &Server, csv: &str, scale: &Scale) -> u64 {
    let mut commands = 0u64;
    let mut send = |cmd: &Command| -> String {
        let line = cmd.encode();
        let resp = server.handle_line(&line).expect("non-blank command line");
        assert!(resp.starts_with("{\"ok\""), "command failed: {line} -> {resp}");
        commands += 1;
        resp
    };
    let session = "bench".to_owned();
    send(&Command::LoadTrace {
        session: session.clone(),
        mode: RecoveryMode::Strict,
        text: csv.to_owned(),
        trace: None,
    });
    send(&Command::Relax { session: session.clone(), steps: 50 });
    let render = Command::Render {
        session: session.clone(),
        width: 800.0,
        height: 600.0,
        theme: Theme::Light,
        labels: false,
        zoom: None,
        pan_x: None,
        pan_y: None,
    };
    for round in 0..scale.rounds {
        let start = (round % scale.steps) as f64;
        send(&Command::SetTimeSlice {
            session: session.clone(),
            start,
            end: start + (scale.steps / 4).max(1) as f64,
        });
        let first = send(&render);
        assert!(first.contains("\"cached\":false"), "expected a fresh render");
        let repeat = send(&render);
        assert!(repeat.contains("\"cached\":true"), "expected a cache hit");
        send(&Command::Aggregate {
            session: session.clone(),
            metric: "power_used".into(),
            group: "cl0".into(),
        });
        send(&Command::Relax { session: session.clone(), steps: 5 });
    }
    commands
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Disabled recorder, disabled tracer: the original hot path.
    Off,
    /// Enabled recorder, spans off.
    Metrics,
    /// Enabled recorder plus a 1-in-16 deterministic sampling tracer.
    Traced,
}

/// One timed replay of the workload on a fresh server in `mode`,
/// returning commands/sec. Verification (counters, span trees) runs
/// outside the timed window.
fn measure_once(mode: Mode, csv: &str, scale: &Scale) -> f64 {
    let server = match mode {
        Mode::Off => Server::new(ServerLimits::default()),
        Mode::Metrics => Server::with_metrics(ServerLimits::default()),
        Mode::Traced => Server::with_observability(
            ServerLimits::default(),
            Recorder::enabled().with_tracer(Tracer::enabled(1, 42, 16)),
        ),
    };
    let t0 = Instant::now();
    let commands = drive(&server, csv, scale);
    let wall = t0.elapsed().as_secs_f64();
    if mode != Mode::Off {
        check_counts(&server, commands);
    }
    if mode == Mode::Traced {
        check_spans(&server);
    }
    commands as f64 / wall.max(1e-9)
}

/// Best-of-`repeats` for all three modes, repeats interleaved
/// round-robin (Off, Metrics, Traced, Off, …) after one untimed
/// warmup — sequential per-mode blocks would let thermal and
/// scheduler drift masquerade as instrumentation overhead.
fn measure_all(csv: &str, scale: &Scale) -> (f64, f64, f64) {
    let _ = measure_once(Mode::Off, csv, scale);
    let mut best = [0.0f64; 3];
    for _ in 0..scale.repeats {
        for (i, mode) in [Mode::Off, Mode::Metrics, Mode::Traced].into_iter().enumerate() {
            best[i] = best[i].max(measure_once(mode, csv, scale));
        }
    }
    (best[0], best[1], best[2])
}

/// The traced run must have actually recorded span trees — with 1-in-16
/// sampling over hundreds of commands, an empty ring means the tracer
/// was never wired, and the "overhead" being measured is of nothing.
fn check_spans(server: &Server) {
    let (spans, _dropped) = server.tracer().finished_spans();
    assert!(!spans.is_empty(), "sampled tracer recorded no spans");
    assert!(
        spans.iter().any(|s| s.parent != viva_obs::SpanId::NONE),
        "span trees have no phase children"
    );
    match server.execute(Command::Spans { session: None, limit: Some(4) }) {
        Response::Spans { spans, .. } => {
            assert!(!spans.is_empty(), "the spans command answered empty")
        }
        other => panic!("spans failed: {other:?}"),
    }
}

/// The instrumented run must have actually counted what it served —
/// otherwise the "overhead" being measured is of nothing.
fn check_counts(server: &Server, commands: u64) {
    match server.execute(Command::Stats { session: Some("bench".into()), reset: false }) {
        Response::Stats { server: block, session: Some(sess), .. } => {
            let total: u64 = block
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("server.cmd."))
                .map(|(_, v)| *v)
                .sum();
            // +1: the stats command counts itself.
            assert_eq!(total, commands + 1, "per-command counters disagree");
            let hits = sess
                .stats
                .counters
                .iter()
                .find(|(n, _)| n == "cache.hits")
                .map(|(_, v)| *v);
            assert!(hits.is_some_and(|h| h > 0), "cache hits were not tallied");
        }
        other => panic!("stats failed: {other:?}"),
    }
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = if small { SMALL } else { FULL };
    let csv = trace_csv(&scale);
    println!(
        "Obs overhead: {} hosts, {} rounds, best of {} ({} mode)",
        scale.clusters * scale.hosts,
        scale.rounds,
        scale.repeats,
        if small { "smoke" } else { "full" }
    );

    let (noop, instrumented, traced) = measure_all(&csv, &scale);
    let ratio = instrumented / noop.max(1e-9);
    let traced_ratio = traced / instrumented.max(1e-9);
    println!("  metrics off:     {noop:>8.0} cmd/s");
    println!("  metrics on:      {instrumented:>8.0} cmd/s  ({:.1}% of no-op)", ratio * 100.0);
    println!(
        "  + tracing 1/16:  {traced:>8.0} cmd/s  ({:.1}% of spans-off)",
        traced_ratio * 100.0
    );

    if small {
        println!("  smoke mode: counters and span trees verified, overhead not asserted");
        return;
    }

    assert!(
        ratio >= 0.95,
        "instrumentation costs more than 5% of throughput ({:.1}%)",
        (1.0 - ratio) * 100.0
    );
    assert!(
        traced_ratio >= 0.95,
        "sampled tracing costs more than 5% of the spans-off throughput ({:.1}%)",
        (1.0 - traced_ratio) * 100.0
    );

    let mut json = String::from("{\n  \"benchmark\": \"obs\",\n");
    json.push_str(&format!(
        "  \"trace\": {{ \"hosts\": {}, \"rounds\": {}, \"repeats\": {} }},\n",
        scale.clusters * scale.hosts,
        scale.rounds,
        scale.repeats
    ));
    json.push_str(&format!(
        "  \"noop_commands_per_sec\": {noop:.0},\n  \"instrumented_commands_per_sec\": {instrumented:.0},\n  \"traced_commands_per_sec\": {traced:.0},\n  \"throughput_ratio\": {ratio:.4},\n  \"traced_ratio\": {traced_ratio:.4},\n  \"gate\": \"ratio >= 0.95 && traced_ratio >= 0.95\"\n}}\n"
    ));
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("  [json] BENCH_obs.json");
}
