//! Resilience benchmark — what admission control buys under overload.
//!
//! The serving layer's overload promise (DESIGN.md §14) is *shed, don't
//! queue*: past `max_inflight_commands`, excess work is refused
//! immediately with a typed `overloaded` error and a retry hint, so
//! the commands that *are* admitted keep near-unloaded latency instead
//! of everyone sliding into a queueing collapse together.
//!
//! This harness drives the server in-process (no socket noise) with
//! closed-loop clients, one private session each:
//!
//! 1. **unloaded** — a single client, to establish the baseline render
//!    p50/p99;
//! 2. **2× offered load** — `2 × max_inflight` concurrent clients
//!    hammering with zero think time. Clients honour the server's
//!    `retry_after_ms` hint. Measured: the shed rate (must be
//!    non-zero: the gate is real) and the latency of *admitted*
//!    commands (p99 must stay ≤ 2× the unloaded p99: the gate
//!    protects the admitted);
//! 3. **restore latency** — the checkpoint→restore round-trip on the
//!    same trace, since recovery time bounds how fast a crashed or
//!    drained server is back in business.
//!
//! Full mode asserts the two claims and writes `BENCH_resilience.json`;
//! `--small` keeps the behaviour checks (some sheds under overload,
//! zero sheds unloaded, restore works) but skips timing claims and
//! leaves the committed JSON alone.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use viva::Theme;
use viva_server::{Command, ErrorKind, Response, Server, ServerLimits};
use viva_trace::{ContainerKind, RecoveryMode, TraceBuilder};

#[derive(Clone, Copy)]
struct Scale {
    clusters: usize,
    hosts: usize,
    steps: usize,
    rounds: usize,
    max_inflight: usize,
    restore_reps: usize,
    /// Closed-loop think time between rounds, milliseconds. Non-zero
    /// matters twice over: it models interactive analysts, and it keeps
    /// a co-located client from timeslicing against the server on a
    /// small host (a zero-think loop measures the OS scheduler, not
    /// admission control).
    think_ms: u64,
}

const FULL: Scale = Scale {
    clusters: 16,
    hosts: 16,
    steps: 40,
    rounds: 1200,
    max_inflight: 0,
    restore_reps: 10,
    think_ms: 2,
};
const SMALL: Scale = Scale {
    clusters: 2,
    hosts: 3,
    steps: 10,
    rounds: 8,
    max_inflight: 0,
    restore_reps: 2,
    think_ms: 1,
};

/// The in-flight gate, sized to the hardware like a deployment would
/// size it: admitted work should match available parallelism, nothing
/// beyond it (capped so the full run stays comparable across hosts).
fn gate_width() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4)
}

/// The benchmark trace, as CSV interchange text (exactly representable
/// values, deterministic responses).
fn trace_csv(s: &Scale) -> String {
    let mut b = TraceBuilder::new();
    let power = b.metric("power", "MFlop/s");
    let used = b.metric("power_used", "MFlop/s");
    for ci in 0..s.clusters {
        let cluster = b
            .new_container(b.root(), format!("cl{ci}"), ContainerKind::Cluster)
            .expect("cluster");
        for hi in 0..s.hosts {
            let host = b
                .new_container(cluster, format!("cl{ci}-h{hi}"), ContainerKind::Host)
                .expect("host");
            b.set_variable(0.0, host, power, 100.0).expect("power");
            for t in 0..=s.steps {
                let v = (((t + (ci * s.hosts + hi) * 3) % 7) * 10) as f64;
                b.set_variable(t as f64, host, used, v).expect("used");
            }
        }
    }
    viva_trace::export::to_csv(&b.finish(s.steps as f64))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// An admitted attempt's latency; shed attempts are retried after the
/// server's hint and the retry timed on its own (the shed path is the
/// fast path by design — timing it would flatter the numbers). Sheds
/// observed along the way are counted into `sheds`.
fn admitted(server: &Server, cmd: &Command, sheds: &mut u64) -> (String, f64) {
    let line = cmd.encode();
    loop {
        let t0 = Instant::now();
        let resp = server.handle_line(&line).expect("non-blank command");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        // Only shed responses are decoded: fully parsing every
        // megabyte frame response would burn client-side CPU that,
        // on a small host, competes with the very server work this
        // harness is timing. Shed lines are short.
        if !resp.starts_with("{\"err\":\"overloaded\"") {
            return (resp, ms);
        }
        match Response::decode(&resp) {
            Ok(Response::Error { kind: ErrorKind::Overloaded { retry_after_ms }, .. }) => {
                *sheds += 1;
                std::thread::sleep(std::time::Duration::from_millis(retry_after_ms.max(1)));
            }
            other => panic!("malformed shed response: {other:?}"),
        }
    }
}

/// Creates one client's session: load the trace and settle the layout.
/// Run sequentially before the measured phase — every real benchmark
/// excludes setup from its measurement window, and here the exclusion
/// also matters for fidelity: a megabyte `load_trace` line re-submitted
/// by shed clients would burn un-gated parse CPU that a steady-state
/// interactive fleet never generates.
fn setup(server: &Server, name: &str, csv: &str) {
    let mut sheds = 0u64;
    let (resp, _) = admitted(
        server,
        &Command::LoadTrace {
            session: name.to_owned(),
            mode: RecoveryMode::Strict,
            text: csv.to_owned(),
            trace: None,
        },
        &mut sheds,
    );
    assert!(resp.starts_with("{\"ok\""), "load failed: {resp}");
    admitted(server, &Command::Relax { session: name.to_owned(), steps: 50 }, &mut sheds);
    assert_eq!(sheds, 0, "sequential setup must never contend with itself");
}

/// One closed-loop client on its pre-loaded session: per round, slide
/// the slice (cache-busting) and render, retrying shed attempts after
/// the server's `retry_after_ms` hint. Returns (admitted render
/// latencies in ms, admitted slice latencies in ms, sheds observed).
fn drive(server: &Server, name: &str, scale: &Scale) -> (Vec<f64>, Vec<f64>, u64) {
    let mut sheds = 0u64;
    let mut renders = Vec::with_capacity(scale.rounds);
    let mut slices = Vec::with_capacity(scale.rounds);
    for round in 0..scale.rounds {
        let start = (round % scale.steps) as f64;
        let (_, slice_ms) = admitted(
            server,
            &Command::SetTimeSlice {
                session: name.to_owned(),
                start,
                end: start + (scale.steps / 4).max(1) as f64,
            },
            &mut sheds,
        );
        slices.push(slice_ms);
        let (resp, ms) = admitted(
            server,
            &Command::Render {
                session: name.to_owned(),
                width: 800.0,
                height: 600.0,
                theme: Theme::Light,
                labels: false,
                zoom: None,
                pan_x: None,
                pan_y: None,
            },
            &mut sheds,
        );
        assert!(resp.starts_with("{\"ok\""), "render failed: {resp}");
        renders.push(ms);
        if scale.think_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(scale.think_ms));
        }
    }
    (renders, slices, sheds)
}

struct LoadResult {
    clients: usize,
    p50_ms: f64,
    p99_ms: f64,
    /// Median admitted `set_time_slice` latency: with the median
    /// render, the per-round service demand used to size offered load.
    slice_p50_ms: f64,
    sheds: u64,
    attempts: u64,
    /// The worst ten latencies, for `FIG_RESILIENCE_DEBUG` output.
    tail: Vec<f64>,
}

/// Runs `clients` concurrent closed-loop clients against a fresh
/// server gated at `scale.max_inflight` in-flight commands.
/// `rounds_per_client` overrides the scale's rounds so the unloaded
/// and overloaded phases collect the same total sample count — a p99
/// over fewer samples would dodge the rare scheduler stalls the
/// larger phase is guaranteed to catch, skewing the ratio.
fn run(clients: usize, rounds_per_client: usize, csv: &str, scale: &Scale) -> LoadResult {
    let scale = &Scale { rounds: rounds_per_client, ..*scale };
    let limits = ServerLimits {
        max_inflight_commands: scale.max_inflight,
        // A tight hint keeps retry spins productive in a benchmark;
        // production defaults are coarser.
        overload_retry_after_ms: 1,
        ..ServerLimits::default()
    };
    let server = Arc::new(Server::new(limits));
    // Sessions are created sequentially before any client thread
    // starts; the barrier then releases all measured loops at once.
    for i in 0..clients {
        setup(&server, &format!("load-{i}"), csv);
    }
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for i in 0..clients {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        let s = *scale;
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            drive(&server, &format!("load-{i}"), &s)
        }));
    }
    let mut latencies = Vec::new();
    let mut slices = Vec::new();
    let mut sheds = 0u64;
    for h in handles {
        let (l, sl, s) = h.join().expect("client thread");
        sheds += s;
        latencies.extend(l);
        slices.extend(sl);
    }
    let attempts = (latencies.len() + slices.len()) as u64 + sheds;
    latencies.sort_by(|a, b| a.total_cmp(b));
    slices.sort_by(|a, b| a.total_cmp(b));
    LoadResult {
        clients,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        slice_p50_ms: percentile(&slices, 50.0),
        sheds,
        attempts,
        tail: latencies.iter().rev().take(10).copied().collect(),
    }
}

/// Deterministic overload, independent of core count: one long relax
/// occupies the whole gate of a `max_inflight = 1` server while pings
/// keep arriving — 2× offered load over the gate, by construction.
/// Returns (pings shed while the gate was full, pings answered).
fn run_shed_probe(csv: &str) -> (u64, u64) {
    let limits = ServerLimits {
        max_inflight_commands: 1,
        overload_retry_after_ms: 1,
        ..ServerLimits::default()
    };
    let server = Arc::new(Server::new(limits));
    let load = Command::LoadTrace {
        session: "probe".to_owned(),
        mode: RecoveryMode::Strict,
        text: csv.to_owned(),
        trace: None,
    };
    let resp = server.handle_line(&load.encode()).expect("non-blank command");
    assert!(resp.starts_with("{\"ok\""), "probe load failed: {resp}");
    let blocker = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let relax = Command::Relax { session: "probe".to_owned(), steps: 20_000 };
            server.handle_line(&relax.encode()).expect("non-blank command")
        })
    };
    let mut sheds = 0u64;
    let mut answered = 0u64;
    let deadline = Instant::now() + std::time::Duration::from_secs(10);
    while !blocker.is_finished() && Instant::now() < deadline {
        let resp = server.handle_line("{\"cmd\":\"ping\"}").expect("non-blank command");
        match Response::decode(&resp).expect("decodable response") {
            Response::Error { kind: ErrorKind::Overloaded { .. }, .. } => sheds += 1,
            Response::Error { .. } => panic!("unexpected error: {resp}"),
            _ => answered += 1,
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let relax_resp = blocker.join().expect("blocker thread");
    assert!(relax_resp.starts_with("{\"ok\""), "blocker relax failed: {relax_resp}");
    (sheds, answered)
}

/// Times the checkpoint→restore round-trip: the recovery path a
/// drained or crashed server replays on the way back up.
fn run_restore(csv: &str, scale: &Scale) -> (f64, f64) {
    let server = Server::new(ServerLimits::default());
    let send = |cmd: &Command| -> Response {
        let resp = server.handle_line(&cmd.encode()).expect("non-blank command");
        Response::decode(&resp).expect("decodable response")
    };
    send(&Command::LoadTrace {
        session: "r".to_owned(),
        mode: RecoveryMode::Strict,
        text: csv.to_owned(),
        trace: None,
    });
    send(&Command::Relax { session: "r".to_owned(), steps: 50 });
    let state = match send(&Command::Checkpoint { session: "r".to_owned() }) {
        Response::Checkpointed { state, .. } => state,
        other => panic!("checkpoint failed: {other:?}"),
    };
    let mut times = Vec::with_capacity(scale.restore_reps);
    for _ in 0..scale.restore_reps {
        let t0 = Instant::now();
        let resp = send(&Command::Restore { session: "r".to_owned(), state: Some(state.clone()) });
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        assert!(matches!(resp, Response::Restored { .. }), "restore failed: {resp:?}");
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (percentile(&times, 50.0), percentile(&times, 99.0))
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let scale = Scale { max_inflight: gate_width(), ..if small { SMALL } else { FULL } };
    let csv = trace_csv(&scale);
    println!(
        "Resilience: {} hosts, {} rounds/client, gate {} in-flight, think {} ms ({} mode)",
        scale.clusters * scale.hosts,
        scale.rounds,
        scale.max_inflight,
        scale.think_ms,
        if small { "smoke" } else { "full" }
    );

    let unloaded = run(1, scale.rounds, &csv, &scale);
    println!(
        "  unloaded   (1 client):   render p50 {:.3} ms  p99 {:.3} ms  sheds {}",
        unloaded.p50_ms, unloaded.p99_ms, unloaded.sheds
    );
    if std::env::var_os("FIG_RESILIENCE_DEBUG").is_some() {
        println!("    debug tail: {:?}", &unloaded.tail);
    }
    assert_eq!(unloaded.sheds, 0, "a lone client must never be shed");

    // Size the fleet for 2× offered load: each closed-loop client
    // demands service/(service+think) of one gate slot, measured from
    // the unloaded medians.
    let service_ms = (unloaded.slice_p50_ms + unloaded.p50_ms).max(0.01);
    let per_client = service_ms / (service_ms + scale.think_ms as f64);
    let target = 2.0 * scale.max_inflight as f64;
    let overload_clients = ((target / per_client).ceil() as usize).clamp(2, 24);
    let offered = overload_clients as f64 * per_client / scale.max_inflight as f64;

    // Same total sample count as the unloaded phase: a p99 over fewer
    // samples would dodge the rare host-level stalls the larger phase
    // is certain to catch, skewing the ratio.
    let overloaded = run(
        overload_clients,
        (scale.rounds / overload_clients).max(8),
        &csv,
        &scale,
    );
    if std::env::var_os("FIG_RESILIENCE_DEBUG").is_some() {
        println!("    debug tail: {:?}", &overloaded.tail);
    }
    let shed_rate = overloaded.sheds as f64 / overloaded.attempts.max(1) as f64;
    println!(
        "  overloaded ({} clients, {:.1}x offered): render p50 {:.3} ms  p99 {:.3} ms  sheds {} ({:.1}% of attempts)",
        overloaded.clients,
        offered,
        overloaded.p50_ms,
        overloaded.p99_ms,
        overloaded.sheds,
        shed_rate * 100.0
    );
    // The gate itself, demonstrated deterministically: a relax that
    // fills a 1-wide gate while pings keep arriving. (The concurrent
    // run above may or may not shed on a single-core host — threads
    // with microsecond commands barely overlap there.)
    let (probe_sheds, probe_answered) = run_shed_probe(&csv);
    println!(
        "  shed probe (gate full): {probe_sheds} pings shed with overloaded, {probe_answered} answered around it"
    );
    assert!(probe_sheds > 0, "a full gate must shed concurrent offered load");

    let (restore_p50, restore_p99) = run_restore(&csv, &scale);
    println!("  restore: p50 {restore_p50:.3} ms  p99 {restore_p99:.3} ms");

    if small {
        println!("  smoke mode: shed/no-shed checks passed, timings not asserted");
        return;
    }

    let ratio = overloaded.p99_ms / unloaded.p99_ms.max(1e-9);
    println!("  admitted p99 under 2x load: {ratio:.2}x unloaded");
    assert!(
        ratio <= 2.0,
        "admission control must hold admitted p99 within 2x unloaded (got {ratio:.2}x)"
    );

    let mut json = String::from("{\n  \"benchmark\": \"resilience\",\n");
    json.push_str(&format!(
        "  \"trace\": {{ \"hosts\": {}, \"samples_per_phase\": {}, \"think_ms\": {} }},\n",
        scale.clusters * scale.hosts,
        scale.rounds,
        scale.think_ms
    ));
    json.push_str(&format!(
        "  \"gate\": {{ \"max_inflight\": {}, \"offered_multiplier\": {offered:.2} }},\n",
        scale.max_inflight
    ));
    json.push_str(&format!(
        "  \"unloaded\": {{ \"render_p50_ms\": {:.3}, \"render_p99_ms\": {:.3} }},\n",
        unloaded.p50_ms, unloaded.p99_ms
    ));
    json.push_str(&format!(
        "  \"overloaded\": {{ \"clients\": {}, \"admitted_p50_ms\": {:.3}, \"admitted_p99_ms\": {:.3}, \"shed_rate\": {:.4}, \"p99_vs_unloaded\": {:.2} }},\n",
        overloaded.clients, overloaded.p50_ms, overloaded.p99_ms, shed_rate, ratio
    ));
    json.push_str(&format!(
        "  \"shed_probe\": {{ \"sheds\": {probe_sheds}, \"answered\": {probe_answered} }},\n"
    ));
    json.push_str(&format!(
        "  \"restore\": {{ \"p50_ms\": {restore_p50:.3}, \"p99_ms\": {restore_p99:.3} }}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_resilience.json", &json).expect("write BENCH_resilience.json");
    println!("  [json] BENCH_resilience.json");
}
