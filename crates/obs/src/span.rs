//! Causal span tracing: who called what, and where the time went.
//!
//! Counters and histograms (the rest of `viva-obs`) answer "how many"
//! and "how long on average"; they cannot answer *"where did this one
//! slow `render` spend its time?"*. That question needs parent-linked
//! spans — the aggregate-driven trace model of Anand et al. — and this
//! module supplies them with the same discipline as the rest of the
//! crate:
//!
//! * **Zero cost when disabled.** [`Tracer::disabled`] is a `None`
//!   inner; every operation is a single `Option` branch — no clock
//!   read, no thread-local access, no allocation. The serving layer's
//!   byte-identical-transcript promise survives untouched.
//! * **Lock-light when enabled.** Each shard worker owns a bounded
//!   ring ([`SPAN_CAPACITY`] records) behind its own mutex; a span
//!   touches only its shard's ring, and only once, at drop.
//! * **Deterministic head-sampling.** The keep/drop decision is made
//!   once per root span from a seeded hash of the root's arrival index
//!   ([`sample_one_in`]) — never from wall time — so two replays of
//!   the same script with the same seed sample the same trees.
//! * **Two clocks per span.** Wall time in nanoseconds (for real
//!   profiling: `viva-server-client --profile`) *and* a logical tick
//!   pair (for deterministic artifacts: the `--self-trace` export that
//!   viva renders of itself). Ticks advance only on sampled span
//!   start/end, so they are as reproducible as the sampling decision.
//!
//! Propagation is thread-local by default: a live root parks its
//! [`TraceCtx`] in a thread-local slot and [`Tracer::phase`] creates
//! children of whatever is current, which lets deep layers (trace
//! loading, aggregation, layout, LoD, SVG) emit phase spans without
//! threading a context through every signature. When work hops shard
//! workers, carry the [`TraceCtx`] explicitly and reattach with
//! [`Tracer::child_of`] — the records still share one `trace_id`, so
//! one pipelined batch yields one coherent tree per command.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Capacity of each per-shard span ring; once full, the oldest records
/// are dropped (and counted) — recent history wins, like the event log.
pub const SPAN_CAPACITY: usize = 4096;

/// Identity of one span within its tracer. `0` means "none" and is
/// never allocated to a real span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null id: no span.
    pub const NONE: SpanId = SpanId(0);
}

/// Propagation context: everything a child span needs to join its
/// parent's tree from another thread. Copy it across the hop and
/// reattach with [`Tracer::child_of`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Tree identity; `0` means unsampled/none, and children of an
    /// unsampled context are no-ops.
    pub trace_id: u64,
    /// The span to parent new children under.
    pub span_id: SpanId,
}

impl TraceCtx {
    /// The empty context: not sampled, parents nothing.
    pub const NONE: TraceCtx = TraceCtx { trace_id: 0, span_id: SpanId::NONE };

    /// Whether spans created under this context will be recorded.
    pub fn is_sampled(&self) -> bool {
        self.trace_id != 0
    }
}

/// One finished span, as read back by [`Tracer::finished_spans`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Tree identity (equals the sampled root's arrival index + 1).
    pub trace_id: u64,
    /// This span's id; unique within the tracer, allocated at start,
    /// so parents always have smaller ids than their children.
    pub id: SpanId,
    /// Parent span id; [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Static phase name (e.g. `"render"`, `"svg.encode"`).
    pub name: &'static str,
    /// Free-form annotation — the session name on command roots, empty
    /// on most phase spans.
    pub detail: String,
    /// The shard worker the span ran on.
    pub shard: u16,
    /// Logical tick at start (deterministic under a fixed seed).
    pub start_tick: u64,
    /// Logical tick at end; always `> start_tick`.
    pub end_tick: u64,
    /// Wall-clock start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Wall-clock end, nanoseconds since the tracer's epoch.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Wall-clock duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Logical duration in ticks: 1 + the number of sampled span
    /// starts/ends nested inside — a deterministic proxy for "work".
    pub fn duration_ticks(&self) -> u64 {
        self.end_tick.saturating_sub(self.start_tick)
    }
}

/// The deterministic head-sampling predicate: keep root `index` iff the
/// seeded splitmix64 hash of its arrival index lands in residue 0 mod
/// `n`. `n = 0` and `n = 1` both mean "keep everything"; the hash (not
/// `index % n`) is what keeps periodic workloads from beating against
/// the sampling period.
pub fn sample_one_in(seed: u64, index: u64, n: u64) -> bool {
    if n <= 1 {
        return true;
    }
    // splitmix64 finalizer — dependency-free, platform-independent.
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z.is_multiple_of(n)
}

#[derive(Debug, Default)]
struct ShardRing {
    buf: VecDeque<SpanRecord>,
    dropped: u64,
}

impl ShardRing {
    fn push(&mut self, rec: SpanRecord) {
        if self.buf.len() == SPAN_CAPACITY {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

#[derive(Debug)]
struct TracerInner {
    seed: u64,
    sample_n: u64,
    epoch: Instant,
    /// Logical clock; advances on every sampled span start and end.
    clock: AtomicU64,
    /// Root arrival counter — feeds the sampling decision and trace ids.
    roots: AtomicU64,
    /// Span-id allocator; starts at 1 so 0 stays "none".
    next_span: AtomicU64,
    shards: Vec<Mutex<ShardRing>>,
}

thread_local! {
    /// The span currently live on this thread (the implicit parent for
    /// [`Tracer::phase`]), plus the shard it runs on.
    static CURRENT: Cell<(TraceCtx, u16)> = const { Cell::new((TraceCtx::NONE, 0)) };
}

/// The span sink: cheap to clone, shared by every layer that emits
/// spans. Like [`crate::Recorder`], its default state is disabled and
/// every operation on a disabled tracer is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A live tracer with `shards` independent rings, sampling one root
    /// trace in `sample_n` (seeded, deterministic — see
    /// [`sample_one_in`]).
    pub fn enabled(shards: usize, seed: u64, sample_n: u64) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                seed,
                sample_n,
                epoch: Instant::now(),
                clock: AtomicU64::new(0),
                roots: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                shards: (0..shards.max(1)).map(|_| Mutex::new(ShardRing::default())).collect(),
            })),
        }
    }

    /// The no-op tracer (same as `Default`).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of shard rings (0 when disabled).
    pub fn shard_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.shards.len())
    }

    /// Current logical clock value (0 when disabled).
    pub fn clock(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.load(Ordering::Relaxed))
    }

    /// Start a root span for a new causal tree on `shard`. The sampling
    /// decision happens here — an unsampled root (and every descendant)
    /// costs one atomic increment and records nothing.
    pub fn root(&self, shard: u16, name: &'static str, detail: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::noop();
        };
        let index = inner.roots.fetch_add(1, Ordering::Relaxed);
        if !sample_one_in(inner.seed, index, inner.sample_n) {
            return SpanGuard::noop();
        }
        let trace_id = index + 1;
        self.start_live(inner, trace_id, SpanId::NONE, shard, name, detail.to_string())
    }

    /// Child of the thread-current span: the workhorse for deep layers
    /// (loader, aggregation, layout, LoD, SVG) that should not thread a
    /// context through every signature. No current span — or an
    /// unsampled one — means a no-op guard.
    pub fn phase(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::noop();
        };
        let (ctx, shard) = CURRENT.get();
        if !ctx.is_sampled() {
            return SpanGuard::noop();
        }
        self.start_live(inner, ctx.trace_id, ctx.span_id, shard, name, String::new())
    }

    /// Child of an explicit context — cross-thread propagation. Use
    /// when a command's work hops to another shard worker (subscriber
    /// pushes, parallel layout): the records keep the originating
    /// `trace_id`, so the tree stays whole.
    pub fn child_of(&self, ctx: TraceCtx, shard: u16, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::noop();
        };
        if !ctx.is_sampled() {
            return SpanGuard::noop();
        }
        self.start_live(inner, ctx.trace_id, ctx.span_id, shard, name, String::new())
    }

    /// Record an already-finished phase under the thread-current span —
    /// for work measured *before* its tree could exist (frame decode
    /// runs before the command's root span can be named). The tick pair
    /// is allocated at record time, so it nests as a leaf inside the
    /// current span; the wall interval is back-dated by `duration`.
    pub fn phase_completed(&self, name: &'static str, duration: std::time::Duration) {
        let Some(inner) = &self.inner else {
            return;
        };
        let (ctx, shard) = CURRENT.get();
        if !ctx.is_sampled() {
            return;
        }
        let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
        let start_tick = inner.clock.fetch_add(1, Ordering::Relaxed);
        let end_tick = inner.clock.fetch_add(1, Ordering::Relaxed);
        let end_ns = inner.epoch.elapsed().as_nanos() as u64;
        let start_ns = end_ns.saturating_sub(duration.as_nanos() as u64);
        let slot = shard as usize % inner.shards.len();
        inner.shards[slot].lock().unwrap().push(SpanRecord {
            trace_id: ctx.trace_id,
            id,
            parent: ctx.span_id,
            name,
            detail: String::new(),
            shard,
            start_tick,
            end_tick,
            start_ns,
            end_ns,
        });
    }

    /// The thread-current context ([`TraceCtx::NONE`] when disabled or
    /// outside any sampled span). Capture before handing work to
    /// another thread, then reattach there with [`Tracer::child_of`].
    pub fn current(&self) -> TraceCtx {
        if self.inner.is_none() {
            return TraceCtx::NONE;
        }
        CURRENT.get().0
    }

    fn start_live(
        &self,
        inner: &Arc<TracerInner>,
        trace_id: u64,
        parent: SpanId,
        shard: u16,
        name: &'static str,
        detail: String,
    ) -> SpanGuard {
        let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
        let start_tick = inner.clock.fetch_add(1, Ordering::Relaxed);
        let start_ns = inner.epoch.elapsed().as_nanos() as u64;
        let prev = CURRENT.replace((TraceCtx { trace_id, span_id: id }, shard));
        SpanGuard {
            live: Some(LiveSpan {
                inner: Arc::clone(inner),
                trace_id,
                id,
                parent,
                name,
                detail,
                shard,
                start_tick,
                start_ns,
                prev,
            }),
        }
    }

    /// A deterministic copy of every finished span: shards in index
    /// order, each ring oldest-first (rings are push-ordered by span
    /// *end*). Also returns the total number of records dropped to ring
    /// bounds, so exporters can say what they did not see.
    pub fn finished_spans(&self) -> (Vec<SpanRecord>, u64) {
        let Some(inner) = &self.inner else {
            return (Vec::new(), 0);
        };
        let mut out = Vec::new();
        let mut dropped = 0u64;
        for shard in &inner.shards {
            let ring = shard.lock().unwrap();
            out.extend(ring.buf.iter().cloned());
            dropped += ring.dropped;
        }
        (out, dropped)
    }
}

#[derive(Debug)]
struct LiveSpan {
    inner: Arc<TracerInner>,
    trace_id: u64,
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    detail: String,
    shard: u16,
    start_tick: u64,
    start_ns: u64,
    /// Thread-local (context, shard) to restore when this span ends.
    prev: (TraceCtx, u16),
}

/// RAII span: finishes (stamps end tick + end ns, pushes its record
/// into its shard's ring, restores the thread-current context) on drop.
/// Guards from disabled tracers or unsampled trees hold nothing and do
/// nothing.
#[derive(Debug, Default)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// The do-nothing guard.
    pub fn noop() -> SpanGuard {
        SpanGuard { live: None }
    }

    /// Whether this span is actually recording.
    pub fn is_sampled(&self) -> bool {
        self.live.is_some()
    }

    /// This span's propagation context ([`TraceCtx::NONE`] when not
    /// sampled) — hand it to another thread with [`Tracer::child_of`].
    pub fn ctx(&self) -> TraceCtx {
        self.live
            .as_ref()
            .map_or(TraceCtx::NONE, |l| TraceCtx { trace_id: l.trace_id, span_id: l.id })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let end_tick = live.inner.clock.fetch_add(1, Ordering::Relaxed);
        let end_ns = live.inner.epoch.elapsed().as_nanos() as u64;
        CURRENT.set(live.prev);
        let shard = live.shard as usize % live.inner.shards.len();
        live.inner.shards[shard].lock().unwrap().push(SpanRecord {
            trace_id: live.trace_id,
            id: live.id,
            parent: live.parent,
            name: live.name,
            detail: live.detail,
            shard: live.shard,
            start_tick: live.start_tick,
            end_tick,
            start_ns: live.start_ns,
            end_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.shard_count(), 0);
        assert_eq!(t.clock(), 0);
        let root = t.root(0, "cmd", "sess");
        assert!(!root.is_sampled());
        assert_eq!(root.ctx(), TraceCtx::NONE);
        drop(t.phase("inner"));
        drop(root);
        assert_eq!(t.finished_spans().0.len(), 0);
        assert_eq!(t.current(), TraceCtx::NONE);
    }

    #[test]
    fn spans_nest_and_link_parents() {
        let t = Tracer::enabled(1, 7, 1);
        {
            let root = t.root(0, "render", "demo");
            assert!(root.is_sampled());
            {
                let a = t.phase("layout.step");
                assert_eq!(a.ctx().trace_id, root.ctx().trace_id);
                let b = t.phase("lod.cut");
                assert_eq!(t.current().span_id, b.ctx().span_id);
            }
            assert_eq!(t.current().span_id, root.ctx().span_id, "children restore parent");
        }
        let (spans, dropped) = t.finished_spans();
        assert_eq!(dropped, 0);
        assert_eq!(spans.len(), 3);
        // Rings are end-ordered: lod.cut ends first, root last.
        assert_eq!(spans[0].name, "lod.cut");
        assert_eq!(spans[2].name, "render");
        let root = &spans[2];
        assert_eq!(root.parent, SpanId::NONE);
        assert_eq!(root.detail, "demo");
        let layout = &spans[1];
        assert_eq!(layout.parent, root.id);
        let lod = &spans[0];
        assert_eq!(lod.parent, layout.id, "phase nests under the innermost live span");
        // Tick intervals nest strictly.
        assert!(root.start_tick < layout.start_tick);
        assert!(layout.start_tick < lod.start_tick);
        assert!(lod.end_tick < layout.end_tick);
        assert!(layout.end_tick < root.end_tick);
        assert!(root.end_ns >= root.start_ns);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let n = 16u64;
        let picks = |seed: u64| -> Vec<bool> {
            (0..2048).map(|i| sample_one_in(seed, i, n)).collect()
        };
        assert_eq!(picks(42), picks(42), "same seed, same picks");
        assert_ne!(picks(42), picks(43), "different seeds diverge");
        let kept = picks(42).iter().filter(|k| **k).count();
        // ~1/16 of 2048 = 128; allow generous slack, not bias.
        assert!((32..=512).contains(&kept), "kept {kept} of 2048");
        assert!(picks(9).len() == 2048);
        assert!(sample_one_in(1, 5, 0) && sample_one_in(1, 5, 1), "n<=1 keeps all");
    }

    #[test]
    fn sampled_tracer_replays_identically() {
        let run = || {
            let t = Tracer::enabled(2, 0xfeed, 4);
            for i in 0..64u16 {
                let root = t.root(i % 2, "cmd", "s");
                {
                    let _p = t.phase("phase");
                }
                drop(root);
            }
            let (spans, _) = t.finished_spans();
            spans
                .iter()
                .map(|s| (s.trace_id, s.id, s.parent, s.name, s.shard, s.start_tick, s.end_tick))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same seed + same script = same span trees");
    }

    #[test]
    fn phase_completed_backdates_a_leaf_under_the_current_span() {
        let t = Tracer::enabled(1, 11, 1);
        {
            let _root = t.root(0, "cmd", "");
            // The back-dated start clamps at the tracer epoch; make sure
            // at least the claimed duration has really elapsed since then.
            std::thread::sleep(std::time::Duration::from_micros(50));
            t.phase_completed("frame.decode", std::time::Duration::from_nanos(500));
        }
        let (spans, _) = t.finished_spans();
        assert_eq!(spans.len(), 2);
        let decode = &spans[0];
        let root = &spans[1];
        assert_eq!(decode.name, "frame.decode");
        assert_eq!(decode.parent, root.id);
        assert_eq!(decode.trace_id, root.trace_id);
        assert_eq!(decode.end_tick, decode.start_tick + 1);
        assert!(decode.start_tick > root.start_tick && decode.end_tick < root.end_tick);
        assert!(decode.duration_ns() >= 500);
        // Outside any sampled span it records nothing.
        t.phase_completed("frame.decode", std::time::Duration::from_nanos(1));
        assert_eq!(t.finished_spans().0.len(), 2);
    }

    #[test]
    fn unsampled_roots_record_nothing() {
        // sample 1-in-u64::MAX: overwhelmingly unsampled.
        let t = Tracer::enabled(1, 3, u64::MAX);
        let mut any = false;
        for _ in 0..256 {
            let root = t.root(0, "cmd", "");
            any |= root.is_sampled();
            let _child = t.phase("x");
        }
        let (spans, _) = t.finished_spans();
        assert_eq!(spans.len(), if any { 2 } else { 0 });
        assert!(t.clock() <= 4, "clock only moves for sampled spans");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::enabled(1, 1, 1);
        for _ in 0..(SPAN_CAPACITY + 25) {
            drop(t.root(0, "cmd", ""));
        }
        let (spans, dropped) = t.finished_spans();
        assert_eq!(spans.len(), SPAN_CAPACITY);
        assert_eq!(dropped, 25);
        // Oldest surviving record is root #26 (trace ids start at 1).
        assert_eq!(spans[0].trace_id, 26);
    }

    #[test]
    fn child_of_joins_a_tree_across_threads() {
        let t = Tracer::enabled(4, 5, 1);
        let root = t.root(0, "cmd", "");
        let ctx = root.ctx();
        let t2 = t.clone();
        std::thread::spawn(move || {
            drop(t2.child_of(ctx, 3, "subscriber.push"));
        })
        .join()
        .unwrap();
        drop(root);
        let (spans, _) = t.finished_spans();
        assert_eq!(spans.len(), 2);
        let push = spans.iter().find(|s| s.name == "subscriber.push").unwrap();
        let root = spans.iter().find(|s| s.name == "cmd").unwrap();
        assert_eq!(push.trace_id, root.trace_id);
        assert_eq!(push.parent, root.id);
        assert_eq!(push.shard, 3);
    }
}
