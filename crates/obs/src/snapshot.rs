//! Deterministic snapshots and the Prometheus-style text exposition.
//!
//! A [`Snapshot`] is a plain-data, name-sorted copy of a recorder's
//! registries, cheap to diff and trivially serializable. The crate
//! stays dependency-free, so the canonical JSON encoding lives with
//! the codec (`viva-server` converts `Snapshot -> Json`); this module
//! only owns the human-facing text form.

use crate::{bucket_upper_bound, BUCKET_COUNT};

/// One entry from the bounded event ring buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Logical-clock stamp — deterministic, unlike wall time.
    pub seq: u64,
    pub name: String,
    pub detail: String,
}

/// Plain-data copy of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: f64,
    /// Per-bucket (not cumulative) sample counts, `BUCKET_COUNT` long.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Same log-linear quantile estimate (≤ 25% relative error) as
    /// [`Histogram::quantile`](crate::Histogram::quantile).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKET_COUNT - 1)
    }
}

/// Name-sorted, plain-data copy of everything a recorder knows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Logical-clock reading at snapshot time.
    pub clock: u64,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSnapshot>,
    /// Ring-buffer contents, oldest first.
    pub events: Vec<EventRecord>,
    /// Events evicted from the ring buffer since the recorder started.
    pub events_dropped: u64,
}

fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a snapshot as Prometheus-style text, every series labelled
/// with `scope` (e.g. the server vs. a named session). Histograms emit
/// cumulative `_bucket{le=...}` lines up to the last occupied bucket
/// plus the `+Inf` total; events become trailing comment lines so the
/// exposition stays parseable by metric scrapers.
pub fn snapshot_to_text(scope: &str, snap: &Snapshot) -> String {
    use std::fmt::Write as _;
    let scope = escape_label(scope);
    let mut out = String::new();
    let _ = writeln!(out, "# viva-obs snapshot scope=\"{scope}\" clock={}", snap.clock);
    for (name, v) in &snap.counters {
        let _ = writeln!(
            out,
            "viva_counter{{scope=\"{scope}\",name=\"{}\"}} {v}",
            escape_label(name)
        );
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(
            out,
            "viva_gauge{{scope=\"{scope}\",name=\"{}\"}} {v}",
            escape_label(name)
        );
    }
    for h in &snap.histograms {
        let name = escape_label(&h.name);
        let last_occupied = h.buckets.iter().rposition(|&b| b > 0);
        let mut cum = 0u64;
        if let Some(last) = last_occupied {
            for (i, b) in h.buckets.iter().enumerate().take(last + 1) {
                cum += b;
                let _ = writeln!(
                    out,
                    "viva_hist_bucket{{scope=\"{scope}\",name=\"{name}\",le=\"{}\"}} {cum}",
                    bucket_upper_bound(i)
                );
            }
        }
        let _ = writeln!(
            out,
            "viva_hist_bucket{{scope=\"{scope}\",name=\"{name}\",le=\"+Inf\"}} {}",
            h.count
        );
        let _ = writeln!(out, "viva_hist_count{{scope=\"{scope}\",name=\"{name}\"}} {}", h.count);
        let _ = writeln!(out, "viva_hist_sum{{scope=\"{scope}\",name=\"{name}\"}} {}", h.sum);
    }
    if snap.events_dropped > 0 {
        let _ = writeln!(
            out,
            "viva_counter{{scope=\"{scope}\",name=\"obs.events.dropped\"}} {}",
            snap.events_dropped
        );
    }
    for ev in &snap.events {
        let _ = writeln!(
            out,
            "# event seq={} name=\"{}\" detail=\"{}\"",
            ev.seq,
            escape_label(&ev.name),
            escape_label(&ev.detail)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn exposition_contains_every_series() {
        let r = Recorder::enabled();
        r.counter("trace.lines").add(42);
        r.gauge("layout.energy").set(1.5);
        r.histogram("cmd.seconds").record(0.002);
        r.event("layout.freeze", "non_finite_force");
        let text = snapshot_to_text("server", &r.snapshot());
        assert!(text.contains("viva_counter{scope=\"server\",name=\"trace.lines\"} 42"));
        assert!(text.contains("viva_gauge{scope=\"server\",name=\"layout.energy\"} 1.5"));
        assert!(text.contains("viva_hist_count{scope=\"server\",name=\"cmd.seconds\"} 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
        assert!(text.contains("# event seq=0 name=\"layout.freeze\" detail=\"non_finite_force\""));
    }

    #[test]
    fn exposition_escapes_labels() {
        let r = Recorder::enabled();
        r.counter("weird\"name").inc();
        let text = snapshot_to_text("sco\\pe", &r.snapshot());
        assert!(text.contains("scope=\"sco\\\\pe\""));
        assert!(text.contains("name=\"weird\\\"name\""));
    }

    #[test]
    fn histogram_snapshot_quantile_matches_live_handle() {
        let r = Recorder::enabled();
        let h = r.histogram("lat");
        for _ in 0..99 {
            h.record(0.001);
        }
        h.record(2.0);
        let snap = r.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.quantile(0.5), h.quantile(0.5));
        assert_eq!(hs.quantile(0.99), h.quantile(0.99));
        assert_eq!(hs.quantile(1.0), h.quantile(1.0));
        assert!(hs.quantile(1.0) >= 2.0);
    }

    #[test]
    fn identical_recorders_snapshot_identically() {
        let drive = || {
            let r = Recorder::enabled();
            r.counter("a").add(7);
            r.gauge("g").set(0.125);
            r.histogram("h").record(3.0);
            r.event("e", "x");
            r.snapshot()
        };
        assert_eq!(drive(), drive());
    }
}
