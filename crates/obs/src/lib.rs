//! # viva-obs — self-observation for the viva pipeline
//!
//! The paper's pitch is *interactive* analysis: slice changes, collapse /
//! expand, and force-slider drags must feel instant. You cannot hold a
//! pipeline to that bar without measuring it, so this crate gives every
//! layer of viva — ingest, aggregation, layout, serving — a shared,
//! dependency-free observability substrate:
//!
//! * a **registry of metrics**: monotonic [`Counter`]s, last-value
//!   [`Gauge`]s, and fixed log-linear [`Histogram`]s (four sub-buckets
//!   per power-of-two octave, see [`bucket_index`]);
//! * **span timers** ([`Recorder::span`]) that record wall-clock
//!   durations into histograms on drop;
//! * **causal span traces** ([`Tracer`], the [`span`] module): per-shard
//!   rings of parent-linked spans with seeded head-sampling, for
//!   answering "where did this one slow command spend its time?";
//! * a **bounded ring-buffer event log** with logical-clock sequence
//!   numbers ([`Recorder::event`]) for rare, discrete transitions
//!   (layout freezes, budget breaches);
//! * a deterministic [`Snapshot`] of everything above, and a
//!   Prometheus-style text exposition ([`snapshot_to_text`]).
//!
//! ## Zero cost when disabled
//!
//! The unit of wiring is the [`Recorder`]. Its default state is
//! **disabled**: a `None` inner, so every handle created from it is a
//! no-op — no allocation, no atomics, and span timers never even read
//! the clock. Instrumented code holds handles unconditionally and never
//! branches on "is observability on?"; the handles do.
//!
//! ## Determinism contract
//!
//! viva's serving layer promises byte-identical transcripts for
//! identical command scripts, and turning metrics on must not bend that
//! promise. The contract, relied on by the `stats` protocol command:
//!
//! * **Deterministic**: counter values, gauge values (they hold model
//!   quantities like kinetic energy, never wall time), histogram
//!   *sample counts*, and event sequence numbers / names.
//! * **Wall-clock (non-deterministic)**: histogram bucket occupancy and
//!   sums for `*.seconds` span histograms. These are only exported via
//!   the text exposition, never over the wire protocol.
//!
//! Cross-thread updates use relaxed atomic integer addition, which is
//! order-independent — parallel layout passes stay byte-deterministic
//! with metrics enabled.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

mod snapshot;
pub mod span;
pub use snapshot::{snapshot_to_text, EventRecord, HistogramSnapshot, Snapshot};
pub use span::{sample_one_in, SpanGuard, SpanId, SpanRecord, TraceCtx, Tracer, SPAN_CAPACITY};

/// Number of octaves (powers of two) the histogram scale spans.
pub const OCTAVE_COUNT: usize = 48;

/// Log-linear sub-buckets per octave. Four sub-buckets cut the
/// worst-case relative quantile error from 100% (pure power-of-two
/// buckets, where the reported upper bound can be 2× the true sample)
/// to 25%: within one octave `[2^e, 2^(e+1))` the samples are split
/// linearly at `2^e·1.25`, `2^e·1.5` and `2^e·1.75`.
pub const SUB_BUCKETS: usize = 4;

/// Number of histogram buckets. Bucket 0 absorbs underflow (and NaN /
/// non-positive samples); the last bucket absorbs overflow. Every
/// other bucket `i` holds samples in
/// `[bucket_upper_bound(i-1), bucket_upper_bound(i))`.
pub const BUCKET_COUNT: usize = OCTAVE_COUNT * SUB_BUCKETS;

/// Exponent of the first bucket's upper bound: `2^-30 ≈ 0.93 ns` —
/// comfortably below anything a span timer can resolve, so the
/// interesting range `[1 µs, 100 s]` sits in the middle of the scale
/// with headroom for model quantities (energies, byte counts) too:
/// the last octave's lower bound is `2^17 = 131072`.
pub const BUCKET_EXP_MIN: i32 = -30;

/// Capacity of the bounded event ring buffer; older events are dropped
/// (and counted) once it fills.
pub const EVENT_CAPACITY: usize = 1024;

/// Map a sample to its log-linear bucket, using only the IEEE-754
/// exponent bits and the top two mantissa bits — no libm, fully
/// deterministic on every platform.
///
/// Non-positive and NaN samples land in bucket 0; `+inf` in the last.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        // NaN, zero, negative: clamp to the underflow bucket.
        return 0;
    }
    if v.is_infinite() {
        return BUCKET_COUNT - 1;
    }
    let bits = v.to_bits();
    // Subnormals decode to exponent -1023 and clamp into bucket 0,
    // which is exactly where sub-2^-30 values belong.
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let sub = ((bits >> 50) & 0x3) as i32; // top two mantissa bits
    let idx = (exp - BUCKET_EXP_MIN) * SUB_BUCKETS as i32 + sub + 1;
    idx.clamp(0, BUCKET_COUNT as i32 - 1) as usize
}

/// Exact upper bound of bucket `i`: `2^(BUCKET_EXP_MIN)` for the
/// underflow bucket, `2^(BUCKET_EXP_MIN + OCTAVE_COUNT)` for the
/// overflow bucket, and `2^(BUCKET_EXP_MIN + octave)·(1 + (sub+1)/4)`
/// in between. Every bound is exactly representable (a power of two
/// times a 2-bit fraction), so reporting them over the wire is
/// deterministic across platforms.
pub fn bucket_upper_bound(i: usize) -> f64 {
    if i == 0 {
        return (2.0f64).powi(BUCKET_EXP_MIN);
    }
    if i >= BUCKET_COUNT - 1 {
        return (2.0f64).powi(BUCKET_EXP_MIN + OCTAVE_COUNT as i32);
    }
    let j = i - 1;
    let octave = (j / SUB_BUCKETS) as i32;
    let sub = (j % SUB_BUCKETS) as f64;
    (2.0f64).powi(BUCKET_EXP_MIN + octave) * (1.0 + (sub + 1.0) / SUB_BUCKETS as f64)
}

/// All `BUCKET_COUNT` upper bounds, in order — the scale the `stats`
/// wire protocol reports alongside histogram counts so clients can
/// interpret bucket occupancy without hard-coding the scheme.
pub fn bucket_bounds() -> Vec<f64> {
    (0..BUCKET_COUNT).map(bucket_upper_bound).collect()
}

// ---------------------------------------------------------------------
// Metric cores (shared, atomic)
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct CounterCore(AtomicU64);

#[derive(Debug, Default)]
struct GaugeCore(AtomicU64); // f64 bit pattern

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum_bits: AtomicU64, // f64 bit pattern, CAS-updated
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct EventLog {
    buf: VecDeque<EventRecord>,
    dropped: u64,
}

impl EventLog {
    fn push(&mut self, rec: EventRecord) {
        if self.buf.len() == EVENT_CAPACITY {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Inner {
    /// Logical clock: stamps event records and feeds [`Recorder::tick`].
    clock: AtomicU64,
    counters: Mutex<BTreeMap<String, Arc<CounterCore>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCore>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    events: Mutex<EventLog>,
}

/// The wiring unit: cheap to clone (an `Arc` or nothing), threaded
/// through builders into every layer that wants to be observed.
///
/// `Recorder::default()` is **disabled** — every handle it mints is a
/// no-op. [`Recorder::enabled`] turns on a shared registry; clones
/// share it, so a session's loader, index, layout engine, and frame
/// cache all report into one place.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    tracer: Tracer,
}

impl Recorder {
    /// A recorder with a live registry.
    pub fn enabled() -> Self {
        Recorder { inner: Some(Arc::new(Inner::default())), tracer: Tracer::disabled() }
    }

    /// The no-op recorder (same as `Default`).
    pub fn disabled() -> Self {
        Recorder { inner: None, tracer: Tracer::disabled() }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a causal-span [`Tracer`]; clones share it, so every layer
    /// holding a clone of this recorder emits phase spans into the same
    /// per-shard rings. The metric registry is untouched.
    pub fn with_tracer(mut self, tracer: Tracer) -> Recorder {
        self.tracer = tracer;
        self
    }

    /// The attached causal-span tracer — [`Tracer::disabled`] (and so
    /// provably free: one `Option` branch, no clock reads, no
    /// thread-local access) unless [`Recorder::with_tracer`] installed
    /// a live one.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Look up or create the named counter. Disabled recorders return a
    /// no-op handle without touching any registry.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            let mut reg = inner.counters.lock().unwrap();
            Arc::clone(reg.entry(name.to_string()).or_default())
        }))
    }

    /// Look up or create the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            let mut reg = inner.gauges.lock().unwrap();
            Arc::clone(reg.entry(name.to_string()).or_default())
        }))
    }

    /// Look up or create the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            let mut reg = inner.histograms.lock().unwrap();
            Arc::clone(
                reg.entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    /// Start a wall-clock span; on drop its duration in **seconds** is
    /// recorded into the named histogram. Disabled recorders never read
    /// the clock.
    pub fn span(&self, name: &str) -> Span {
        if self.inner.is_some() {
            Span(Some((self.histogram(name), Instant::now())))
        } else {
            Span(None)
        }
    }

    /// Append a discrete event to the bounded ring buffer, stamped with
    /// the next logical-clock value. The stamp is allocated *under* the
    /// ring lock: two concurrent writers must not be able to push their
    /// records in the opposite order of their sequence numbers, or the
    /// ring's monotonicity (which `stats` consumers sort by) would tear.
    pub fn event(&self, name: &str, detail: &str) {
        if let Some(inner) = &self.inner {
            let mut log = inner.events.lock().unwrap();
            let seq = inner.clock.fetch_add(1, Ordering::Relaxed);
            log.push(EventRecord {
                seq,
                name: name.to_string(),
                detail: detail.to_string(),
            });
        }
    }

    /// Advance and return the logical clock (0 when disabled). Lets a
    /// caller interleave its own ordering marks with event timestamps.
    pub fn tick(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.clock.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Like [`Recorder::snapshot`], but atomically zeros every counter
    /// and histogram as it reads them — the returned snapshot is the
    /// complete tally for the window since the last reset, and the next
    /// window starts from zero. Gauges (last-value model quantities)
    /// and the event ring are read but left untouched. Backs the
    /// `stats {"reset": true}` protocol command, so closed-loop benches
    /// can measure per-window rates without restarting the server.
    pub fn snapshot_and_reset(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, core)| (name.clone(), core.0.swap(0, Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, core)| (name.clone(), f64::from_bits(core.0.load(Ordering::Relaxed))))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, core)| HistogramSnapshot {
                name: name.clone(),
                count: core.count.swap(0, Ordering::Relaxed),
                sum: f64::from_bits(core.sum_bits.swap(0.0f64.to_bits(), Ordering::Relaxed)),
                buckets: core.buckets.iter().map(|b| b.swap(0, Ordering::Relaxed)).collect(),
            })
            .collect();
        let log = inner.events.lock().unwrap();
        Snapshot {
            clock: inner.clock.load(Ordering::Relaxed),
            counters,
            gauges,
            histograms,
            events: log.buf.iter().cloned().collect(),
            events_dropped: log.dropped,
        }
    }

    /// A deterministic, name-sorted copy of every registered metric and
    /// the current event-log contents.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, core)| (name.clone(), core.0.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, core)| (name.clone(), f64::from_bits(core.0.load(Ordering::Relaxed))))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, core)| HistogramSnapshot {
                name: name.clone(),
                count: core.count.load(Ordering::Relaxed),
                sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                buckets: core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            })
            .collect();
        let log = inner.events.lock().unwrap();
        Snapshot {
            clock: inner.clock.load(Ordering::Relaxed),
            counters,
            gauges,
            histograms,
            events: log.buf.iter().cloned().collect(),
            events_dropped: log.dropped,
        }
    }
}

// ---------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------

/// Monotonic counter handle. All operations are no-ops on handles from
/// a disabled [`Recorder`].
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.0.load(Ordering::Relaxed))
    }
}

/// Last-value gauge handle storing an `f64`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    pub fn set(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |core| f64::from_bits(core.0.load(Ordering::Relaxed)))
    }
}

/// Log-scale histogram handle (see [`bucket_index`] for the scheme).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub fn record(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.count.load(Ordering::Relaxed))
    }

    pub fn sum(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |core| f64::from_bits(core.sum_bits.load(Ordering::Relaxed)))
    }

    /// Start a wall-clock span recording into this histogram on drop —
    /// the cached-handle twin of [`Recorder::span`], for hot paths that
    /// must not pay a registry lookup per call. No-op handles never
    /// read the clock.
    pub fn start_timer(&self) -> Span {
        if self.0.is_some() {
            Span(Some((self.clone(), Instant::now())))
        } else {
            Span(None)
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0 < q <= 1`); 0 when empty. Log-linear resolution: the
    /// reported bound overestimates the true sample by at most 25%
    /// (see [`SUB_BUCKETS`]), tight enough for `--timing` p50/p99
    /// summaries to be read as real latencies.
    pub fn quantile(&self, q: f64) -> f64 {
        let Some(core) = &self.0 else { return 0.0 };
        let count = core.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in core.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKET_COUNT - 1)
    }
}

/// RAII wall-clock span; records elapsed seconds into its histogram on
/// drop. Obtain via [`Recorder::span`].
#[derive(Debug)]
pub struct Span(Option<(Histogram, Instant)>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.0.take() {
            hist.record(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::default();
        assert!(!r.is_enabled());
        let c = r.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = r.gauge("y");
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = r.histogram("z");
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        r.event("e", "detail");
        drop(r.span("s"));
        assert_eq!(r.tick(), 0);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn handles_share_the_registry() {
        let r = Recorder::enabled();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(r.clone().counter("hits").get(), 3, "clones share state");
        r.gauge("load").set(0.25);
        assert_eq!(r.gauge("load").get(), 0.25);
    }

    #[test]
    fn bucket_index_is_a_log_scale() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(1e-300), 0, "underflow clamps");
        assert_eq!(bucket_index(1e300), BUCKET_COUNT - 1, "overflow clamps");
        // 1.5 has exponent 0 -> bucket with upper bound 2^1.
        let i = bucket_index(1.5);
        assert!(bucket_upper_bound(i) >= 1.5);
        assert!(bucket_upper_bound(i) / 1.5 <= 2.0);
        // Monotone in the sample value.
        let mut prev = 0usize;
        let mut v = 1e-10;
        while v < 1e6 {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket index must be monotone");
            prev = i;
            v *= 3.0;
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let r = Recorder::enabled();
        let h = r.histogram("lat");
        for _ in 0..90 {
            h.record(0.001); // ~1 ms
        }
        for _ in 0..10 {
            h.record(1.0); // 1 s
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 10.09).abs() < 1e-9 * 100.0);
        let p50 = h.quantile(0.50);
        assert!(p50 < 0.01, "median is in the ~1 ms bucket, got {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 1.0, "p99 is in the ~1 s bucket, got {p99}");
    }

    #[test]
    fn span_records_into_histogram() {
        let r = Recorder::enabled();
        {
            let _s = r.span("work.seconds");
        }
        let h = r.histogram("work.seconds");
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn event_log_is_bounded_and_ordered() {
        let r = Recorder::enabled();
        for i in 0..(EVENT_CAPACITY + 10) {
            r.event("e", &format!("{i}"));
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAPACITY);
        assert_eq!(snap.events_dropped, 10);
        // Oldest surviving record is #10, and seqs ascend.
        assert_eq!(snap.events[0].detail, "10");
        for w in snap.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    /// Satellite regression: with 4 log-linear sub-buckets per octave,
    /// the quantile estimate (a bucket upper bound) may overshoot the
    /// true sample by at most 25%. The old power-of-two scheme was off
    /// by up to 100% — `--timing` p50/p99 could read 2× high.
    #[test]
    fn bucket_bounds_pin_relative_quantile_error() {
        // Sweep the whole in-range scale on a dense multiplicative grid.
        let mut v = 1.5e-9; // just above 2^-30
        while v < 1.0e5 {
            let i = bucket_index(v);
            let upper = bucket_upper_bound(i);
            assert!(upper >= v, "upper bound below sample at {v}");
            let rel = (upper - v) / v;
            assert!(rel <= 0.25 + 1e-12, "relative error {rel} at {v} (bucket {i})");
            // The bucket is half-open: its lower neighbour ends at or
            // below the sample.
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) <= v, "sample below bucket at {v}");
            }
            v *= 1.0137;
        }
        // And through a histogram: a point mass has every quantile in
        // its own bucket, so the estimate is within 25% of the truth.
        let r = Recorder::enabled();
        let h = r.histogram("q");
        for _ in 0..1000 {
            h.record(0.0042);
        }
        for q in [0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(est >= 0.0042, "quantile below the only sample");
            assert!((est - 0.0042) / 0.0042 <= 0.25, "q{q} estimate {est} off by >25%");
        }
        // Bounds are strictly increasing and exactly reproducible.
        let bounds = bucket_bounds();
        assert_eq!(bounds.len(), BUCKET_COUNT);
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "bounds must be strictly increasing");
        }
        assert_eq!(bounds[0], (2.0f64).powi(BUCKET_EXP_MIN));
        assert_eq!(bounds[BUCKET_COUNT - 1], (2.0f64).powi(BUCKET_EXP_MIN + OCTAVE_COUNT as i32));
    }

    #[test]
    fn snapshot_and_reset_zeros_counters_and_histograms_only() {
        let r = Recorder::enabled();
        r.counter("hits").add(7);
        r.gauge("energy").set(2.5);
        r.histogram("lat").record(0.01);
        r.event("freeze", "x");
        let win = r.snapshot_and_reset();
        assert_eq!(win.counters, vec![("hits".into(), 7)]);
        assert_eq!(win.histograms[0].count, 1);
        assert_eq!(win.events.len(), 1, "events are reported, not cleared");
        // The next window starts from zero — except gauges and events.
        let after = r.snapshot();
        assert_eq!(after.counters, vec![("hits".into(), 0)]);
        assert_eq!(after.histograms[0].count, 0);
        assert_eq!(after.histograms[0].sum, 0.0);
        assert!(after.histograms[0].buckets.iter().all(|b| *b == 0));
        assert_eq!(after.gauges, vec![("energy".into(), 2.5)]);
        assert_eq!(after.events.len(), 1);
        // Disabled recorders reset to nothing, quietly.
        assert!(Recorder::disabled().snapshot_and_reset().counters.is_empty());
    }

    /// Satellite stress: the bounded event ring at capacity under 8
    /// concurrent writers must keep logical clocks monotone per
    /// snapshot order, never tear an entry (name and detail always
    /// agree), and account for every drop.
    #[test]
    fn event_ring_survives_concurrent_wraparound() {
        let r = Recorder::enabled();
        const THREADS: usize = 8;
        const PER_THREAD: usize = 400; // 3200 total >> EVENT_CAPACITY
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let tag = format!("{t}:{i}");
                    r.event(&format!("writer-{tag}"), &tag);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAPACITY, "ring holds exactly its capacity");
        assert_eq!(
            snap.events_dropped as usize,
            THREADS * PER_THREAD - EVENT_CAPACITY,
            "every displaced record is counted"
        );
        for w in snap.events.windows(2) {
            assert!(w[0].seq < w[1].seq, "logical clocks stay strictly monotone");
        }
        for e in &snap.events {
            assert_eq!(
                e.name,
                format!("writer-{}", e.detail),
                "entry torn: name and detail disagree"
            );
        }
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Recorder::enabled();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.histogram("mid").record(1.0);
        r.histogram("aaa").record(2.0);
        let snap = r.snapshot();
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        let hnames: Vec<_> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(hnames, ["aaa", "mid"]);
    }
}
