//! # viva-obs — self-observation for the viva pipeline
//!
//! The paper's pitch is *interactive* analysis: slice changes, collapse /
//! expand, and force-slider drags must feel instant. You cannot hold a
//! pipeline to that bar without measuring it, so this crate gives every
//! layer of viva — ingest, aggregation, layout, serving — a shared,
//! dependency-free observability substrate:
//!
//! * a **registry of metrics**: monotonic [`Counter`]s, last-value
//!   [`Gauge`]s, and fixed log-scale [`Histogram`]s (power-of-two
//!   buckets, see [`bucket_index`]);
//! * **span timers** ([`Recorder::span`]) that record wall-clock
//!   durations into histograms on drop;
//! * a **bounded ring-buffer event log** with logical-clock sequence
//!   numbers ([`Recorder::event`]) for rare, discrete transitions
//!   (layout freezes, budget breaches);
//! * a deterministic [`Snapshot`] of everything above, and a
//!   Prometheus-style text exposition ([`snapshot_to_text`]).
//!
//! ## Zero cost when disabled
//!
//! The unit of wiring is the [`Recorder`]. Its default state is
//! **disabled**: a `None` inner, so every handle created from it is a
//! no-op — no allocation, no atomics, and span timers never even read
//! the clock. Instrumented code holds handles unconditionally and never
//! branches on "is observability on?"; the handles do.
//!
//! ## Determinism contract
//!
//! viva's serving layer promises byte-identical transcripts for
//! identical command scripts, and turning metrics on must not bend that
//! promise. The contract, relied on by the `stats` protocol command:
//!
//! * **Deterministic**: counter values, gauge values (they hold model
//!   quantities like kinetic energy, never wall time), histogram
//!   *sample counts*, and event sequence numbers / names.
//! * **Wall-clock (non-deterministic)**: histogram bucket occupancy and
//!   sums for `*.seconds` span histograms. These are only exported via
//!   the text exposition, never over the wire protocol.
//!
//! Cross-thread updates use relaxed atomic integer addition, which is
//! order-independent — parallel layout passes stay byte-deterministic
//! with metrics enabled.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

mod snapshot;
pub use snapshot::{snapshot_to_text, EventRecord, HistogramSnapshot, Snapshot};

/// Number of histogram buckets. Bucket `i` holds samples in
/// `[2^(BUCKET_EXP_MIN + i - 1), 2^(BUCKET_EXP_MIN + i))` seconds (or
/// whatever unit the caller records); the first and last buckets absorb
/// underflow and overflow respectively.
pub const BUCKET_COUNT: usize = 48;

/// Exponent of the first bucket's upper bound: `2^-30 ≈ 0.93 ns` —
/// comfortably below anything a span timer can resolve, so the
/// interesting range `[1 µs, 100 s]` sits in the middle of the scale
/// with headroom for model quantities (energies, byte counts) too:
/// the last bucket's lower bound is `2^16 = 65536`.
pub const BUCKET_EXP_MIN: i32 = -30;

/// Capacity of the bounded event ring buffer; older events are dropped
/// (and counted) once it fills.
pub const EVENT_CAPACITY: usize = 1024;

/// Map a sample to its log-scale bucket, using only the IEEE-754
/// exponent bits — no libm, fully deterministic on every platform.
///
/// Non-positive and NaN samples land in bucket 0; `+inf` in the last.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        // NaN, zero, negative: clamp to the underflow bucket.
        return 0;
    }
    if v.is_infinite() {
        return BUCKET_COUNT - 1;
    }
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    (exp + 1 - BUCKET_EXP_MIN).clamp(0, BUCKET_COUNT as i32 - 1) as usize
}

/// Upper bound of bucket `i`: `2^(BUCKET_EXP_MIN + i)`.
pub fn bucket_upper_bound(i: usize) -> f64 {
    // Exact: exponent range stays well inside f64.
    (2.0f64).powi(BUCKET_EXP_MIN + i as i32)
}

// ---------------------------------------------------------------------
// Metric cores (shared, atomic)
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct CounterCore(AtomicU64);

#[derive(Debug, Default)]
struct GaugeCore(AtomicU64); // f64 bit pattern

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum_bits: AtomicU64, // f64 bit pattern, CAS-updated
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Event log
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct EventLog {
    buf: VecDeque<EventRecord>,
    dropped: u64,
}

impl EventLog {
    fn push(&mut self, rec: EventRecord) {
        if self.buf.len() == EVENT_CAPACITY {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Inner {
    /// Logical clock: stamps event records and feeds [`Recorder::tick`].
    clock: AtomicU64,
    counters: Mutex<BTreeMap<String, Arc<CounterCore>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCore>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    events: Mutex<EventLog>,
}

/// The wiring unit: cheap to clone (an `Arc` or nothing), threaded
/// through builders into every layer that wants to be observed.
///
/// `Recorder::default()` is **disabled** — every handle it mints is a
/// no-op. [`Recorder::enabled`] turns on a shared registry; clones
/// share it, so a session's loader, index, layout engine, and frame
/// cache all report into one place.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder with a live registry.
    pub fn enabled() -> Self {
        Recorder { inner: Some(Arc::new(Inner::default())) }
    }

    /// The no-op recorder (same as `Default`).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Look up or create the named counter. Disabled recorders return a
    /// no-op handle without touching any registry.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            let mut reg = inner.counters.lock().unwrap();
            Arc::clone(reg.entry(name.to_string()).or_default())
        }))
    }

    /// Look up or create the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            let mut reg = inner.gauges.lock().unwrap();
            Arc::clone(reg.entry(name.to_string()).or_default())
        }))
    }

    /// Look up or create the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            let mut reg = inner.histograms.lock().unwrap();
            Arc::clone(
                reg.entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    /// Start a wall-clock span; on drop its duration in **seconds** is
    /// recorded into the named histogram. Disabled recorders never read
    /// the clock.
    pub fn span(&self, name: &str) -> Span {
        if self.inner.is_some() {
            Span(Some((self.histogram(name), Instant::now())))
        } else {
            Span(None)
        }
    }

    /// Append a discrete event to the bounded ring buffer, stamped with
    /// the next logical-clock value.
    pub fn event(&self, name: &str, detail: &str) {
        if let Some(inner) = &self.inner {
            let seq = inner.clock.fetch_add(1, Ordering::Relaxed);
            inner.events.lock().unwrap().push(EventRecord {
                seq,
                name: name.to_string(),
                detail: detail.to_string(),
            });
        }
    }

    /// Advance and return the logical clock (0 when disabled). Lets a
    /// caller interleave its own ordering marks with event timestamps.
    pub fn tick(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.clock.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// A deterministic, name-sorted copy of every registered metric and
    /// the current event-log contents.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, core)| (name.clone(), core.0.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, core)| (name.clone(), f64::from_bits(core.0.load(Ordering::Relaxed))))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, core)| HistogramSnapshot {
                name: name.clone(),
                count: core.count.load(Ordering::Relaxed),
                sum: f64::from_bits(core.sum_bits.load(Ordering::Relaxed)),
                buckets: core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            })
            .collect();
        let log = inner.events.lock().unwrap();
        Snapshot {
            clock: inner.clock.load(Ordering::Relaxed),
            counters,
            gauges,
            histograms,
            events: log.buf.iter().cloned().collect(),
            events_dropped: log.dropped,
        }
    }
}

// ---------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------

/// Monotonic counter handle. All operations are no-ops on handles from
/// a disabled [`Recorder`].
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.0.load(Ordering::Relaxed))
    }
}

/// Last-value gauge handle storing an `f64`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    pub fn set(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |core| f64::from_bits(core.0.load(Ordering::Relaxed)))
    }
}

/// Log-scale histogram handle (see [`bucket_index`] for the scheme).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    pub fn record(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }

    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.count.load(Ordering::Relaxed))
    }

    pub fn sum(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |core| f64::from_bits(core.sum_bits.load(Ordering::Relaxed)))
    }

    /// Start a wall-clock span recording into this histogram on drop —
    /// the cached-handle twin of [`Recorder::span`], for hot paths that
    /// must not pay a registry lookup per call. No-op handles never
    /// read the clock.
    pub fn start_timer(&self) -> Span {
        if self.0.is_some() {
            Span(Some((self.clone(), Instant::now())))
        } else {
            Span(None)
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0 < q <= 1`); 0 when empty. Factor-of-two resolution — enough
    /// to tell a 2 ms render from a 200 ms one, which is the question
    /// the latency summaries answer.
    pub fn quantile(&self, q: f64) -> f64 {
        let Some(core) = &self.0 else { return 0.0 };
        let count = core.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in core.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKET_COUNT - 1)
    }
}

/// RAII wall-clock span; records elapsed seconds into its histogram on
/// drop. Obtain via [`Recorder::span`].
#[derive(Debug)]
pub struct Span(Option<(Histogram, Instant)>);

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.0.take() {
            hist.record(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::default();
        assert!(!r.is_enabled());
        let c = r.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = r.gauge("y");
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = r.histogram("z");
        h.record(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        r.event("e", "detail");
        drop(r.span("s"));
        assert_eq!(r.tick(), 0);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn handles_share_the_registry() {
        let r = Recorder::enabled();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(r.clone().counter("hits").get(), 3, "clones share state");
        r.gauge("load").set(0.25);
        assert_eq!(r.gauge("load").get(), 0.25);
    }

    #[test]
    fn bucket_index_is_a_log_scale() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(1e-300), 0, "underflow clamps");
        assert_eq!(bucket_index(1e300), BUCKET_COUNT - 1, "overflow clamps");
        // 1.5 has exponent 0 -> bucket with upper bound 2^1.
        let i = bucket_index(1.5);
        assert!(bucket_upper_bound(i) >= 1.5);
        assert!(bucket_upper_bound(i) / 1.5 <= 2.0);
        // Monotone in the sample value.
        let mut prev = 0usize;
        let mut v = 1e-10;
        while v < 1e6 {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket index must be monotone");
            prev = i;
            v *= 3.0;
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let r = Recorder::enabled();
        let h = r.histogram("lat");
        for _ in 0..90 {
            h.record(0.001); // ~1 ms
        }
        for _ in 0..10 {
            h.record(1.0); // 1 s
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 10.09).abs() < 1e-9 * 100.0);
        let p50 = h.quantile(0.50);
        assert!(p50 < 0.01, "median is in the ~1 ms bucket, got {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 1.0, "p99 is in the ~1 s bucket, got {p99}");
    }

    #[test]
    fn span_records_into_histogram() {
        let r = Recorder::enabled();
        {
            let _s = r.span("work.seconds");
        }
        let h = r.histogram("work.seconds");
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn event_log_is_bounded_and_ordered() {
        let r = Recorder::enabled();
        for i in 0..(EVENT_CAPACITY + 10) {
            r.event("e", &format!("{i}"));
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAPACITY);
        assert_eq!(snap.events_dropped, 10);
        // Oldest surviving record is #10, and seqs ascend.
        assert_eq!(snap.events[0].detail, "10");
        for w in snap.events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Recorder::enabled();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.histogram("mid").record(1.0);
        r.histogram("aaa").record(2.0);
        let snap = r.snapshot();
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        let hnames: Vec<_> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(hnames, ["aaa", "mid"]);
    }
}
