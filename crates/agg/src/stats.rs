//! Statistical indicators over aggregated values.
//!
//! The paper's §6 notes that "aggregating a large amount of values into
//! a single object leads to an important loss of information" and asks
//! for "additional information (e.g., statistical indicators like the
//! variance or the median)". [`Summary`] is that indicator set.

/// Summary statistics of a sample of values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Sum of values.
    pub sum: f64,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Smallest value (0 for an empty sample).
    pub min: f64,
    /// Largest value (0 for an empty sample).
    pub max: f64,
    /// Population variance (0 for an empty sample).
    pub variance: f64,
    /// Median (0 for an empty sample).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of `values`.
    ///
    /// Non-finite values are ignored.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut v: Vec<f64> = values.into_iter().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return Summary::default();
        }
        v.sort_by(f64::total_cmp);
        let count = v.len();
        let sum: f64 = v.iter().sum();
        let mean = sum / count as f64;
        let variance = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let median = if count % 2 == 1 {
            v[count / 2]
        } else {
            (v[count / 2 - 1] + v[count / 2]) / 2.0
        };
        Summary {
            count,
            sum,
            mean,
            min: v[0],
            max: v[count - 1],
            variance,
            median,
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Coefficient of variation (`std_dev / mean`; 0 when the mean is
    /// 0). A quick imbalance indicator for aggregated groups.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of `values` by linear interpolation.
/// Returns 0 for an empty sample.
///
/// # Panics
///
/// Panics when `q` is outside `[0, 1]`.
pub fn quantile(values: impl IntoIterator<Item = f64>, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    let mut v: Vec<f64> = values.into_iter().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.variance, 4.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
        assert_eq!(s.cv(), 0.4);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let e = Summary::of([]);
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.cv(), 0.0);
        let s = Summary::of([3.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn summary_ignores_non_finite() {
        let s = Summary::of([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn median_odd_sample() {
        assert_eq!(Summary::of([5.0, 1.0, 3.0]).median, 3.0);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(v, 0.0), 1.0);
        assert_eq!(quantile(v, 1.0), 5.0);
        assert_eq!(quantile(v, 0.5), 3.0);
        assert_eq!(quantile(v, 0.25), 2.0);
        assert_eq!(quantile([], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_q() {
        let _ = quantile([1.0], 1.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn mean_between_min_and_max(v in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let s = Summary::of(v.clone());
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.variance >= 0.0);
        }

        #[test]
        fn quantile_is_monotonic(v in proptest::collection::vec(-1e6f64..1e6, 1..50),
                                 a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(quantile(v.clone(), lo) <= quantile(v.clone(), hi) + 1e-9);
        }
    }
}
