//! Time-slices: the temporal neighbourhood `Δ` of Equation 1.

use std::fmt;

/// Why a time slice could not be built (UI input is untrusted: slider
/// positions and typed bounds arrive here unchecked).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeSliceError {
    /// A bound was NaN or infinite.
    NonFinite { start: f64, end: f64 },
    /// `end < start`.
    Inverted { start: f64, end: f64 },
}

impl fmt::Display for TimeSliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TimeSliceError::NonFinite { start, end } => {
                write!(f, "time slice bound not finite: [{start}, {end})")
            }
            TimeSliceError::Inverted { start, end } => {
                write!(f, "time slice ends before it starts: [{start}, {end})")
            }
        }
    }
}

impl std::error::Error for TimeSliceError {}

/// A half-open observation window `[start, end)` chosen by the analyst
/// (paper §3.2.1; the cursors A1/A2 of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSlice {
    start: f64,
    end: f64,
}

impl TimeSlice {
    /// Creates the slice `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when `end < start` or either bound is not finite. Use
    /// [`TimeSlice::try_new`] for untrusted (UI) input.
    pub fn new(start: f64, end: f64) -> TimeSlice {
        match TimeSlice::try_new(start, end) {
            Ok(s) => s,
            Err(e) => panic!("invalid time slice: {e}"),
        }
    }

    /// Fallible constructor: rejects non-finite or inverted bounds
    /// instead of panicking.
    pub fn try_new(start: f64, end: f64) -> Result<TimeSlice, TimeSliceError> {
        if !start.is_finite() || !end.is_finite() {
            return Err(TimeSliceError::NonFinite { start, end });
        }
        if end < start {
            return Err(TimeSliceError::Inverted { start, end });
        }
        Ok(TimeSlice { start, end })
    }

    /// Clamps the slice into `[lo, hi)` — typically the recorded extent
    /// of a trace, so a cursor dragged past the end yields a valid
    /// (possibly empty) window instead of integrating over time that
    /// was never recorded. A slice entirely outside the bounds
    /// collapses to an empty slice pinned at the nearest bound.
    ///
    /// # Panics
    ///
    /// Panics when `hi < lo` or either bound is not finite.
    #[must_use]
    pub fn clamped_to(self, lo: f64, hi: f64) -> TimeSlice {
        let bounds = TimeSlice::new(lo, hi);
        let start = self.start.clamp(bounds.start, bounds.end);
        let end = self.end.clamp(start, bounds.end);
        TimeSlice { start, end }
    }

    /// Slice start.
    pub fn start(self) -> f64 {
        self.start
    }

    /// Slice end.
    pub fn end(self) -> f64 {
        self.end
    }

    /// Slice width `Δ`.
    pub fn width(self) -> f64 {
        self.end - self.start
    }

    /// Whether `t` falls inside the slice.
    pub fn contains(self, t: f64) -> bool {
        t >= self.start && t < self.end
    }

    /// The slice translated by `dt` (used to "shift the corresponding
    /// frame considering other time intervals", §3.2).
    #[must_use]
    pub fn shifted(self, dt: f64) -> TimeSlice {
        TimeSlice::new(self.start + dt, self.end + dt)
    }

    /// The slice scaled by `factor` around its start.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is negative or not finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> TimeSlice {
        assert!(factor.is_finite() && factor >= 0.0, "invalid scale {factor}");
        TimeSlice::new(self.start, self.start + self.width() * factor)
    }

    /// Splits the slice into `n` equal consecutive sub-slices (the
    /// animation frames of Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics when `n` is 0.
    pub fn split(self, n: usize) -> Vec<TimeSlice> {
        assert!(n > 0, "cannot split into 0 sub-slices");
        let w = self.width() / n as f64;
        (0..n)
            .map(|i| {
                let s = self.start + w * i as f64;
                // Use the exact end for the last slice to avoid
                // accumulation error.
                let e = if i == n - 1 { self.end } else { s + w };
                TimeSlice::new(s, e)
            })
            .collect()
    }

    /// The intersection of two slices, or `None` when disjoint.
    pub fn intersect(self, other: TimeSlice) -> Option<TimeSlice> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        (e > s).then(|| TimeSlice::new(s, e))
    }
}

impl fmt::Display for TimeSlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = TimeSlice::new(2.0, 6.0);
        assert_eq!(s.width(), 4.0);
        assert!(s.contains(2.0));
        assert!(s.contains(5.999));
        assert!(!s.contains(6.0));
        assert!(!s.contains(1.0));
        assert_eq!(s.to_string(), "[2, 6)");
    }

    #[test]
    fn empty_slice_is_allowed() {
        let s = TimeSlice::new(3.0, 3.0);
        assert_eq!(s.width(), 0.0);
        assert!(!s.contains(3.0));
    }

    #[test]
    #[should_panic(expected = "invalid time slice")]
    fn inverted_slice_panics() {
        let _ = TimeSlice::new(5.0, 4.0);
    }

    #[test]
    fn try_new_reports_the_defect() {
        assert_eq!(
            TimeSlice::try_new(5.0, 4.0),
            Err(TimeSliceError::Inverted { start: 5.0, end: 4.0 })
        );
        assert!(matches!(
            TimeSlice::try_new(f64::NAN, 4.0),
            Err(TimeSliceError::NonFinite { .. })
        ));
        assert!(matches!(
            TimeSlice::try_new(0.0, f64::INFINITY),
            Err(TimeSliceError::NonFinite { .. })
        ));
        assert_eq!(TimeSlice::try_new(1.0, 2.0), Ok(TimeSlice::new(1.0, 2.0)));
    }

    #[test]
    fn clamped_to_trims_overhang() {
        // Cursor dragged past the trace end.
        let s = TimeSlice::new(8.0, 15.0).clamped_to(0.0, 10.0);
        assert_eq!(s, TimeSlice::new(8.0, 10.0));
        // Entirely past the end: empty, pinned at the end.
        let s = TimeSlice::new(12.0, 15.0).clamped_to(0.0, 10.0);
        assert_eq!(s, TimeSlice::new(10.0, 10.0));
        assert_eq!(s.width(), 0.0);
        // Entirely before the start: empty, pinned at the start.
        let s = TimeSlice::new(-5.0, -1.0).clamped_to(0.0, 10.0);
        assert_eq!(s, TimeSlice::new(0.0, 0.0));
        // Already inside: unchanged.
        let s = TimeSlice::new(2.0, 6.0).clamped_to(0.0, 10.0);
        assert_eq!(s, TimeSlice::new(2.0, 6.0));
    }

    #[test]
    fn shifted_and_scaled() {
        let s = TimeSlice::new(2.0, 6.0);
        assert_eq!(s.shifted(4.0), TimeSlice::new(6.0, 10.0));
        assert_eq!(s.scaled(0.5), TimeSlice::new(2.0, 4.0));
        assert_eq!(s.scaled(2.0), TimeSlice::new(2.0, 10.0));
    }

    #[test]
    fn split_covers_exactly() {
        let s = TimeSlice::new(0.0, 10.0);
        let parts = s.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].start(), 0.0);
        assert_eq!(parts[3].end(), 10.0);
        for w in parts.windows(2) {
            assert_eq!(w[0].end(), w[1].start());
        }
        let total: f64 = parts.iter().map(|p| p.width()).sum();
        assert!((total - 10.0).abs() < 1e-12);
    }

    #[test]
    fn intersect_cases() {
        let a = TimeSlice::new(0.0, 5.0);
        let b = TimeSlice::new(3.0, 8.0);
        assert_eq!(a.intersect(b), Some(TimeSlice::new(3.0, 5.0)));
        assert_eq!(b.intersect(a), Some(TimeSlice::new(3.0, 5.0)));
        let c = TimeSlice::new(6.0, 7.0);
        assert_eq!(a.intersect(c), None);
        // Touching slices are disjoint (half-open).
        let d = TimeSlice::new(5.0, 6.0);
        assert_eq!(a.intersect(d), None);
    }
}
