//! Interactive aggregation state: which groups are collapsed.
//!
//! The paper's analyst "interactively aggregate\[s\] parts of the graph"
//! (§3.2.2, Fig. 3) and navigates whole levels at once (Fig. 8:
//! hosts → clusters → sites → grid). [`ViewState`] is that piece of
//! session state: a set of collapsed containers plus the derived
//! *visible frontier*.

use std::collections::HashSet;

use viva_trace::{ContainerId, ContainerTree};

/// The collapse/expand state of a topology view.
///
/// A *collapsed* container is drawn as a single aggregated node; all
/// its descendants are hidden. The **visible frontier** is the set of
/// containers to draw: every node that has no collapsed proper
/// ancestor and is either collapsed itself or a leaf.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViewState {
    collapsed: HashSet<ContainerId>,
}

impl ViewState {
    /// Creates a fully-expanded view (every leaf visible).
    pub fn new() -> ViewState {
        ViewState::default()
    }

    /// Whether `id` is collapsed.
    pub fn is_collapsed(&self, id: ContainerId) -> bool {
        self.collapsed.contains(&id)
    }

    /// Collapses `id` into a single aggregated node (no-op when already
    /// collapsed). Collapsing a leaf is allowed and harmless.
    pub fn collapse(&mut self, id: ContainerId) {
        self.collapsed.insert(id);
    }

    /// Expands `id` (no-op when not collapsed).
    pub fn expand(&mut self, id: ContainerId) {
        self.collapsed.remove(&id);
    }

    /// Expands everything.
    pub fn expand_all(&mut self) {
        self.collapsed.clear();
    }

    /// The collapsed containers, sorted by id — the serializable form
    /// of this state. Replaying `collapse` over these ids on a fresh
    /// `ViewState` reproduces `self` exactly, which is what session
    /// checkpoint/restore relies on.
    pub fn collapsed_ids(&self) -> Vec<ContainerId> {
        let mut ids: Vec<ContainerId> = self.collapsed.iter().copied().collect();
        ids.sort_by_key(|c| c.index());
        ids
    }

    /// Sets the view to one hierarchy level: collapses every container
    /// with children at depth `depth` and clears all other collapse
    /// marks. Depth 0 collapses the whole tree into one node; the tree
    /// height yields the fully-expanded host view (Fig. 8's four
    /// levels).
    pub fn collapse_at_depth(&mut self, tree: &ContainerTree, depth: u32) {
        self.collapsed.clear();
        for c in tree.iter() {
            if c.depth() == depth && !c.is_leaf() {
                self.collapsed.insert(c.id());
            }
        }
    }

    /// Whether `id` is visible: no proper ancestor collapsed, and
    /// either collapsed itself or a leaf.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of `tree`.
    pub fn is_visible(&self, tree: &ContainerTree, id: ContainerId) -> bool {
        if tree
            .ancestors(id)
            .iter()
            .any(|a| self.collapsed.contains(a))
        {
            return false;
        }
        self.collapsed.contains(&id) || tree.node(id).is_leaf()
    }

    /// The visible frontier, in container-id order.
    pub fn visible(&self, tree: &ContainerTree) -> Vec<ContainerId> {
        let mut out = Vec::new();
        // Depth-first walk that stops at collapsed nodes.
        let mut stack = vec![tree.root()];
        while let Some(c) = stack.pop() {
            let node = tree.node(c);
            if self.collapsed.contains(&c) || node.is_leaf() {
                out.push(c);
                continue;
            }
            for &ch in node.children().iter().rev() {
                stack.push(ch);
            }
        }
        out.sort();
        out
    }

    /// The visible node that represents `id` in the current view: `id`
    /// itself when visible, otherwise its nearest collapsed ancestor.
    /// `None` when `id` is an expanded internal node (not drawn).
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of `tree`.
    pub fn representative(&self, tree: &ContainerTree, id: ContainerId) -> Option<ContainerId> {
        // The outermost collapsed ancestor wins (ancestors are returned
        // nearest-first, so scan from the root side).
        for &a in tree.ancestors(id).iter().rev() {
            if self.collapsed.contains(&a) {
                return Some(a);
            }
        }
        if self.collapsed.contains(&id) || tree.node(id).is_leaf() {
            Some(id)
        } else {
            None
        }
    }

    /// Number of collapsed containers.
    pub fn collapsed_count(&self) -> usize {
        self.collapsed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::ContainerKind;

    /// root → s1 → (c1 → h1,h2 ; c2 → h3) ; s2 → c3 → h4
    fn tree() -> (ContainerTree, Vec<ContainerId>) {
        let mut t = ContainerTree::new();
        let s1 = t.add(t.root(), "s1", ContainerKind::Site).unwrap();
        let s2 = t.add(t.root(), "s2", ContainerKind::Site).unwrap();
        let c1 = t.add(s1, "c1", ContainerKind::Cluster).unwrap();
        let c2 = t.add(s1, "c2", ContainerKind::Cluster).unwrap();
        let c3 = t.add(s2, "c3", ContainerKind::Cluster).unwrap();
        let h1 = t.add(c1, "h1", ContainerKind::Host).unwrap();
        let h2 = t.add(c1, "h2", ContainerKind::Host).unwrap();
        let h3 = t.add(c2, "h3", ContainerKind::Host).unwrap();
        let h4 = t.add(c3, "h4", ContainerKind::Host).unwrap();
        (t, vec![s1, s2, c1, c2, c3, h1, h2, h3, h4])
    }

    #[test]
    fn fully_expanded_shows_leaves() {
        let (t, ids) = tree();
        let v = ViewState::new();
        let visible = v.visible(&t);
        // h1..h4 only.
        assert_eq!(visible, vec![ids[5], ids[6], ids[7], ids[8]]);
    }

    #[test]
    fn collapse_hides_descendants() {
        let (t, ids) = tree();
        let [s1, _s2, c1, .., h3, _h4] =
            [ids[0], ids[1], ids[2], ids[3], ids[4], ids[7], ids[8]];
        let mut v = ViewState::new();
        v.collapse(c1);
        let visible = v.visible(&t);
        assert!(visible.contains(&c1));
        assert!(!visible.contains(&ids[5]), "h1 hidden");
        assert!(visible.contains(&h3), "h3 in other cluster still visible");
        // Collapsing an ancestor of a collapsed node hides it too.
        v.collapse(s1);
        let visible = v.visible(&t);
        assert!(visible.contains(&s1));
        assert!(!visible.contains(&c1));
    }

    #[test]
    fn collapse_at_depth_levels() {
        let (t, ids) = tree();
        let mut v = ViewState::new();
        // Site level (depth 1): s1, s2 aggregated.
        v.collapse_at_depth(&t, 1);
        assert_eq!(v.visible(&t), vec![ids[0], ids[1]]);
        // Cluster level (depth 2): c1, c2, c3.
        v.collapse_at_depth(&t, 2);
        assert_eq!(v.visible(&t), vec![ids[2], ids[3], ids[4]]);
        // Grid level (depth 0): one node.
        v.collapse_at_depth(&t, 0);
        assert_eq!(v.visible(&t), vec![t.root()]);
        // Host level: nothing collapsed (hosts are leaves).
        v.collapse_at_depth(&t, 3);
        assert_eq!(v.collapsed_count(), 0);
        assert_eq!(v.visible(&t).len(), 4);
    }

    #[test]
    fn expand_restores() {
        let (t, ids) = tree();
        let mut v = ViewState::new();
        v.collapse(ids[2]);
        assert!(v.is_collapsed(ids[2]));
        v.expand(ids[2]);
        assert!(!v.is_collapsed(ids[2]));
        assert_eq!(v.visible(&t).len(), 4);
        v.collapse(ids[0]);
        v.collapse(ids[1]);
        v.expand_all();
        assert_eq!(v.collapsed_count(), 0);
    }

    #[test]
    fn representative_resolution() {
        let (t, ids) = tree();
        let [s1, c1, h1] = [ids[0], ids[2], ids[5]];
        let mut v = ViewState::new();
        // Fully expanded: a leaf represents itself, internal nodes are
        // not drawn.
        assert_eq!(v.representative(&t, h1), Some(h1));
        assert_eq!(v.representative(&t, c1), None);
        v.collapse(c1);
        assert_eq!(v.representative(&t, h1), Some(c1));
        assert_eq!(v.representative(&t, c1), Some(c1));
        // Outermost collapsed ancestor wins.
        v.collapse(s1);
        assert_eq!(v.representative(&t, h1), Some(s1));
        assert_eq!(v.representative(&t, c1), Some(s1));
    }

    #[test]
    fn is_visible_consistent_with_visible() {
        let (t, ids) = tree();
        let mut v = ViewState::new();
        v.collapse(ids[2]);
        v.collapse(ids[1]);
        let listed: std::collections::HashSet<_> =
            v.visible(&t).into_iter().collect();
        for c in t.iter() {
            assert_eq!(
                listed.contains(&c.id()),
                v.is_visible(&t, c.id()),
                "mismatch on {}",
                c.name()
            );
        }
    }
}
