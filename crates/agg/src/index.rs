//! Incremental aggregation index: `O(log n)` Equation-1 queries.
//!
//! The naive evaluation of `F_{Γ,Δ}` ([`crate::integrate_group`])
//! rescans the container subtree on every call: it allocates the
//! subtree, probes the trace's signal table for every member and
//! integrates each surviving signal. That cost is paid again for every
//! visible node, for every metric, on every time-slice change — the
//! exact hot path the paper wants at frame rate (§3.2).
//!
//! [`AggIndex`] precomputes, once per session, a **merged prefix
//! integral** per `(metric, container)` pair: the breakpoint-sorted
//! piecewise-constant *group signal* of the whole subtree, with its
//! running antiderivative. After that, any slice integral over any
//! group is two binary searches ([`GroupSeries::integrate`]), and the
//! member count is a subtraction over an Euler-tour interval — no
//! rescan, whatever the slice.
//!
//! Construction is a bottom-up merge over the container tree in
//! deterministic (pre-order, child-id) order, so the floating-point
//! summation order — and therefore every query result — is
//! reproducible run to run.

use viva_obs::{Counter, Histogram, Recorder};
use viva_trace::{ContainerId, MetricId, SamplePrior, Signal, Trace};

use crate::multiscale::GroupAggregate;
use crate::stats::Summary;
use crate::timeslice::TimeSlice;

/// The merged subtree signal of one `(metric, container)` pair.
///
/// Holds the pointwise sum of every member signal as a single
/// piecewise-constant [`Signal`] (breakpoints merged, running
/// antiderivative maintained), plus the number of member containers
/// that carry the metric.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSeries {
    signal: Signal,
    carriers: usize,
    saturated: u64,
}

impl GroupSeries {
    /// Integral of the group signal over `[a, b]` — `F_{Γ,Δ}` in
    /// `O(log breakpoints)`.
    pub fn integrate(&self, a: f64, b: f64) -> f64 {
        self.signal.integrate(a, b)
    }

    /// Number of containers in the subtree carrying the metric.
    pub fn carriers(&self) -> usize {
        self.carriers
    }

    /// Number of merged breakpoints (diagnostics).
    pub fn len(&self) -> usize {
        self.signal.len()
    }

    /// Whether the merged signal has no breakpoints.
    pub fn is_empty(&self) -> bool {
        self.signal.is_empty()
    }

    /// Breakpoints at which the running sum left the finite range and
    /// was clamped during the merge (see `merge_signals`). 0 for any
    /// realistically-scaled trace; non-zero means the group signal is a
    /// saturated approximation near `±f64::MAX` instead of a panic.
    pub fn saturated(&self) -> u64 {
        self.saturated
    }
}

/// Per-metric slice of the index.
#[derive(Debug, Clone, Default, PartialEq)]
struct MetricIndex {
    /// Euler-tour entry times of the carrier containers, ascending.
    /// Carriers under a group = one binary-searched range.
    carrier_tins: Vec<u32>,
    /// Merged series per container (dense by container index); `None`
    /// when no container in the subtree carries the metric.
    series: Vec<Option<GroupSeries>>,
    /// Prefix sums of the per-container quarantine counters in
    /// pre-order (`len n + 1`), so the quarantined samples under any
    /// group are one Euler-tour subtraction. Empty when the metric has
    /// no quarantined samples anywhere (the common case).
    quarantine_prefix: Vec<u64>,
}

/// A precomputed multilevel aggregation index over one [`Trace`].
///
/// Built once at session creation ([`AggIndex::build`]); immutable
/// afterwards, exactly like the trace it indexes. Every query mirrors
/// the semantics of the naive path in [`crate::multiscale`] — the
/// proptests in this module pin that equivalence down.
#[derive(Debug, Clone)]
pub struct AggIndex {
    /// Euler-tour entry per container index; the subtree of `c` is the
    /// half-open tin interval `[tin[c], tout[c])`.
    tin: Vec<u32>,
    tout: Vec<u32>,
    /// Pre-order container sequence (`order[tin[c] as usize] == c`).
    order: Vec<ContainerId>,
    metrics: Vec<MetricIndex>,
    /// Cached query-metric handles; `None` until a live recorder is
    /// wired via [`set_recorder`](AggIndex::set_recorder).
    obs: Option<Box<AggObs>>,
}

/// Structural equality of the *data* (tour, carrier sets, merged
/// series with their prefix integrals, quarantine sums) — exactly what
/// "incremental insert is bit-identical to a rebuild" quantifies over.
/// Observability handles are wiring, not data, and are ignored.
impl PartialEq for AggIndex {
    fn eq(&self, other: &AggIndex) -> bool {
        self.tin == other.tin
            && self.tout == other.tout
            && self.order == other.order
            && self.metrics == other.metrics
    }
}

/// Pre-resolved handles for the query paths (`agg.index.*`).
#[derive(Debug, Clone)]
struct AggObs {
    /// `agg.index.queries` — slice queries answered (integrate /
    /// try_mean / aggregate).
    queries: Counter,
    /// `agg.index.aggregate.seconds` — wall clock of the full §6
    /// per-group aggregate (the `O(k log n)` query).
    aggregate_seconds: Histogram,
}

impl AggIndex {
    /// Builds the index over every metric of `trace`.
    pub fn build(trace: &Trace) -> AggIndex {
        let tree = trace.containers();
        let order = tree.subtree(tree.root());
        let n = tree.len();
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        for (i, &c) in order.iter().enumerate() {
            tin[c.index()] = i as u32;
        }
        // Pre-order: a subtree is contiguous, so tout is the max tin in
        // the subtree + 1, computed children-first by reverse walk.
        for &c in order.iter().rev() {
            let mut hi = tin[c.index()] + 1;
            for &ch in tree.node(c).children() {
                hi = hi.max(tout[ch.index()]);
            }
            tout[c.index()] = hi;
        }

        let metrics = (0..trace.metrics().len())
            .map(|mi| Self::build_metric(trace, MetricId::from_index(mi), &order, &tin))
            .collect();
        AggIndex { tin, tout, order, metrics, obs: None }
    }

    /// [`build`](AggIndex::build) with observability: the build is
    /// timed into `agg.index.build.seconds`, counted in
    /// `agg.index.builds`, and the returned index reports its queries
    /// into `recorder` (see [`set_recorder`](AggIndex::set_recorder)).
    pub fn build_observed(trace: &Trace, recorder: &Recorder) -> AggIndex {
        let mut idx = {
            let _span = recorder.span("agg.index.build.seconds");
            let _phase = recorder.tracer().phase("agg.build");
            AggIndex::build(trace)
        };
        recorder.counter("agg.index.builds").inc();
        idx.set_recorder(recorder.clone());
        idx
    }

    /// Wires an observability recorder into the query paths. A disabled
    /// recorder is discarded entirely, restoring the uninstrumented
    /// fast path.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.obs = recorder.is_enabled().then(|| {
            Box::new(AggObs {
                queries: recorder.counter("agg.index.queries"),
                aggregate_seconds: recorder.histogram("agg.index.aggregate.seconds"),
            })
        });
    }

    fn build_metric(
        trace: &Trace,
        metric: MetricId,
        order: &[ContainerId],
        tin: &[u32],
    ) -> MetricIndex {
        // Quarantine counters are independent of the signals: an
        // all-NaN series quarantines every sample and leaves no signal
        // at all, yet its counts must still aggregate spatially.
        let mut quarantine_prefix = Vec::new();
        if order.iter().any(|&c| trace.quarantined(c, metric) > 0) {
            quarantine_prefix.reserve(order.len() + 1);
            quarantine_prefix.push(0u64);
            for &c in order {
                let last = *quarantine_prefix.last().expect("seeded with 0");
                quarantine_prefix.push(last + trace.quarantined(c, metric));
            }
        }

        let signals = trace.signals_for_metric(metric);
        if signals.is_empty() {
            return MetricIndex { quarantine_prefix, ..MetricIndex::default() };
        }
        let mut carrier_tins: Vec<u32> = signals.iter().map(|&(c, _)| tin[c.index()]).collect();
        carrier_tins.sort_unstable();

        let tree = trace.containers();
        let mut series: Vec<Option<GroupSeries>> = vec![None; tree.len()];
        // Children precede parents in reverse pre-order.
        for &c in order.iter().rev() {
            let own = trace.signal(c, metric);
            let node = tree.node(c);
            let child_count = node
                .children()
                .iter()
                .filter(|ch| series[ch.index()].is_some())
                .count();
            let entry = match (own, child_count) {
                (None, 0) => None,
                // A carrier leaf (or a carrier whose descendants carry
                // nothing): the group signal *is* the signal, so slice
                // queries match `Signal::integrate` bit for bit.
                (Some(sig), 0) => {
                    Some(GroupSeries { signal: sig.clone(), carriers: 1, saturated: 0 })
                }
                (None, 1) => {
                    let ch = node
                        .children()
                        .iter()
                        .find(|ch| series[ch.index()].is_some())
                        .expect("counted one");
                    series[ch.index()].clone()
                }
                _ => {
                    // Deterministic merge order: own signal first, then
                    // children in declaration order.
                    let mut parts: Vec<&Signal> = Vec::with_capacity(child_count + 1);
                    let mut carriers = 0;
                    let mut saturated = 0;
                    if let Some(sig) = own {
                        parts.push(sig);
                        carriers += 1;
                    }
                    for &ch in node.children() {
                        if let Some(s) = &series[ch.index()] {
                            parts.push(&s.signal);
                            carriers += s.carriers;
                            saturated += s.saturated;
                        }
                    }
                    let (signal, clamped) = merge_signals(&parts);
                    saturated += clamped;
                    Some(GroupSeries { signal, carriers, saturated })
                }
            };
            series[c.index()] = entry;
        }
        MetricIndex { carrier_tins, series, quarantine_prefix }
    }

    fn metric_index(&self, metric: MetricId) -> Option<&MetricIndex> {
        self.metrics.get(metric.index())
    }

    /// Incrementally folds one new sample into the index, **after** the
    /// sample has been applied to `trace` (via
    /// [`viva_trace::Trace::live_push_sample`], whose returned
    /// [`SamplePrior`] is passed through here).
    ///
    /// The result is bit-identical to `AggIndex::build(trace)` — the
    /// proptests below pin that down. The common case (an existing
    /// carrier appending at or after every affected group's last
    /// breakpoint) updates only the `O(depth)` ancestor chain; anything
    /// the fast path cannot reproduce exactly (new carrier, time before
    /// an ancestor's last breakpoint because a sibling is ahead,
    /// saturated series, overflow) falls back to rebuilding that one
    /// metric from the already-updated trace, so the index is *always*
    /// consistent on return.
    ///
    /// Topology and metric registration are append-only in live
    /// sessions and arrive as structural records, which force a full
    /// [`AggIndex::build`] upstream — this method only handles samples
    /// on containers and metrics the index already knows.
    pub fn insert_sample(
        &mut self,
        trace: &Trace,
        container: ContainerId,
        metric: MetricId,
        t: f64,
        v: f64,
        prior: SamplePrior,
    ) {
        let mi = metric.index();
        if mi >= self.metrics.len() || container.index() >= self.tin.len() {
            // A metric or container the index has never seen arrives
            // via a structural record, which rebuilds the whole index
            // upstream; tolerate the call anyway.
            return;
        }
        if !self.try_fast_insert(trace, container, metric, t, v, prior) {
            self.metrics[mi] = Self::build_metric(trace, metric, &self.order, &self.tin);
        }
    }

    /// The `O(depth)` fast path of [`insert_sample`](Self::insert_sample).
    /// Returns `false` when the update cannot be reproduced
    /// bit-identically without a rebuild.
    fn try_fast_insert(
        &mut self,
        trace: &Trace,
        container: ContainerId,
        metric: MetricId,
        t: f64,
        v: f64,
        prior: SamplePrior,
    ) -> bool {
        if !prior.existed || !t.is_finite() || !v.is_finite() {
            return false;
        }
        let midx = &mut self.metrics[metric.index()];
        let tree = trace.containers();
        // Ancestor chain, leaf first — the update order (children
        // before parents, exactly like the build's reverse pre-order).
        let mut path = vec![container];
        let mut cur = container;
        while let Some(p) = tree.node(cur).parent() {
            path.push(p);
            cur = p;
        }
        // Pre-flight: every group on the chain must already have a
        // series (the carrier existed), must be unsaturated (clamped
        // sums don't obey pure delta arithmetic), and must end at or
        // before `t` (a sibling ahead of `t` would force a mid-series
        // merge insert).
        for &g in &path {
            match &midx.series[g.index()] {
                Some(s) if s.saturated == 0 => match s.signal.last_time() {
                    Some(last) if t >= last => {}
                    _ => return false,
                },
                _ => return false,
            }
        }
        // Compute each group's new breakpoint value by replaying the
        // arithmetic its `build_metric` arm would perform, bottom-up so
        // parents read already-updated children.
        for (step, &g) in path.iter().enumerate() {
            let node = tree.node(g);
            let own = trace.signal(g, metric);
            let carrier_children: Vec<ContainerId> = node
                .children()
                .iter()
                .copied()
                .filter(|ch| midx.series[ch.index()].is_some())
                .collect();
            let series_last = |s: &GroupSeries| -> (Option<f64>, f64, f64) {
                let sig = &s.signal;
                let n = sig.len();
                let last_v = sig.values().last().copied().unwrap_or(0.0);
                let prev_v = if n >= 2 { sig.values()[n - 2] } else { 0.0 };
                (sig.last_time(), last_v, prev_v)
            };
            let val = match (own, carrier_children.len()) {
                // Leaf arm: the group series mirrors the raw signal
                // (which the trace push already updated) — copy its new
                // last value rather than re-deriving it through delta
                // arithmetic, which wouldn't be bit-identical.
                (Some(sig), 0) => {
                    debug_assert_eq!(g, container);
                    sig.values().last().copied().unwrap_or(v)
                }
                // Clone arm: mirrors the single carrier child, which
                // the previous iteration already updated.
                (None, 1) => {
                    let ch = carrier_children[0];
                    debug_assert_eq!(ch, path[step - 1]);
                    match &midx.series[ch.index()] {
                        Some(s) => s.signal.values().last().copied().unwrap_or(v),
                        None => return false,
                    }
                }
                // Merge arm: the series is a delta sweep over parts
                // (own signal first, carrier children in declaration
                // order) — replay exactly the sweep's float ops for the
                // breakpoints at `t`.
                _ => {
                    let s = midx.series[g.index()].as_ref().expect("pre-flight checked");
                    let (s_last_t, s_last_v, s_prev_v) = series_last(s);
                    let tied = s_last_t == Some(t);
                    // Parts in build order, as (last_time, last, prev).
                    let mut parts: Vec<(Option<f64>, f64, f64)> = Vec::new();
                    if let Some(sig) = own {
                        let n = sig.len();
                        parts.push((
                            sig.last_time(),
                            sig.values().last().copied().unwrap_or(0.0),
                            if n >= 2 { sig.values()[n - 2] } else { 0.0 },
                        ));
                    }
                    for &ch in node.children() {
                        if let Some(cs) = &midx.series[ch.index()] {
                            parts.push(series_last(cs));
                        }
                    }
                    let mut acc = if tied {
                        // Re-collapse every part breakpoint at `t` onto
                        // the value just before `t`, in part order —
                        // the sweep's stable-sort order.
                        s_prev_v
                    } else {
                        s_last_v
                    };
                    let mut contributed = false;
                    for (p_last_t, p_last, p_prev) in parts {
                        if p_last_t == Some(t) {
                            acc += p_last - p_prev;
                            contributed = true;
                            if !acc.is_finite() {
                                // The rebuild sweep would clamp here —
                                // different arithmetic from this point
                                // on, so replay it for real.
                                return false;
                            }
                        }
                    }
                    if !contributed {
                        // The updated part always ends at `t` by now,
                        // so this is unreachable — but if the invariant
                        // ever breaks, a rebuild is correct and a
                        // silent push is not.
                        return false;
                    }
                    acc
                }
            };
            let s = midx.series[g.index()].as_mut().expect("pre-flight checked");
            s.signal.push(t, val).expect("t >= last and finite by pre-flight");
        }
        true
    }

    /// Folds a newly-quarantined sample (a non-finite value on a valid
    /// carrier pair) into the index: only the metric's quarantine
    /// prefix sums change, rebuilt in `O(n)` from the already-updated
    /// trace — bit-identical to a full rebuild's.
    pub fn note_quarantine(&mut self, trace: &Trace, metric: MetricId) {
        let mi = metric.index();
        if mi >= self.metrics.len() {
            return;
        }
        let mut quarantine_prefix = Vec::new();
        if self.order.iter().any(|&c| trace.quarantined(c, metric) > 0) {
            quarantine_prefix.reserve(self.order.len() + 1);
            quarantine_prefix.push(0u64);
            for &c in &self.order {
                let last = *quarantine_prefix.last().expect("seeded with 0");
                quarantine_prefix.push(last + trace.quarantined(c, metric));
            }
        }
        self.metrics[mi].quarantine_prefix = quarantine_prefix;
    }

    /// The merged series of `(metric, group)`, `None` when no container
    /// under `group` carries the metric.
    ///
    /// # Panics
    ///
    /// Panics when `group` is not part of the indexed trace.
    pub fn series(&self, metric: MetricId, group: ContainerId) -> Option<&GroupSeries> {
        self.metric_index(metric)?.series.get(group.index())?.as_ref()
    }

    /// `F_{Γ,Δ}` over `subtree(group) × slice` in `O(log n)` —
    /// the indexed twin of [`crate::integrate_group`].
    ///
    /// # Panics
    ///
    /// Panics when `group` is not part of the indexed trace.
    pub fn integrate(&self, metric: MetricId, group: ContainerId, slice: TimeSlice) -> f64 {
        if let Some(obs) = &self.obs {
            obs.queries.inc();
        }
        self.series(metric, group)
            .map_or(0.0, |s| s.integrate(slice.start(), slice.end()))
    }

    /// Number of containers under `group` (inclusive) carrying
    /// `metric`, in `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics when `group` is not part of the indexed trace.
    pub fn carrier_count(&self, metric: MetricId, group: ContainerId) -> usize {
        let Some(mi) = self.metric_index(metric) else { return 0 };
        let (lo, hi) = (self.tin[group.index()], self.tout[group.index()]);
        mi.carrier_tins.partition_point(|&t| t < hi)
            - mi.carrier_tins.partition_point(|&t| t < lo)
    }

    /// The carrier containers under `group`, in pre-order — the same
    /// enumeration order as the naive subtree scan, without walking
    /// non-carriers.
    ///
    /// # Panics
    ///
    /// Panics when `group` is not part of the indexed trace.
    pub fn carriers_under(
        &self,
        metric: MetricId,
        group: ContainerId,
    ) -> impl Iterator<Item = ContainerId> + '_ {
        let range = match self.metric_index(metric) {
            Some(mi) => {
                let (lo, hi) = (self.tin[group.index()], self.tout[group.index()]);
                let a = mi.carrier_tins.partition_point(|&t| t < lo);
                let b = mi.carrier_tins.partition_point(|&t| t < hi);
                &mi.carrier_tins[a..b]
            }
            None => &[][..],
        };
        range.iter().map(|&t| self.order[t as usize])
    }

    /// Non-finite samples of `metric` quarantined at ingestion across
    /// the subtree of `group`, in `O(1)` — the indexed twin of
    /// [`viva_trace::Trace::quarantined_under`]. 0 for cleanly-loaded
    /// traces.
    ///
    /// # Panics
    ///
    /// Panics when `group` is not part of the indexed trace.
    pub fn quarantined_under(&self, metric: MetricId, group: ContainerId) -> u64 {
        let Some(mi) = self.metric_index(metric) else { return 0 };
        if mi.quarantine_prefix.is_empty() {
            return 0;
        }
        let (lo, hi) = (self.tin[group.index()], self.tout[group.index()]);
        mi.quarantine_prefix[hi as usize] - mi.quarantine_prefix[lo as usize]
    }

    /// Quarantined samples summed over *all* metrics under `group` —
    /// what a view badge wants.
    ///
    /// # Panics
    ///
    /// Panics when `group` is not part of the indexed trace.
    pub fn quarantined_under_all(&self, group: ContainerId) -> u64 {
        (0..self.metrics.len())
            .map(|mi| self.quarantined_under(MetricId::from_index(mi), group))
            .sum()
    }

    /// Total clamped breakpoints across every merged series of `metric`
    /// (see [`GroupSeries::saturated`]); 0 outside adversarial inputs.
    pub fn saturated_total(&self, metric: MetricId) -> u64 {
        let Some(mi) = self.metric_index(metric) else { return 0 };
        // The root series accumulates every child's counter.
        mi.series
            .first()
            .and_then(|s| s.as_ref())
            .map_or(0, GroupSeries::saturated)
    }

    /// The indexed twin of [`crate::try_mean_over_group`]: space-time
    /// mean in `O(log n)`, `None` when the slice is empty or nothing
    /// under `group` carries the metric.
    ///
    /// # Panics
    ///
    /// Panics when `group` is not part of the indexed trace.
    pub fn try_mean(&self, metric: MetricId, group: ContainerId, slice: TimeSlice) -> Option<f64> {
        if let Some(obs) = &self.obs {
            obs.queries.inc();
        }
        let series = self.series(metric, group)?;
        if slice.width() <= 0.0 {
            return None;
        }
        Some(series.integrate(slice.start(), slice.end()) / (series.carriers as f64 * slice.width()))
    }

    /// The indexed twin of [`GroupAggregate::compute`]: full per-group
    /// aggregate with the §6 statistical indicators.
    ///
    /// The summary needs one value per member, so this is `O(k log n)`
    /// for `k` carriers — but it skips the subtree walk, and the
    /// per-member integrals are read from the members' own prefix sums,
    /// bit-identical to the naive path.
    ///
    /// # Panics
    ///
    /// Panics when `group` is not part of the indexed trace.
    pub fn aggregate(
        &self,
        trace: &Trace,
        metric: MetricId,
        group: ContainerId,
        slice: TimeSlice,
    ) -> GroupAggregate {
        let _timer = self.obs.as_ref().map(|obs| {
            obs.queries.inc();
            obs.aggregate_seconds.start_timer()
        });
        let width = slice.width();
        let mut integral = 0.0;
        let mut members = 0usize;
        let means = self
            .carriers_under(metric, group)
            .filter_map(|c| trace.signal(c, metric))
            .map(|s| {
                let v = s.integrate(slice.start(), slice.end());
                integral += v;
                members += 1;
                if width > 0.0 {
                    v / width
                } else {
                    0.0
                }
            })
            .collect::<Vec<f64>>();
        GroupAggregate {
            group,
            members,
            integral,
            summary: Summary::of(means),
            quarantined: self.quarantined_under(metric, group),
        }
    }
}

/// Merges piecewise-constant signals into their pointwise sum in
/// `O(total breakpoints × log)`, keeping the running prefix integral.
///
/// Equal-time breakpoints across parts collapse into one. The merge is
/// a stable sweep over `(time, value-delta)` events, so summation order
/// is fixed by the caller's part order — deterministic results.
///
/// Individual signals are finite by construction ([`Signal::push`]
/// rejects NaN/∞), but the *sum* of many finite signals can still
/// overflow `f64`. `Signal::push` would reject the infinite sample and
/// this merge would panic deep inside session construction — on
/// adversarial input, not a programming error. Instead the running sum
/// saturates at `±f64::MAX`; the second return value counts the clamped
/// breakpoints so callers can surface the degradation.
fn merge_signals(parts: &[&Signal]) -> (Signal, u64) {
    let total: usize = parts.iter().map(|s| s.len()).sum();
    let mut events: Vec<(f64, f64)> = Vec::with_capacity(total);
    for part in parts {
        let (times, values) = (part.times(), part.values());
        let mut prev = 0.0;
        for (&t, &v) in times.iter().zip(values) {
            events.push((t, v - prev));
            prev = v;
        }
    }
    // Stable: equal times keep part order, fixing float summation.
    events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = Signal::new();
    let mut running = 0.0;
    let mut clamped = 0u64;
    for (t, delta) in events {
        running += delta;
        if !running.is_finite() {
            running = if running > 0.0 { f64::MAX } else { -f64::MAX };
            clamped += 1;
        }
        // Push at an existing last time overwrites — exactly the
        // collapse of simultaneous breakpoints we want.
        out.push(t, running).expect("sorted finite times are monotonic");
    }
    (out, clamped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiscale::{integrate_group, try_mean_over_group};
    use viva_trace::{ContainerKind, TraceBuilder};

    /// root → {c1: h0 h1, c2: h2 h3}, power on all hosts, bandwidth on
    /// a root-level link, plus a metric with no signals at all.
    fn trace() -> Trace {
        let mut b = TraceBuilder::new();
        let m = b.metric("power_used", "MFlop/s");
        let bw = b.metric("bandwidth", "Mbit/s");
        let _unused = b.metric("ghost", "u");
        let mut hosts = Vec::new();
        for cn in ["c1", "c2"] {
            let cl = b.new_container(b.root(), cn, ContainerKind::Cluster).unwrap();
            for i in 0..2 {
                let h = b
                    .new_container(cl, format!("{cn}-h{i}"), ContainerKind::Host)
                    .unwrap();
                hosts.push(h);
            }
        }
        for (i, &h) in hosts.iter().enumerate() {
            b.set_variable(0.0, h, m, 10.0 * (i + 1) as f64).unwrap();
            b.set_variable(2.0 + i as f64, h, m, 5.0).unwrap();
        }
        let l = b.new_container(b.root(), "bb", ContainerKind::Link).unwrap();
        b.set_variable(0.0, l, bw, 1000.0).unwrap();
        b.finish(10.0)
    }

    #[test]
    fn indexed_integral_matches_naive() {
        let t = trace();
        let idx = AggIndex::build(&t);
        let m = t.metric_id("power_used").unwrap();
        let root = t.containers().root();
        for slice in [
            TimeSlice::new(0.0, 10.0),
            TimeSlice::new(1.5, 3.5),
            TimeSlice::new(4.0, 4.0),
            TimeSlice::new(9.0, 10.0),
        ] {
            for c in t.containers().iter() {
                let naive = integrate_group(&t, m, c.id(), slice);
                let fast = idx.integrate(m, c.id(), slice);
                assert!(
                    (naive - fast).abs() <= 1e-9 * naive.abs().max(1.0),
                    "{:?} over {slice}: naive {naive} vs indexed {fast}",
                    c.id()
                );
            }
        }
        assert_eq!(idx.carrier_count(m, root), 4);
        let c1 = t.containers().by_name("c1").unwrap().id();
        assert_eq!(idx.carrier_count(m, c1), 2);
    }

    #[test]
    fn leaf_series_is_bit_identical_to_signal() {
        let t = trace();
        let idx = AggIndex::build(&t);
        let m = t.metric_id("power_used").unwrap();
        let h = t.containers().by_name("c1-h0").unwrap().id();
        let sig = t.signal(h, m).unwrap();
        for (a, b) in [(0.0, 10.0), (1.3, 7.7), (2.0, 2.0)] {
            assert_eq!(idx.integrate(m, h, TimeSlice::new(a, b)), sig.integrate(a, b));
        }
    }

    #[test]
    fn observed_build_and_queries_are_tallied_without_changing_results() {
        let t = trace();
        let r = Recorder::enabled();
        let plain = AggIndex::build(&t);
        let observed = AggIndex::build_observed(&t, &r);
        assert_eq!(r.counter("agg.index.builds").get(), 1);
        assert_eq!(r.histogram("agg.index.build.seconds").count(), 1);

        let m = t.metric_id("power_used").unwrap();
        let root = t.containers().root();
        let slice = TimeSlice::new(1.0, 9.0);
        assert_eq!(observed.integrate(m, root, slice), plain.integrate(m, root, slice));
        assert_eq!(observed.try_mean(m, root, slice), plain.try_mean(m, root, slice));
        assert_eq!(
            observed.aggregate(&t, m, root, slice),
            plain.aggregate(&t, m, root, slice)
        );
        assert_eq!(r.counter("agg.index.queries").get(), 3);
        assert_eq!(r.histogram("agg.index.aggregate.seconds").count(), 1);

        // A disabled recorder restores the uninstrumented path.
        let mut quiet = plain.clone();
        quiet.set_recorder(Recorder::disabled());
        quiet.integrate(m, root, slice);
        assert_eq!(r.counter("agg.index.queries").get(), 3);
    }

    #[test]
    fn metric_without_signals_is_empty_everywhere() {
        let t = trace();
        let idx = AggIndex::build(&t);
        let ghost = t.metric_id("ghost").unwrap();
        let root = t.containers().root();
        assert_eq!(idx.integrate(ghost, root, TimeSlice::new(0.0, 10.0)), 0.0);
        assert_eq!(idx.carrier_count(ghost, root), 0);
        assert_eq!(idx.try_mean(ghost, root, TimeSlice::new(0.0, 10.0)), None);
        assert!(idx.series(ghost, root).is_none());
        let agg = idx.aggregate(&t, ghost, root, TimeSlice::new(0.0, 10.0));
        assert!(agg.is_empty());
        assert_eq!(agg, GroupAggregate::compute(&t, ghost, root, TimeSlice::new(0.0, 10.0)));
    }

    #[test]
    fn unregistered_metric_id_is_harmless() {
        let t = trace();
        let idx = AggIndex::build(&t);
        let bogus = MetricId::from_index(99);
        let root = t.containers().root();
        assert_eq!(idx.integrate(bogus, root, TimeSlice::new(0.0, 10.0)), 0.0);
        assert_eq!(idx.carrier_count(bogus, root), 0);
        assert_eq!(idx.carriers_under(bogus, root).count(), 0);
    }

    #[test]
    fn try_mean_matches_naive_semantics() {
        let t = trace();
        let idx = AggIndex::build(&t);
        let m = t.metric_id("power_used").unwrap();
        let c1 = t.containers().by_name("c1").unwrap().id();
        for slice in [TimeSlice::new(0.0, 10.0), TimeSlice::new(3.0, 3.0), TimeSlice::new(8.0, 9.5)] {
            let naive = try_mean_over_group(&t, m, c1, slice);
            let fast = idx.try_mean(m, c1, slice);
            match (naive, fast) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}")
                }
                other => panic!("presence mismatch over {slice}: {other:?}"),
            }
        }
    }

    #[test]
    fn aggregate_matches_naive_bit_for_bit() {
        let t = trace();
        let idx = AggIndex::build(&t);
        let m = t.metric_id("power_used").unwrap();
        for c in t.containers().iter() {
            for slice in [TimeSlice::new(0.0, 10.0), TimeSlice::new(1.0, 6.0)] {
                let naive = GroupAggregate::compute(&t, m, c.id(), slice);
                let fast = idx.aggregate(&t, m, c.id(), slice);
                // Same enumeration order, same per-member arithmetic:
                // full equality, not tolerance.
                assert_eq!(naive, fast, "at {:?} over {slice}", c.id());
            }
        }
    }

    #[test]
    fn carriers_under_enumerates_preorder() {
        let t = trace();
        let idx = AggIndex::build(&t);
        let m = t.metric_id("power_used").unwrap();
        let root = t.containers().root();
        let naive: Vec<ContainerId> = t
            .containers()
            .subtree(root)
            .into_iter()
            .filter(|&c| t.signal(c, m).is_some())
            .collect();
        let fast: Vec<ContainerId> = idx.carriers_under(m, root).collect();
        assert_eq!(naive, fast);
    }

    #[test]
    fn merge_collapses_simultaneous_breakpoints() {
        let mut a = Signal::new();
        a.push(0.0, 1.0).unwrap();
        a.push(5.0, 3.0).unwrap();
        let mut b = Signal::new();
        b.push(5.0, 2.0).unwrap();
        let (s, clamped) = merge_signals(&[&a, &b]);
        assert_eq!(clamped, 0);
        assert_eq!(s.len(), 2, "t=5 appears once");
        assert_eq!(s.value_at(1.0), 1.0);
        assert_eq!(s.value_at(6.0), 5.0);
        assert_eq!(s.integrate(0.0, 10.0), a.integrate(0.0, 10.0) + b.integrate(0.0, 10.0));
    }

    #[test]
    fn merge_saturates_instead_of_panicking() {
        let mut a = Signal::new();
        a.push(0.0, f64::MAX).unwrap();
        let mut b = Signal::new();
        b.push(0.0, f64::MAX).unwrap();
        let (s, clamped) = merge_signals(&[&a, &b]);
        assert_eq!(clamped, 1);
        assert_eq!(s.value_at(1.0), f64::MAX, "sum clamped, not infinite");
    }

    #[test]
    fn index_build_survives_overflowing_sums() {
        let mut b = TraceBuilder::new();
        let cl = b.new_container(b.root(), "c", ContainerKind::Cluster).unwrap();
        let m = b.metric("x", "u");
        for i in 0..3 {
            let h = b.new_container(cl, format!("h{i}"), ContainerKind::Host).unwrap();
            // Each signal is finite and legal on its own; only the
            // subtree sum overflows.
            b.set_variable(0.0, h, m, f64::MAX).unwrap();
        }
        let t = b.finish(1.0);
        let idx = AggIndex::build(&t);
        let root = t.containers().root();
        assert!(idx.saturated_total(m) > 0, "clamp was recorded");
        let s = idx.series(m, root).expect("series exists");
        assert_eq!(s.carriers(), 3);
        assert!(s.saturated() > 0);
    }

    #[test]
    fn quarantine_counters_aggregate_spatially() {
        // Lenient-load a trace whose NaN samples quarantine on two
        // hosts of the same cluster; counts roll up the tree.
        use viva_trace::TraceLoader;
        let text = "span,0.0,10.0\n\
                    container,1,0,cluster,c1\n\
                    container,2,1,host,h0\n\
                    container,3,1,host,h1\n\
                    container,4,0,host,lone\n\
                    metric,0,MFlop/s,power_used\n\
                    var,0.0,2,0,1.0\n\
                    var,1.0,2,0,NaN\n\
                    var,0.0,3,0,NaN\n\
                    var,2.0,3,0,NaN\n\
                    var,0.0,4,0,5.0\n";
        let r = TraceLoader::new().lenient().load_str(text).unwrap();
        assert_eq!(r.quarantined, 3);
        let t = &r.trace;
        let idx = AggIndex::build(t);
        let m = t.metric_id("power_used").unwrap();
        let root = t.containers().root();
        let c1 = t.containers().by_name("c1").unwrap().id();
        let h1 = t.containers().by_name("h1").unwrap().id();
        for g in [root, c1, h1] {
            assert_eq!(idx.quarantined_under(m, g), t.quarantined_under(g, m), "at {g}");
        }
        assert_eq!(idx.quarantined_under(m, root), 3);
        assert_eq!(idx.quarantined_under(m, c1), 3);
        assert_eq!(idx.quarantined_under(m, h1), 2, "all-NaN series still counts");
        assert_eq!(idx.quarantined_under_all(root), 3);
        // h1 is all-NaN: no signal, no carrier — but the aggregate
        // still reports the quarantine so views can badge it.
        assert!(t.signal(h1, m).is_none());
        let agg = idx.aggregate(t, m, h1, TimeSlice::new(0.0, 10.0));
        assert!(agg.is_empty());
        assert_eq!(agg.quarantined, 2);
        assert_eq!(agg, GroupAggregate::compute(t, m, h1, TimeSlice::new(0.0, 10.0)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::multiscale::{integrate_group, try_mean_over_group, GroupAggregate};
    use proptest::prelude::*;
    use proptest::test_runner::TestCaseError;
    use viva_trace::{ContainerKind, TraceBuilder};

    /// A random 3-level trace: 1–3 clusters × 1–3 hosts, each host with
    /// a random piecewise-constant `power_used` signal; roughly one
    /// host in five is silent (no signal) to exercise carrier
    /// filtering.
    fn random_trace() -> impl Strategy<Value = Trace> {
        proptest::collection::vec(
            proptest::collection::vec(
                (0usize..5, proptest::collection::vec((0.0f64..100.0, 0.0f64..500.0), 1..10)),
                1..4,
            ),
            1..4,
        )
        .prop_map(|clusters| {
            let mut b = TraceBuilder::new();
            let m = b.metric("power_used", "MFlop/s");
            for (ci, hosts) in clusters.into_iter().enumerate() {
                let cl = b
                    .new_container(b.root(), format!("c{ci}"), ContainerKind::Cluster)
                    .unwrap();
                for (hi, (silent_die, mut points)) in hosts.into_iter().enumerate() {
                    let h = b
                        .new_container(cl, format!("c{ci}-h{hi}"), ContainerKind::Host)
                        .unwrap();
                    if silent_die == 0 {
                        continue; // silent host: no signal at all
                    }
                    points.sort_by(|a, b| a.0.total_cmp(&b.0));
                    for (t, v) in points {
                        b.set_variable(t, h, m, v).unwrap();
                    }
                }
            }
            b.finish(100.0)
        })
    }

    /// The `O(depth)` fast path itself (not its rebuild fallback) must
    /// carry the common streaming cases: append, equal-time collapse,
    /// and sibling-tie refold — asserted by calling it directly.
    #[test]
    fn fast_insert_handles_append_tie_and_sibling_tie() {
        use viva_trace::{ContainerKind, TraceBuilder};
        let mut b = TraceBuilder::new();
        let m = b.metric("power_used", "MFlop/s");
        let c1 = b.new_container(b.root(), "c1", ContainerKind::Cluster).unwrap();
        let h0 = b.new_container(c1, "c1-h0", ContainerKind::Host).unwrap();
        let h1 = b.new_container(c1, "c1-h1", ContainerKind::Host).unwrap();
        let c2 = b.new_container(b.root(), "c2", ContainerKind::Cluster).unwrap();
        let h2 = b.new_container(c2, "c2-h0", ContainerKind::Host).unwrap();
        for (i, &h) in [h0, h1, h2].iter().enumerate() {
            b.set_variable(0.0, h, m, 10.0 * (i + 1) as f64).unwrap();
            b.set_variable(2.0 + i as f64, h, m, 5.0).unwrap();
        }
        let mut trace = b.finish(10.0);
        let mut idx = AggIndex::build(&trace);
        // Pure append past every last breakpoint.
        let prior = trace.live_push_sample(h0, m, 20.0, 42.0).unwrap();
        assert!(idx.try_fast_insert(&trace, h0, m, 20.0, 42.0, prior));
        assert!(idx == AggIndex::build(&trace), "append diverged");
        // Sibling tie: h1 lands at h0's new last time — the parent
        // series collapses the equal-time breakpoints via refold.
        let prior = trace.live_push_sample(h1, m, 20.0, 7.0).unwrap();
        assert!(idx.try_fast_insert(&trace, h1, m, 20.0, 7.0, prior));
        assert!(idx == AggIndex::build(&trace), "sibling tie diverged");
        // Same-signal tie: overwrite h0's breakpoint at 20.0.
        let prior = trace.live_push_sample(h0, m, 20.0, 1.5).unwrap();
        assert!(prior.tied);
        assert!(idx.try_fast_insert(&trace, h0, m, 20.0, 1.5, prior));
        assert!(idx == AggIndex::build(&trace), "tie overwrite diverged");
        // Cross-sibling out-of-order: 15.0 is past h2's own clock but
        // precedes the *root's* last breakpoint (20.0 from c1) — the
        // fast path must refuse and the fallback rebuild take over.
        let prior = trace.live_push_sample(h2, m, 15.0, 3.0).unwrap();
        assert!(!idx.try_fast_insert(&trace, h2, m, 15.0, 3.0, prior));
        idx.insert_sample(&trace, h2, m, 15.0, 3.0, prior);
        assert!(idx == AggIndex::build(&trace), "rebuild fallback diverged");
    }

    proptest! {
        /// The tentpole invariant: the incremental index agrees with
        /// the naive full-rescan aggregation on random traces and
        /// random slices, for every container of the tree.
        #[test]
        fn index_agrees_with_naive_rescan(trace in random_trace(),
                                          a in 0.0f64..100.0, w in 0.0f64..100.0) {
            let idx = AggIndex::build(&trace);
            let m = trace.metric_id("power_used").unwrap();
            let slice = TimeSlice::new(a, (a + w).min(100.0));
            for c in trace.containers().iter() {
                let naive = integrate_group(&trace, m, c.id(), slice);
                let fast = idx.integrate(m, c.id(), slice);
                prop_assert!((naive - fast).abs() <= 1e-6 * naive.abs().max(1.0),
                             "{:?}: naive {naive} vs indexed {fast}", c.id());
                let naive_agg = GroupAggregate::compute(&trace, m, c.id(), slice);
                let fast_agg = idx.aggregate(&trace, m, c.id(), slice);
                prop_assert_eq!(&naive_agg, &fast_agg, "aggregate mismatch at {:?}", c.id());
                match (try_mean_over_group(&trace, m, c.id(), slice), idx.try_mean(m, c.id(), slice)) {
                    (None, None) => {}
                    (Some(x), Some(y)) =>
                        prop_assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0), "{x} vs {y}"),
                    other => return Err(TestCaseError::fail(format!("presence mismatch {other:?}"))),
                }
            }
        }

        /// Degenerate ingestion inputs — out-of-order events, duplicate
        /// timestamps, NaN samples up to whole all-NaN series — go
        /// through a lenient load without panicking, and the index
        /// agrees with the naive rescan on the surviving trace,
        /// including over zero-width slices and for the quarantine
        /// counters.
        #[test]
        fn index_handles_degenerate_ingest(
            events in proptest::collection::vec(
                // (host 0..3, discrete time → duplicates, NaN die)
                (0usize..3, 0u32..6, 0usize..4, 0.0f64..100.0),
                0..40,
            ),
            a in 0.0f64..10.0,
        ) {
            use std::fmt::Write as _;
            use viva_trace::TraceLoader;
            let mut csv = String::from(
                "span,0.0,10.0\n\
                 container,1,0,cluster,c\n\
                 container,2,1,host,h0\n\
                 container,3,1,host,h1\n\
                 container,4,1,host,h2\n\
                 metric,0,MFlop/s,power_used\n",
            );
            for (h, t, nan_die, v) in events {
                // Events arrive in arbitrary order: the lenient loader
                // must drop the non-monotonic ones, never panic.
                if nan_die == 0 {
                    let _ = writeln!(csv, "var,{}.0,{},0,NaN", t, h + 2);
                } else {
                    let _ = writeln!(csv, "var,{}.0,{},0,{v:?}", t, h + 2);
                }
            }
            let r = TraceLoader::new().lenient().load_str(&csv).unwrap();
            prop_assert!(r.breach.is_none());
            prop_assert_eq!(r.quarantined as u64, r.trace.quarantined_total());
            let trace = &r.trace;
            let idx = AggIndex::build(trace);
            let m = trace.metric_id("power_used").unwrap();
            // Zero-width slice first, then a normal one.
            for slice in [TimeSlice::new(a, a), TimeSlice::new(a, 10.0)] {
                for c in trace.containers().iter() {
                    let naive = integrate_group(trace, m, c.id(), slice);
                    let fast = idx.integrate(m, c.id(), slice);
                    prop_assert!((naive - fast).abs() <= 1e-6 * naive.abs().max(1.0),
                                 "{:?}: naive {naive} vs indexed {fast}", c.id());
                    // Per-member arithmetic is identical on both paths:
                    // full equality, quarantine counter included.
                    prop_assert_eq!(
                        GroupAggregate::compute(trace, m, c.id(), slice),
                        idx.aggregate(trace, m, c.id(), slice)
                    );
                    prop_assert_eq!(
                        idx.quarantined_under(m, c.id()),
                        trace.quarantined_under(c.id(), m)
                    );
                    match (try_mean_over_group(trace, m, c.id(), slice), idx.try_mean(m, c.id(), slice)) {
                        (None, None) => {}
                        (Some(x), Some(y)) =>
                            prop_assert!((x - y).abs() <= 1e-6 * x.abs().max(1.0), "{x} vs {y}"),
                        other => return Err(TestCaseError::fail(format!("presence mismatch {other:?}"))),
                    }
                }
            }
        }

        /// The streaming invariant: folding samples in one at a time
        /// with [`AggIndex::insert_sample`] / [`AggIndex::note_quarantine`]
        /// yields an index **bit-identical** (structural `PartialEq`,
        /// prefix integrals and quarantine sums included) to
        /// `AggIndex::build` of the same trace — after *every* event,
        /// across new carriers, equal-time collapses, cross-sibling
        /// out-of-order arrivals (fast-path bail), samples on inner
        /// containers, NaN quarantines, and saturating `1e308` sums.
        #[test]
        fn incremental_insert_is_bit_identical_to_rebuild(
            ops in proptest::collection::vec(
                // (container selector, metric selector, value kind,
                //  time advance selector, value)
                (0usize..16, 0usize..2, 0usize..8, 0usize..4, -500.0f64..500.0),
                0..40,
            ),
        ) {
            use viva_trace::{ContainerKind, TraceBuilder};
            // root → {c0: h0 h1, c1: h2}, plus a host directly under
            // root: exercises leaf, clone, and merge arms.
            let mut b = TraceBuilder::new();
            let m0 = b.metric("power_used", "MFlop/s");
            let m1 = b.metric("bandwidth", "Mbit/s");
            let c0 = b.new_container(b.root(), "c0", ContainerKind::Cluster).unwrap();
            let h0 = b.new_container(c0, "h0", ContainerKind::Host).unwrap();
            let h1 = b.new_container(c0, "h1", ContainerKind::Host).unwrap();
            let c1 = b.new_container(b.root(), "c1", ContainerKind::Cluster).unwrap();
            let h2 = b.new_container(c1, "h2", ContainerKind::Host).unwrap();
            let h3 = b.new_container(b.root(), "h3", ContainerKind::Host).unwrap();
            // Seed one carrier so existing-carrier fast paths fire from
            // the first op; everything else starts silent.
            b.set_variable(0.0, h0, m0, 10.0).unwrap();
            let mut trace = b.finish(0.0);
            let mut idx = AggIndex::build(&trace);
            let containers = [c0, h0, h1, c1, h2, h3, trace.containers().root()];
            for (ci, mi, kind, dt_sel, v) in ops {
                let c = containers[ci % containers.len()];
                let m = if mi == 0 { m0 } else { m1 };
                if kind == 6 {
                    // Non-finite sample on a valid pair: quarantine.
                    trace.live_note_quarantined(c, m);
                    idx.note_quarantine(&trace, m);
                } else {
                    // Discrete time advances force equal-time collapses
                    // both within a signal (dt = 0) and across siblings
                    // (shared grid); per-pair clocks stay monotonic
                    // while the *merged* ancestors see out-of-order
                    // arrivals whenever a sibling is ahead.
                    let dt = [0.0, 1.0, 1.0, 2.5][dt_sel];
                    let t = trace.signal(c, m)
                        .and_then(|s| s.last_time())
                        .unwrap_or(0.0) + dt;
                    let v = if kind == 7 { 1.0e308 } else { v };
                    let prior = trace.live_push_sample(c, m, t, v).unwrap();
                    idx.insert_sample(&trace, c, m, t, v, prior);
                }
                let rebuilt = AggIndex::build(&trace);
                prop_assert!(idx == rebuilt,
                             "incremental index diverged from rebuild after \
                              ({c:?}, {m:?}, kind {kind})");
            }
        }

        /// Carrier counts equal the naive subtree scan everywhere.
        #[test]
        fn carrier_count_matches_subtree_scan(trace in random_trace()) {
            let idx = AggIndex::build(&trace);
            let m = trace.metric_id("power_used").unwrap();
            for c in trace.containers().iter() {
                let naive = trace.containers().subtree(c.id()).into_iter()
                    .filter(|&x| trace.signal(x, m).is_some()).count();
                prop_assert_eq!(naive, idx.carrier_count(m, c.id()));
            }
        }
    }
}
