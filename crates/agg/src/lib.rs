//! # viva-agg — multi-scale data aggregation
//!
//! Implements the aggregation machinery of the paper's §3.2. The
//! central object is Equation 1: given a measured quantity
//! `ρ : R × T → ℝ` (a metric's signals over the resources), its
//! approximation at spatial scale `Γ` and temporal scale `Δ` is
//!
//! ```text
//! F_{Γ,Δ}(r, t) = ∬_{N_{Γ,Δ}(r,t)} ρ(r', t') dr' dt'
//! ```
//!
//! * the **temporal** neighbourhood is a [`TimeSlice`] (§3.2.1);
//! * the **spatial** neighbourhood is a *group* of monitored entities,
//!   usually a subtree of the container hierarchy (§3.2.2);
//! * [`multiscale::integrate_group`] evaluates the double integral
//!   exactly for piecewise-constant signals.
//!
//! [`ViewState`] tracks which groups the analyst has collapsed
//! (aggregated) and exposes the *visible frontier* — the set of nodes a
//! topology view should draw. [`stats`] provides the statistical
//! indicators (variance, median, ...) the paper's §6 calls for to
//! qualify aggregated values.

pub mod index;
pub mod multiscale;
pub mod stats;
pub mod timeslice;
pub mod view;

pub use index::{AggIndex, GroupSeries};
pub use multiscale::{integrate_group, mean_over_group, try_mean_over_group, GroupAggregate};
pub use stats::Summary;
pub use timeslice::{TimeSlice, TimeSliceError};
pub use view::ViewState;
