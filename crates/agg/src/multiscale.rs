//! Equation 1: the space × time integral `F_{Γ,Δ}`.

use viva_trace::{ContainerId, MetricId, Trace};

use crate::stats::Summary;
use crate::timeslice::TimeSlice;

/// Collects the leaf containers under `group` that carry a signal for
/// `metric` and returns each one's time integral over `slice`.
///
/// `group` may be a leaf itself (singleton neighbourhood) or any
/// internal container of the hierarchy — a cluster, a site, the root.
pub fn leaf_integrals(
    trace: &Trace,
    metric: MetricId,
    group: ContainerId,
    slice: TimeSlice,
) -> Vec<(ContainerId, f64)> {
    trace
        .containers()
        .subtree(group)
        .into_iter()
        .filter_map(|c| {
            trace
                .signal(c, metric)
                .map(|s| (c, s.integrate(slice.start(), slice.end())))
        })
        .collect()
}

/// `F_{Γ,Δ}` for the neighbourhood `subtree(group) × slice`: the sum of
/// the time integrals of `metric` over every container under `group`.
///
/// # Example
///
/// ```
/// use viva_agg::{integrate_group, TimeSlice};
/// use viva_trace::{ContainerKind, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let cluster = b.new_container(b.root(), "c", ContainerKind::Cluster)?;
/// let h1 = b.new_container(cluster, "h1", ContainerKind::Host)?;
/// let h2 = b.new_container(cluster, "h2", ContainerKind::Host)?;
/// let used = b.metric("power_used", "MFlop/s");
/// b.set_variable(0.0, h1, used, 100.0)?;
/// b.set_variable(0.0, h2, used, 50.0)?;
/// let t = b.finish(10.0);
/// let f = integrate_group(&t, used, cluster, TimeSlice::new(0.0, 10.0));
/// assert_eq!(f, 1500.0); // 100·10 + 50·10
/// # Ok::<(), viva_trace::TraceError>(())
/// ```
pub fn integrate_group(
    trace: &Trace,
    metric: MetricId,
    group: ContainerId,
    slice: TimeSlice,
) -> f64 {
    leaf_integrals(trace, metric, group, slice)
        .into_iter()
        .map(|(_, v)| v)
        .sum()
}

/// The space-time *mean* of `metric` over the neighbourhood: `F`
/// normalized by `|group| · Δ`. This is the natural "utilization level"
/// to map onto an aggregated node's fill (paper Fig. 3).
///
/// Returns 0 when the slice is empty or the group carries no signal.
pub fn mean_over_group(
    trace: &Trace,
    metric: MetricId,
    group: ContainerId,
    slice: TimeSlice,
) -> f64 {
    try_mean_over_group(trace, metric, group, slice).unwrap_or(0.0)
}

/// Like [`mean_over_group`], but distinguishes "no data survived the
/// neighbourhood" from a genuine zero mean: `None` when the slice is
/// empty or no container under `group` carries the metric (e.g. every
/// member crashed before the slice, or the metric was never recorded).
/// A view can then render "no data" instead of a misleading idle 0.
pub fn try_mean_over_group(
    trace: &Trace,
    metric: MetricId,
    group: ContainerId,
    slice: TimeSlice,
) -> Option<f64> {
    let vals = leaf_integrals(trace, metric, group, slice);
    if vals.is_empty() || slice.width() <= 0.0 {
        return None;
    }
    let sum: f64 = vals.iter().map(|(_, v)| v).sum();
    Some(sum / (vals.len() as f64 * slice.width()))
}

/// Full per-group aggregate: the Equation 1 integral plus the
/// statistical indicators of §6 computed over the member time-means.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAggregate {
    /// The group that was aggregated.
    pub group: ContainerId,
    /// Number of member containers carrying the metric.
    pub members: usize,
    /// `F_{Γ,Δ}`: total integral (metric-unit × seconds).
    pub integral: f64,
    /// Statistics over the members' time-averaged values (metric
    /// units) — mean, variance, median, ...
    pub summary: Summary,
    /// Non-finite samples of this metric quarantined at ingestion
    /// across the group's subtree (slice-independent: quarantined
    /// samples carry no trustworthy timestamp-value pair to bin). 0
    /// means the aggregate rests on the complete recorded data.
    pub quarantined: u64,
}

impl GroupAggregate {
    /// Whether the neighbourhood contributed no data at all (no member
    /// carries the metric). Callers should render such groups as
    /// "no data" rather than as an idle zero.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// Computes the aggregate of `metric` over `subtree(group) × slice`.
    pub fn compute(
        trace: &Trace,
        metric: MetricId,
        group: ContainerId,
        slice: TimeSlice,
    ) -> GroupAggregate {
        let vals = leaf_integrals(trace, metric, group, slice);
        let width = slice.width();
        let integral: f64 = vals.iter().map(|(_, v)| v).sum();
        let means = vals
            .iter()
            .map(|(_, v)| if width > 0.0 { v / width } else { 0.0 });
        GroupAggregate {
            group,
            members: vals.len(),
            integral,
            summary: Summary::of(means),
            quarantined: trace.quarantined_under(group, metric),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    /// Two clusters of two hosts each with known utilizations.
    fn trace() -> (Trace, ContainerId, ContainerId, MetricId) {
        let mut b = TraceBuilder::new();
        let c1 = b.new_container(b.root(), "c1", ContainerKind::Cluster).unwrap();
        let c2 = b.new_container(b.root(), "c2", ContainerKind::Cluster).unwrap();
        let m = b.metric("power_used", "MFlop/s");
        for (cl, base) in [(c1, 100.0), (c2, 10.0)] {
            for i in 0..2 {
                let h = b
                    .new_container(cl, format!("h{cl:?}-{i}"), ContainerKind::Host)
                    .unwrap();
                b.set_variable(0.0, h, m, base * (i + 1) as f64).unwrap();
                b.set_variable(5.0, h, m, 0.0).unwrap();
            }
        }
        (b.finish(10.0), c1, c2, m)
    }

    #[test]
    fn integrate_group_sums_members() {
        let (t, c1, c2, m) = trace();
        let whole = TimeSlice::new(0.0, 10.0);
        // c1: (100 + 200) · 5 s = 1500; c2: (10 + 20) · 5 = 150.
        assert_eq!(integrate_group(&t, m, c1, whole), 1500.0);
        assert_eq!(integrate_group(&t, m, c2, whole), 150.0);
        // Root = both clusters.
        assert_eq!(integrate_group(&t, m, t.containers().root(), whole), 1650.0);
    }

    #[test]
    fn integral_respects_slice() {
        let (t, c1, _, m) = trace();
        // Activity stops at t=5: the second half integrates to 0.
        assert_eq!(integrate_group(&t, m, c1, TimeSlice::new(5.0, 10.0)), 0.0);
        assert_eq!(integrate_group(&t, m, c1, TimeSlice::new(0.0, 5.0)), 1500.0);
    }

    #[test]
    fn spatial_additivity() {
        let (t, c1, c2, m) = trace();
        let s = TimeSlice::new(1.0, 7.0);
        let parts = integrate_group(&t, m, c1, s) + integrate_group(&t, m, c2, s);
        let whole = integrate_group(&t, m, t.containers().root(), s);
        assert!((whole - parts).abs() < 1e-9);
    }

    #[test]
    fn mean_over_group_normalizes() {
        let (t, c1, _, m) = trace();
        // Over [0,5): members average 100 and 200 → group mean 150.
        assert_eq!(mean_over_group(&t, m, c1, TimeSlice::new(0.0, 5.0)), 150.0);
        // Over [0,10): half the time idle → 75.
        assert_eq!(mean_over_group(&t, m, c1, TimeSlice::new(0.0, 10.0)), 75.0);
        // Empty slice.
        assert_eq!(mean_over_group(&t, m, c1, TimeSlice::new(3.0, 3.0)), 0.0);
    }

    #[test]
    fn missing_metric_gives_empty_aggregate() {
        let (t, c1, _, _) = trace();
        let bogus = viva_trace::MetricId::from_index(7);
        assert_eq!(integrate_group(&t, bogus, c1, TimeSlice::new(0.0, 10.0)), 0.0);
        let agg = GroupAggregate::compute(&t, bogus, c1, TimeSlice::new(0.0, 10.0));
        assert_eq!(agg.members, 0);
        assert_eq!(agg.summary.count, 0);
        assert!(agg.is_empty());
    }

    #[test]
    fn no_surviving_data_is_none_not_zero() {
        let (t, c1, _, m) = trace();
        let bogus = viva_trace::MetricId::from_index(7);
        // Unrecorded metric: no data, not an idle zero.
        assert_eq!(try_mean_over_group(&t, bogus, c1, TimeSlice::new(0.0, 10.0)), None);
        // Empty slice: no time to observe.
        assert_eq!(try_mean_over_group(&t, m, c1, TimeSlice::new(3.0, 3.0)), None);
        // A genuine zero (activity stopped at t=5) stays Some(0).
        assert_eq!(try_mean_over_group(&t, m, c1, TimeSlice::new(6.0, 9.0)), Some(0.0));
    }

    #[test]
    fn group_aggregate_summary() {
        let (t, c1, _, m) = trace();
        let agg = GroupAggregate::compute(&t, m, c1, TimeSlice::new(0.0, 5.0));
        assert_eq!(agg.members, 2);
        assert_eq!(agg.integral, 1500.0);
        assert_eq!(agg.summary.mean, 150.0);
        assert_eq!(agg.summary.min, 100.0);
        assert_eq!(agg.summary.max, 200.0);
        assert_eq!(agg.summary.median, 150.0);
        // Variance of {100, 200} = 2500.
        assert_eq!(agg.summary.variance, 2500.0);
    }

    #[test]
    fn leaf_group_is_singleton() {
        let (t, c1, _, m) = trace();
        let leaf = t.containers().node(c1).children()[0];
        let vals = leaf_integrals(&t, m, leaf, TimeSlice::new(0.0, 5.0));
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].0, leaf);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use viva_trace::{ContainerKind, TraceBuilder};

    /// A random two-cluster trace: per-host utilization signals with
    /// random breakpoints.
    fn random_trace() -> impl Strategy<Value = (Trace, ContainerId, ContainerId)> {
        proptest::collection::vec(
            proptest::collection::vec((0.0f64..100.0, 0.0f64..500.0), 1..8),
            2..6,
        )
        .prop_map(|hosts| {
            let mut b = TraceBuilder::new();
            let c1 = b.new_container(b.root(), "c1", ContainerKind::Cluster).unwrap();
            let c2 = b.new_container(b.root(), "c2", ContainerKind::Cluster).unwrap();
            let m = b.metric("power_used", "MFlop/s");
            for (i, mut points) in hosts.into_iter().enumerate() {
                let parent = if i % 2 == 0 { c1 } else { c2 };
                let h = b
                    .new_container(parent, format!("h{i}"), ContainerKind::Host)
                    .unwrap();
                points.sort_by(|a, b| a.0.total_cmp(&b.0));
                for (t, v) in points {
                    b.set_variable(t, h, m, v).unwrap();
                }
            }
            (b.finish(100.0), c1, c2)
        })
    }

    proptest! {
        /// Spatial additivity of Equation 1: the root integral equals
        /// the sum of the cluster integrals, whatever the slice.
        #[test]
        fn spatial_additivity((trace, c1, c2) in random_trace(),
                              a in 0.0f64..100.0, w in 0.0f64..100.0) {
            let m = trace.metric_id("power_used").unwrap();
            let s = TimeSlice::new(a, (a + w).min(100.0));
            let whole = integrate_group(&trace, m, trace.containers().root(), s);
            let parts = integrate_group(&trace, m, c1, s) + integrate_group(&trace, m, c2, s);
            prop_assert!((whole - parts).abs() <= 1e-9 * whole.abs().max(1.0));
        }

        /// Temporal additivity: adjacent slices sum to their union.
        #[test]
        fn temporal_additivity((trace, c1, _) in random_trace(),
                               a in 0.0f64..50.0, w1 in 0.0f64..25.0, w2 in 0.0f64..25.0) {
            let m = trace.metric_id("power_used").unwrap();
            let s1 = TimeSlice::new(a, a + w1);
            let s2 = TimeSlice::new(a + w1, a + w1 + w2);
            let both = TimeSlice::new(a, a + w1 + w2);
            let sum = integrate_group(&trace, m, c1, s1) + integrate_group(&trace, m, c1, s2);
            let whole = integrate_group(&trace, m, c1, both);
            prop_assert!((whole - sum).abs() <= 1e-9 * whole.abs().max(1.0));
        }

        /// The group mean is bounded by the member means.
        #[test]
        fn group_mean_bounded((trace, c1, _) in random_trace(),
                              a in 0.0f64..90.0, w in 0.1f64..10.0) {
            let m = trace.metric_id("power_used").unwrap();
            let s = TimeSlice::new(a, a + w);
            let agg = GroupAggregate::compute(&trace, m, c1, s);
            if agg.members > 0 {
                prop_assert!(agg.summary.mean >= agg.summary.min - 1e-9);
                prop_assert!(agg.summary.mean <= agg.summary.max + 1e-9);
                // Integral consistency: mean · members · Δ = integral.
                let back = agg.summary.mean * agg.members as f64 * s.width();
                prop_assert!((back - agg.integral).abs() <= 1e-6 * agg.integral.abs().max(1.0));
            }
        }
    }
}
