//! The viewport: where and how a view is rendered.
//!
//! [`Viewport`] bundles every *presentation* parameter — canvas size,
//! theme, labels, padding — into one value, so growing the renderer
//! (themes today, export DPI or font choices tomorrow) never churns the
//! `render(width, height, ...)` call sites again.

/// Rendering color theme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Theme {
    /// White background, the paper's figures. The default; output is
    /// byte-identical to what the renderer produced before themes
    /// existed.
    #[default]
    Light,
    /// Dark background for screen use.
    Dark,
}

impl Theme {
    /// Canvas background fill.
    pub(crate) fn background(self) -> &'static str {
        match self {
            Theme::Light => "#ffffff",
            Theme::Dark => "#1b1e23",
        }
    }

    /// Edge stroke color.
    pub(crate) fn edge_stroke(self) -> &'static str {
        match self {
            Theme::Light => "#bbbbbb",
            Theme::Dark => "#555c66",
        }
    }

    /// Label text fill.
    pub(crate) fn label_fill(self) -> &'static str {
        match self {
            Theme::Light => "#333",
            Theme::Dark => "#c9ccd1",
        }
    }
}

/// A render target: canvas geometry plus presentation options.
///
/// ```
/// use viva::{Theme, Viewport};
///
/// let vp = Viewport::new(1280.0, 720.0).with_theme(Theme::Dark).with_labels(true);
/// assert_eq!(vp.width, 1280.0);
/// assert_eq!(vp.theme, Theme::Dark);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Viewport {
    /// Canvas width, pixels.
    pub width: f64,
    /// Canvas height, pixels.
    pub height: f64,
    /// Color theme.
    pub theme: Theme,
    /// Draw node labels.
    pub labels: bool,
    /// Padding around the drawing, pixels.
    pub padding: f64,
}

impl Default for Viewport {
    fn default() -> Self {
        Viewport {
            width: 800.0,
            height: 600.0,
            theme: Theme::Light,
            labels: false,
            padding: 30.0,
        }
    }
}

impl Viewport {
    /// A viewport of the given canvas size with default presentation
    /// (light theme, no labels).
    pub fn new(width: f64, height: f64) -> Viewport {
        Viewport { width, height, ..Viewport::default() }
    }

    /// Sets the color theme.
    #[must_use]
    pub fn with_theme(mut self, theme: Theme) -> Viewport {
        self.theme = theme;
        self
    }

    /// Enables or disables node labels.
    #[must_use]
    pub fn with_labels(mut self, labels: bool) -> Viewport {
        self.labels = labels;
        self
    }

    /// Sets the padding around the drawing.
    #[must_use]
    pub fn with_padding(mut self, padding: f64) -> Viewport {
        self.padding = padding;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historical_renderer() {
        let vp = Viewport::default();
        assert_eq!((vp.width, vp.height), (800.0, 600.0));
        assert_eq!(vp.theme, Theme::Light);
        assert!(!vp.labels);
        assert_eq!(vp.padding, 30.0);
    }

    #[test]
    fn builder_style_setters_compose() {
        let vp = Viewport::new(100.0, 50.0)
            .with_theme(Theme::Dark)
            .with_labels(true)
            .with_padding(5.0);
        assert_eq!(vp.theme, Theme::Dark);
        assert!(vp.labels);
        assert_eq!(vp.padding, 5.0);
        assert_eq!((vp.width, vp.height), (100.0, 50.0));
    }

    #[test]
    fn light_theme_keeps_the_golden_palette() {
        assert_eq!(Theme::Light.background(), "#ffffff");
        assert_eq!(Theme::Light.edge_stroke(), "#bbbbbb");
        assert_eq!(Theme::Light.label_fill(), "#333");
        assert_ne!(Theme::Dark.background(), Theme::Light.background());
    }
}
