//! The viewport: where and how a view is rendered.
//!
//! [`Viewport`] bundles every *presentation* parameter — canvas size,
//! theme, labels, padding — into one value, so growing the renderer
//! (themes today, export DPI or font choices tomorrow) never churns the
//! `render(width, height, ...)` call sites again.

use std::fmt;
use std::str::FromStr;

/// Rendering color theme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Theme {
    /// White background, the paper's figures. The default; output is
    /// byte-identical to what the renderer produced before themes
    /// existed.
    #[default]
    Light,
    /// Dark background for screen use.
    Dark,
}

/// A string that names no [`Theme`] (see [`Theme::from_str`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseThemeError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseThemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown theme {:?} (expected \"light\" or \"dark\")", self.input)
    }
}

impl std::error::Error for ParseThemeError {}

impl FromStr for Theme {
    type Err = ParseThemeError;

    /// Parses `"light"` / `"dark"` (ASCII case-insensitive). Themes
    /// arrive as plain strings from wire protocols and CLI flags; this
    /// is the one place that validation lives.
    fn from_str(s: &str) -> Result<Theme, ParseThemeError> {
        if s.eq_ignore_ascii_case("light") {
            Ok(Theme::Light)
        } else if s.eq_ignore_ascii_case("dark") {
            Ok(Theme::Dark)
        } else {
            Err(ParseThemeError { input: s.to_owned() })
        }
    }
}

impl fmt::Display for Theme {
    /// The canonical lowercase name, the inverse of [`Theme::from_str`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Theme::Light => "light",
            Theme::Dark => "dark",
        })
    }
}

impl Theme {
    /// Canvas background fill.
    pub(crate) fn background(self) -> &'static str {
        match self {
            Theme::Light => "#ffffff",
            Theme::Dark => "#1b1e23",
        }
    }

    /// Edge stroke color.
    pub(crate) fn edge_stroke(self) -> &'static str {
        match self {
            Theme::Light => "#bbbbbb",
            Theme::Dark => "#555c66",
        }
    }

    /// Label text fill.
    pub(crate) fn label_fill(self) -> &'static str {
        match self {
            Theme::Light => "#333",
            Theme::Dark => "#c9ccd1",
        }
    }
}

/// A level-of-detail camera over the layout plane: zoom factor, pan
/// offset, and the readability threshold that decides when a subtree
/// collapses into an aggregate tile.
///
/// The *identity* camera (`zoom = 1`, `pan = 0`) keeps the classic
/// fit-everything framing; zooming multiplies the fitted scale about
/// the canvas center, and panning shifts the canvas in pixels
/// (positive `pan_x` moves the camera right, so content slides left).
/// A [`Viewport`] without a camera (`camera: None`) renders through
/// the exact pre-LoD code path, byte for byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Magnification over the fit-everything scale. `1.0` = fitted.
    pub zoom: f64,
    /// Horizontal pan, canvas pixels (positive pans the camera right).
    pub pan_x: f64,
    /// Vertical pan, canvas pixels (positive pans the camera down).
    pub pan_y: f64,
    /// Readability threshold, pixels: an expanded subtree whose
    /// projected extent is smaller than this (or whose nodes have less
    /// than `detail_px²` canvas area each) is drawn as one aggregate
    /// tile instead of its individual nodes. `0.0` disables
    /// level-of-detail collapsing entirely.
    pub detail_px: f64,
}

impl Default for Camera {
    fn default() -> Self {
        Camera { zoom: 1.0, pan_x: 0.0, pan_y: 0.0, detail_px: 16.0 }
    }
}

/// A camera a [`Viewport`] refuses to take (see [`Camera::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraError {
    /// The rejected zoom.
    pub zoom: f64,
    /// The rejected horizontal pan.
    pub pan_x: f64,
    /// The rejected vertical pan.
    pub pan_y: f64,
}

impl fmt::Display for CameraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid camera zoom={} pan=({}, {}) (zoom must be finite and positive, pan finite)",
            self.zoom, self.pan_x, self.pan_y
        )
    }
}

impl std::error::Error for CameraError {}

impl Camera {
    /// A camera with the default readability threshold.
    pub fn new(zoom: f64, pan_x: f64, pan_y: f64) -> Camera {
        Camera { zoom, pan_x, pan_y, ..Camera::default() }
    }

    /// Checked constructor for cameras that cross a trust boundary
    /// (wire protocols, CLI flags): rejects non-finite pans and
    /// non-finite or non-positive zooms — either would poison every
    /// projected coordinate.
    pub fn try_new(zoom: f64, pan_x: f64, pan_y: f64) -> Result<Camera, CameraError> {
        if zoom.is_finite() && zoom > 0.0 && pan_x.is_finite() && pan_y.is_finite() {
            Ok(Camera::new(zoom, pan_x, pan_y))
        } else {
            Err(CameraError { zoom, pan_x, pan_y })
        }
    }

    /// Sets the readability threshold (see [`Camera::detail_px`]).
    #[must_use]
    pub fn with_detail_px(mut self, detail_px: f64) -> Camera {
        self.detail_px = detail_px;
        self
    }

    /// Whether this camera leaves the fitted framing untouched
    /// (`zoom = 1`, `pan = 0`). Level-of-detail tiling may still apply.
    pub fn is_identity(&self) -> bool {
        self.zoom == 1.0 && self.pan_x == 0.0 && self.pan_y == 0.0
    }
}

/// A render target: canvas geometry plus presentation options.
///
/// ```
/// use viva::{Theme, Viewport};
///
/// let vp = Viewport::new(1280.0, 720.0).with_theme(Theme::Dark).with_labels(true);
/// assert_eq!(vp.width, 1280.0);
/// assert_eq!(vp.theme, Theme::Dark);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Viewport {
    /// Canvas width, pixels.
    pub width: f64,
    /// Canvas height, pixels.
    pub height: f64,
    /// Color theme.
    pub theme: Theme,
    /// Draw node labels.
    pub labels: bool,
    /// Padding around the drawing, pixels.
    pub padding: f64,
    /// Level-of-detail camera. `None` (the default) renders the
    /// classic fit-everything frame through the pre-LoD code path —
    /// output is byte-identical to viewports from before cameras
    /// existed.
    pub camera: Option<Camera>,
}

impl Default for Viewport {
    fn default() -> Self {
        Viewport {
            width: 800.0,
            height: 600.0,
            theme: Theme::Light,
            labels: false,
            padding: 30.0,
            camera: None,
        }
    }
}

/// A canvas size a [`Viewport`] refuses to take (see
/// [`Viewport::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViewportError {
    /// The rejected width.
    pub width: f64,
    /// The rejected height.
    pub height: f64,
}

impl fmt::Display for ViewportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid viewport size {}x{} (both dimensions must be finite and positive)",
            self.width, self.height
        )
    }
}

impl std::error::Error for ViewportError {}

impl Viewport {
    /// A viewport of the given canvas size with default presentation
    /// (light theme, no labels).
    pub fn new(width: f64, height: f64) -> Viewport {
        Viewport { width, height, ..Viewport::default() }
    }

    /// Checked constructor for sizes that cross a trust boundary (wire
    /// protocols, CLI flags): rejects non-finite or non-positive
    /// dimensions instead of producing a canvas the renderer would
    /// divide by. Infallible callers with literal sizes keep using
    /// [`Viewport::new`].
    pub fn try_new(width: f64, height: f64) -> Result<Viewport, ViewportError> {
        if width.is_finite() && height.is_finite() && width > 0.0 && height > 0.0 {
            Ok(Viewport::new(width, height))
        } else {
            Err(ViewportError { width, height })
        }
    }

    /// Sets the color theme.
    #[must_use]
    pub fn with_theme(mut self, theme: Theme) -> Viewport {
        self.theme = theme;
        self
    }

    /// Enables or disables node labels.
    #[must_use]
    pub fn with_labels(mut self, labels: bool) -> Viewport {
        self.labels = labels;
        self
    }

    /// Sets the padding around the drawing.
    #[must_use]
    pub fn with_padding(mut self, padding: f64) -> Viewport {
        self.padding = padding;
        self
    }

    /// Attaches a level-of-detail camera (zoom/pan + tile threshold).
    #[must_use]
    pub fn with_camera(mut self, camera: Camera) -> Viewport {
        self.camera = Some(camera);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_historical_renderer() {
        let vp = Viewport::default();
        assert_eq!((vp.width, vp.height), (800.0, 600.0));
        assert_eq!(vp.theme, Theme::Light);
        assert!(!vp.labels);
        assert_eq!(vp.padding, 30.0);
    }

    #[test]
    fn builder_style_setters_compose() {
        let vp = Viewport::new(100.0, 50.0)
            .with_theme(Theme::Dark)
            .with_labels(true)
            .with_padding(5.0);
        assert_eq!(vp.theme, Theme::Dark);
        assert!(vp.labels);
        assert_eq!(vp.padding, 5.0);
        assert_eq!((vp.width, vp.height), (100.0, 50.0));
    }

    #[test]
    fn theme_parses_case_insensitively_and_round_trips() {
        assert_eq!("light".parse::<Theme>(), Ok(Theme::Light));
        assert_eq!("DARK".parse::<Theme>(), Ok(Theme::Dark));
        assert_eq!("Dark".parse::<Theme>(), Ok(Theme::Dark));
        for t in [Theme::Light, Theme::Dark] {
            assert_eq!(t.to_string().parse::<Theme>(), Ok(t));
        }
        let err = "sepia".parse::<Theme>().unwrap_err();
        assert_eq!(err.input, "sepia");
        assert!(err.to_string().contains("sepia"));
    }

    #[test]
    fn try_new_rejects_degenerate_canvases() {
        assert_eq!(Viewport::try_new(800.0, 600.0), Ok(Viewport::new(800.0, 600.0)));
        for (w, h) in [
            (0.0, 600.0),
            (800.0, 0.0),
            (-1.0, 600.0),
            (f64::NAN, 600.0),
            (800.0, f64::INFINITY),
            (f64::NEG_INFINITY, f64::NAN),
        ] {
            let err = Viewport::try_new(w, h).expect_err("degenerate size accepted");
            assert!(err.to_string().contains("invalid viewport size"), "{err}");
        }
    }

    #[test]
    fn camera_defaults_to_identity() {
        let cam = Camera::default();
        assert!(cam.is_identity());
        assert_eq!(cam.detail_px, 16.0);
        assert!(Viewport::default().camera.is_none(), "legacy viewports carry no camera");
        let vp = Viewport::new(800.0, 600.0).with_camera(Camera::new(2.0, 10.0, -5.0));
        assert_eq!(vp.camera, Some(Camera { zoom: 2.0, pan_x: 10.0, pan_y: -5.0, detail_px: 16.0 }));
        assert!(!vp.camera.unwrap().is_identity());
    }

    #[test]
    fn try_camera_rejects_degenerate_parameters() {
        assert_eq!(Camera::try_new(2.0, 1.0, -1.0), Ok(Camera::new(2.0, 1.0, -1.0)));
        for (z, px, py) in [
            (0.0, 0.0, 0.0),
            (-1.0, 0.0, 0.0),
            (f64::NAN, 0.0, 0.0),
            (f64::INFINITY, 0.0, 0.0),
            (1.0, f64::NAN, 0.0),
            (1.0, 0.0, f64::NEG_INFINITY),
        ] {
            let err = Camera::try_new(z, px, py).expect_err("degenerate camera accepted");
            assert!(err.to_string().contains("invalid camera"), "{err}");
        }
    }

    #[test]
    fn light_theme_keeps_the_golden_palette() {
        assert_eq!(Theme::Light.background(), "#ffffff");
        assert_eq!(Theme::Light.edge_stroke(), "#bbbbbb");
        assert_eq!(Theme::Light.label_fill(), "#333");
        assert_ne!(Theme::Dark.background(), Theme::Light.background());
    }
}
