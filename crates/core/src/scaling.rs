//! Independent per-metric-type screen scaling (paper §4.1, Fig. 4).
//!
//! Metrics of different nature (MFlop/s vs Mbit/s) are not comparable;
//! each *size group* (one per size metric) therefore gets its own
//! scale, computed so that "the bigger size of a type of object within
//! a time-slice \[maps\] to the maximum pixel size of objects in the
//! representation". Interactive sliders multiply each group's automatic
//! scale (Fig. 4, scheme C).

use std::collections::HashMap;

/// Screen-scaling parameters and per-group slider state.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingConfig {
    /// Pixel size the largest object of each group gets.
    pub max_px: f64,
    /// Floor pixel size so tiny-but-present objects stay visible.
    pub min_px: f64,
    /// Per-size-group slider multiplier (1.0 = automatic scale; the
    /// slider middle position of Fig. 4 schemes A/B).
    sliders: HashMap<String, f64>,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig { max_px: 40.0, min_px: 2.0, sliders: HashMap::new() }
    }
}

impl ScalingConfig {
    /// The slider multiplier of a size group (1.0 when untouched).
    pub fn slider(&self, group: &str) -> f64 {
        self.sliders.get(group).copied().unwrap_or(1.0)
    }

    /// Sets the slider multiplier of a size group.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is non-finite or negative.
    pub fn set_slider(&mut self, group: impl Into<String>, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "bad slider {factor}");
        self.sliders.insert(group.into(), factor);
    }

    /// Resets all sliders to automatic.
    pub fn reset_sliders(&mut self) {
        self.sliders.clear();
    }

    /// All touched sliders as `(group, factor)` pairs, sorted by group
    /// name — the serializable form of the slider state (untouched
    /// groups are implicitly `1.0` and are not listed).
    pub fn sliders(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> =
            self.sliders.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Computes pixel sizes for one size group: the automatic scale
    /// maps the group maximum to `max_px`, then the group slider
    /// multiplies, then `min_px` floors. `values` of 0 (or groups whose
    /// max is 0) collapse to `min_px`.
    pub fn pixel_sizes(&self, group: &str, values: &[f64]) -> Vec<f64> {
        let max = values.iter().copied().fold(0.0f64, f64::max);
        let auto = if max > 0.0 { self.max_px / max } else { 0.0 };
        let s = auto * self.slider(group);
        values
            .iter()
            .map(|v| (v * s).max(self.min_px))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_maps_to_max_px() {
        let cfg = ScalingConfig::default();
        // Fig. 4 scheme A: hosts of 100 and 25 MFlop/s.
        let px = cfg.pixel_sizes("power", &[100.0, 25.0]);
        assert_eq!(px[0], 40.0);
        assert_eq!(px[1], 10.0);
    }

    #[test]
    fn groups_are_independent() {
        let cfg = ScalingConfig::default();
        // Fig. 4: a 10000 Mbit/s link is as large on screen as a
        // 100 MFlop/s host — different metrics, both group maxima.
        let hosts = cfg.pixel_sizes("power", &[100.0, 25.0]);
        let links = cfg.pixel_sizes("bandwidth", &[10000.0]);
        assert_eq!(hosts[0], links[0]);
    }

    #[test]
    fn rescaling_follows_time_slice_change() {
        let cfg = ScalingConfig::default();
        // Fig. 4 scheme B: after a new time slice, HostB (40) is the
        // biggest and takes the maximum size that 100 had in scheme A.
        let px = cfg.pixel_sizes("power", &[10.0, 40.0]);
        assert_eq!(px[1], 40.0);
        assert_eq!(px[0], 10.0);
    }

    #[test]
    fn sliders_override_automatic_scale() {
        let mut cfg = ScalingConfig::default();
        // Fig. 4 scheme C: hosts bigger, links smaller.
        cfg.set_slider("power", 2.0);
        cfg.set_slider("bandwidth", 0.5);
        let hosts = cfg.pixel_sizes("power", &[10.0, 40.0]);
        let links = cfg.pixel_sizes("bandwidth", &[10000.0]);
        assert_eq!(hosts[1], 80.0);
        assert_eq!(links[0], 20.0);
        cfg.reset_sliders();
        assert_eq!(cfg.slider("power"), 1.0);
    }

    #[test]
    fn min_px_floors_small_and_zero_values() {
        let cfg = ScalingConfig::default();
        let px = cfg.pixel_sizes("power", &[1000.0, 0.001, 0.0]);
        assert_eq!(px[1], 2.0);
        assert_eq!(px[2], 2.0);
        // All-zero group.
        let px = cfg.pixel_sizes("power", &[0.0, 0.0]);
        assert!(px.iter().all(|&p| p == 2.0));
    }

    #[test]
    #[should_panic(expected = "bad slider")]
    fn slider_rejects_nan() {
        let mut cfg = ScalingConfig::default();
        cfg.set_slider("power", f64::NAN);
    }
}
